#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md appendix from target/figures/*.json.

Run after the figure suite:
    DQ_SCALE=paper /tmp/run_figures2.sh   # or the individual binaries
    python3 tools/gen_experiments_appendix.py
"""
import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIGDIR = ROOT / "target" / "figures"
OUT = ROOT / "EXPERIMENTS_APPENDIX.md"

ORDER = [
    "inspect_index",
    "fig06", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13",
    "ablation_split", "ablation_leaf_exact", "ablation_buffer",
    "ablation_npdq_clustering", "ablation_npdq_axes", "ablation_psi",
    "exp_spdq", "exp_updates", "exp_knn", "exp_tpr", "exp_join",
    "exp_adaptive",
]

def render(table):
    lines = [f"## {table['figure']} — {table['title']}", ""]
    cols = table["columns"]
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "|".join(["---"] * len(cols)) + "|")
    for row in table["rows"]:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines)

def main():
    parts = [
        "# EXPERIMENTS appendix — raw tables",
        "",
        "Machine-generated from `target/figures/*.json` by",
        "`tools/gen_experiments_appendix.py`; see EXPERIMENTS.md for the",
        "paper-vs-reproduction discussion.",
        "",
    ]
    for name in ORDER:
        path = FIGDIR / f"{name}.json"
        if path.exists():
            parts.append(render(json.loads(path.read_text())))
    OUT.write_text("\n".join(parts))
    print(f"wrote {OUT}")

if __name__ == "__main__":
    main()
