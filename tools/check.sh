#!/usr/bin/env bash
# Repo check: tier-1 build + tests, then the full workspace and clippy.
#
# The environment has no registry access; all external deps are vendored
# path crates under crates/shims/, so --offline always works (and guards
# against accidental network resolution).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "OK: build, tests, and clippy all green."
