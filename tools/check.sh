#!/usr/bin/env bash
# Repo check: tier-1 build + tests, then the full workspace and clippy.
#
# The environment has no registry access; all external deps are vendored
# path crates under crates/shims/, so --offline always works (and guards
# against accidental network resolution).
#
# --bench-smoke additionally runs the read_path microbench at a tiny
# size; the bench exits non-zero if the zero-copy view traversal copies
# at least as many bytes as the decode traversal, so a read-path
# regression fails the check. The smoke output goes to target/figures/
# and never clobbers the committed BENCH_read_path.json baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$BENCH_SMOKE" = 1 ]; then
  # Absolute output path: cargo runs bench binaries with the package
  # directory as cwd, not the workspace root.
  DQ_READ_PATH_OBJECTS=300 DQ_READ_PATH_MS=50 \
    DQ_READ_PATH_OUT="$PWD/target/figures/read_path_smoke.json" \
    cargo bench --offline -p bench --bench read_path
  echo "OK: read_path bench smoke passed (view path copies fewer bytes than decode)."
fi

echo "OK: build, tests, and clippy all green."
