#!/usr/bin/env bash
# Repo check: tier-1 build + tests, then the full workspace and clippy.
#
# The environment has no registry access; all external deps are vendored
# path crates under crates/shims/, so --offline always works (and guards
# against accidental network resolution).
#
# --bench-smoke additionally runs the read_path microbench at a tiny
# size; the bench exits non-zero if the zero-copy view traversal copies
# at least as many bytes as the decode traversal, so a read-path
# regression fails the check. The wrapper then enforces two ratio
# floors from the smoke figures — optimistic-vs-locked contended reads
# and batched-vs-scalar overlap geometry must both stay >= 1.0x
# (ratios are machine-portable where absolute throughputs are not), so
# a regression that makes the optimistic read path slower than the
# lock it replaced, or the SoA kernel slower than the scalar loop it
# replaced, fails the check. The smoke output goes to target/figures/
# and never clobbers the committed BENCH_read_path.json baseline.
#
# --obs-smoke runs the observability reconciliation end to end: a small
# exp_service sweep (whose hard asserts check tree level counters ==
# session QueryStats + writer reads == pool hits+misses, and pool misses
# == pager IoStats reads) plus the instrumented read_path bench, whose
# view/decode speedup must stay within tolerance of the committed
# BENCH_read_path.json baseline (DQ_OBS_SPEEDUP_TOL, default 0.25 —
# ratios are machine-portable where absolute throughputs are not).
#
# --shard-smoke runs the region-partitioned serving path end to end:
# the partition integration suite (seam exactly-once oracle, partitioned
# serve == partitioned serve_serial over 2 and 4 regions, per-region
# reconciliation identities), then the exp_service regions sweep whose
# hard asserts re-check the per-region identities; the wrapper verifies
# the load distribution — no region may carry more than 2x the mean
# region load under the uniform workload.
#
# --chaos-smoke runs the fault-tolerance path end to end: the chaos
# integration suite (seeded fault schedules vs a fault-free oracle),
# then exp_service twice — fault-free baseline and under a 1 % seeded
# transient-fault rate with pool-level retry. The faulted run carries
# the same hard reconciliation asserts (they must survive injection:
# failed reads never reach the device counters) plus all-sessions-Ok,
# and its best concurrent throughput must stay within 2x of baseline.
#
# --clock-smoke runs the per-region frame-clock protocol end to end:
# the clock integration suite (ragged schedule lengths, join-mid-run
# watermarks, a recut during an active serve, mid-run panic containment,
# frame-report reconciliation out of lockstep), then the straggler
# experiment — one deliberately slow session on region 0 — whose figure
# the wrapper gates: every non-stalled region must keep >= 0.9x its
# clean-run frames/s, and the straggler itself must actually have been
# slowed (< 0.5x), or the run proves nothing.
#
# --net-smoke runs the network front door end to end: the server
# crate's suites (codec round-trip + adversarial proptests, the
# loopback socket suite, in-process stream identity), then the
# exp_service_net experiment — interleaved clean and chaos runs, the
# chaos runs adding a stalling and a vanishing client — whose figure
# the wrapper gates: both misbehaving clients must be evicted, the
# healthy sessions' aggregate frames/s must keep >= 0.9x the clean
# runs' (per-session ratios are informational: on a loaded host they
# carry scheduler noise the aggregate averages out) with bit-identical
# results, and no completed session's p99 frame latency may exceed the
# ceiling (DQ_NET_P99_US, default 50000 us — half the eviction write
# deadline would already be pathological on loopback).
#
# --wal-smoke runs the durable write path end to end: the WAL unit
# suite, the durability module suite, and the chaos crash-point matrix
# (recovery bit-identity at every crash point, torn/bit-flipped tails,
# full-device backlog recovery, partitioned rebuild), then exp_service
# with DQ_DURABLE=1 — whose hard asserts recover from the post-run
# durable image and require the recovered tree to be bit-identical to
# the served one, on every sweep configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
OBS_SMOKE=0
CHAOS_SMOKE=0
SHARD_SMOKE=0
WAL_SMOKE=0
CLOCK_SMOKE=0
NET_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --obs-smoke) OBS_SMOKE=1 ;;
    --chaos-smoke) CHAOS_SMOKE=1 ;;
    --shard-smoke) SHARD_SMOKE=1 ;;
    --wal-smoke) WAL_SMOKE=1 ;;
    --clock-smoke) CLOCK_SMOKE=1 ;;
    --net-smoke) NET_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$BENCH_SMOKE" = 1 ]; then
  # Absolute output path: cargo runs bench binaries with the package
  # directory as cwd, not the workspace root.
  DQ_READ_PATH_OBJECTS=300 DQ_READ_PATH_MS=50 \
    DQ_READ_PATH_OUT="$PWD/target/figures/read_path_smoke.json" \
    cargo bench --offline -p bench --bench read_path
  echo "OK: read_path bench smoke passed (view path copies fewer bytes than decode)."
  python3 - "$PWD/target/figures/read_path_smoke.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
def ratio(label):
    row = next(r for r in rows if r[0].startswith(label))
    return float(next(c for c in row[1:] if c.strip()).rstrip("x"))
for label, what in [
    ("optimistic/locked", "optimistic reads vs the per-frame read lock"),
    ("batched/scalar", "SoA overlap kernel vs the scalar loop"),
]:
    r = ratio(label)
    if r < 1.0:
        sys.exit(f"FAIL: {label} speedup {r:.2f}x fell below 1.0x — "
                 f"{what} regressed")
    print(f"OK: {label} speedup {r:.2f}x (floor 1.0x).")
PY
fi

if [ "$OBS_SMOKE" = 1 ]; then
  # exp_service carries the reconciliation asserts internally: it aborts
  # if the tree's level counters, the engines' QueryStats (+ writer
  # attribution), the pool's hit/miss totals, and the pager's IoStats
  # ever disagree. A quick run exercises serial + concurrent modes over
  # every pool size.
  DQ_SCALE=quick DQ_SESSIONS=4 cargo run -q --offline --release -p bench --bin exp_service \
    > target/figures/exp_service_obs_smoke.txt
  echo "OK: exp_service counters reconcile (levels == stats+writer == pool hits+misses == IoStats)."

  # read_path at a moderate size, then compare its view/decode speedup
  # against the committed baseline: the instrumented read path must not
  # have slowed relative to the uninstrumented decode path.
  DQ_READ_PATH_OBJECTS=2000 DQ_READ_PATH_MS=150 \
    DQ_READ_PATH_OUT="$PWD/target/figures/read_path_obs_smoke.json" \
    cargo bench --offline -p bench --bench read_path
  python3 - "$PWD/target/figures/read_path_obs_smoke.json" "$PWD/BENCH_read_path.json" <<'PY'
import json, os, sys
def speedup(path):
    rows = json.load(open(path))["rows"]
    row = next(r for r in rows if r[0].startswith("view/decode"))
    return float(next(c for c in row[1:] if c.strip()).rstrip("x"))
smoke, base = speedup(sys.argv[1]), speedup(sys.argv[2])
tol = float(os.environ.get("DQ_OBS_SPEEDUP_TOL", "0.25"))
if smoke < base * (1.0 - tol):
    sys.exit(f"FAIL: view/decode speedup {smoke:.2f}x fell below baseline "
             f"{base:.2f}x by more than {tol:.0%} — obs instrumentation "
             "slowed the read path")
print(f"OK: instrumented speedup {smoke:.2f}x vs baseline {base:.2f}x (tol {tol:.0%}).")
PY
fi

if [ "$SHARD_SMOKE" = 1 ]; then
  # Seam exactly-once oracle + partitioned-vs-serial determinism +
  # per-region reconciliation, as tests.
  cargo test -q --offline --test partition
  echo "OK: partition suite green (seam exactly-once, serve == serve_serial, region identities)."

  # The regions sweep re-asserts the per-region identities internally;
  # here we additionally bound the load skew: under the uniform
  # workload no region may pull more than 2x the mean region load.
  DQ_SCALE=quick DQ_SESSIONS=4 DQ_REGIONS=1,2,4 \
    cargo run -q --offline --release -p bench --bin exp_service \
    > target/figures/exp_service_shard_smoke.txt
  python3 - "$PWD/target/figures/exp_service_regions.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
for r in rows:
    regions, skew = int(r[0]), float(r[-1])
    if skew > 2.0:
        sys.exit(f"FAIL: with {regions} regions the hottest region pulls "
                 f"{skew:.2f}x the mean load (> 2x) under a uniform workload")
    print(f"OK: {regions} region(s), max/mean load {skew:.2f}x (bound 2.0x).")
PY
fi

if [ "$CHAOS_SMOKE" = 1 ]; then
  # Seeded fault schedules against the fault-free serial oracle:
  # transient-only runs must be bit-identical, corruption must be
  # contained to the sessions that touch it.
  cargo test -q --offline --test chaos
  echo "OK: chaos suite green (oracle equality + blast-radius containment)."

  # exp_service under injection: the run's internal asserts enforce the
  # reconciliation identities and all-Ok outcomes; the wrapper compares
  # throughput against a fault-free baseline taken on this machine just
  # before, so the bound tracks current load rather than a stale figure.
  DQ_SCALE=quick DQ_SESSIONS=4 cargo run -q --offline --release -p bench --bin exp_service \
    > target/figures/exp_service_chaos_base.txt
  DQ_SCALE=quick DQ_SESSIONS=4 DQ_FAULT_RATE=0.01 DQ_FAULT_SEED=7 \
    cargo run -q --offline --release -p bench --bin exp_service \
    > target/figures/exp_service_chaos_smoke.txt
  python3 - "$PWD/target/figures/exp_service.json" "$PWD/target/figures/exp_service_chaos.json" <<'PY'
import json, sys
def best_concurrent(path):
    rows = json.load(open(path))["rows"]
    return max(float(r[2]) for r in rows if r[0] == "concurrent")
base, chaos = best_concurrent(sys.argv[1]), best_concurrent(sys.argv[2])
if chaos < base / 2.0:
    sys.exit(f"FAIL: best concurrent throughput under 1% faults "
             f"({chaos:.0f} frames/s) degraded more than 2x vs the "
             f"fault-free baseline ({base:.0f} frames/s)")
print(f"OK: 1% transient faults cost {base / chaos:.2f}x "
      f"({base:.0f} -> {chaos:.0f} frames/s), identities held.")
PY
fi

if [ "$CLOCK_SMOKE" = 1 ]; then
  # The ragged-lifecycle suite: every concurrent run checked against the
  # serial reference protocol bit for bit.
  cargo test -q --offline --test clock
  echo "OK: clock suite green (ragged windows, joiners, live recut, panic containment)."

  # One slow session on region 0; regions 1..3 must be unaffected.
  cargo run -q --offline --release -p bench --bin exp_service_straggler \
    > target/figures/exp_service_straggler.txt
  python3 - "$PWD/target/figures/exp_service_straggler.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
for r in rows:
    region, ratio, stalled = int(r[0]), float(r[4]), r[-1] == "yes"
    if stalled:
        if ratio >= 0.5:
            sys.exit(f"FAIL: the straggler (region {region}) kept {ratio:.2f}x "
                     "of its clean-run frames/s -- the injected delay did not "
                     "bite, the isolation claim is untested")
        print(f"OK: straggler region {region} slowed to {ratio:.2f}x (as injected).")
    else:
        if ratio < 0.9:
            sys.exit(f"FAIL: non-stalled region {region} dropped to {ratio:.2f}x "
                     "of its clean-run frames/s (floor 0.9x) -- the straggler's "
                     "back-pressure leaked across regions")
        print(f"OK: region {region} unaffected at {ratio:.2f}x (floor 0.9x).")
PY
fi

if [ "$NET_SMOKE" = 1 ]; then
  # The server crate bottom up: codec round-trip + adversarial
  # proptests (no byte stream panics the decoder), the loopback socket
  # suite (bit-identity, typed admission rejections, slow-reader /
  # vanished / garbage containment, shutdown-drain recovery), and the
  # in-process stream-identity check the socket path rests on.
  cargo test -q --offline -p server
  echo "OK: server suites green (codec, sockets, stream identity)."

  # Clean vs chaos over a real loopback socket. The binary's internal
  # asserts already enforce eviction of both misbehaving clients, wire
  # results bit-identical to the serial oracle, and the 0.9x aggregate
  # healthy fps floor; the wrapper re-checks the emitted figure and
  # bounds the p99 frame latency of every completed session.
  cargo run -q --offline --release -p bench --bin exp_service_net \
    > target/figures/exp_service_net_smoke.txt
  python3 - "$PWD/target/figures/exp_service_net.json" <<'PY'
import json, os, sys
rows = json.load(open(sys.argv[1]))["rows"]
ceiling = float(os.environ.get("DQ_NET_P99_US", "50000"))
evicted = 0
agg = {"clean": 0.0, "chaos": 0.0}
for mode, session, region, fps, p99, ratio, outcome in rows:
    if mode == "chaos" and outcome != "done":
        evicted += 1
        continue
    if outcome != "done":
        sys.exit(f"FAIL: {mode} session {session} ended '{outcome}'")
    if float(p99) > ceiling:
        sys.exit(f"FAIL: {mode} session {session} p99 frame latency "
                 f"{float(p99):.0f} us exceeds the {ceiling:.0f} us ceiling")
    if region != "0":
        agg[mode] += float(fps)
if evicted != 2:
    sys.exit(f"FAIL: expected both misbehaving clients gone, saw {evicted}")
agg_ratio = agg["chaos"] / agg["clean"]
if agg_ratio < 0.9:
    sys.exit(f"FAIL: the healthy sessions' aggregate frames/s fell to "
             f"{agg_ratio:.2f}x of the clean runs' (floor 0.9x)")
done_p99 = max(float(r[4]) for r in rows if r[6] == "done")
print(f"OK: 2 misbehaving clients evicted, aggregate healthy fps "
      f"{agg_ratio:.2f}x of clean (floor 0.9x), worst done-session p99 "
      f"{done_p99:.0f} us (ceiling {ceiling:.0f} us).")
PY
fi

if [ "$WAL_SMOKE" = 1 ]; then
  # The durable write path, bottom up: WAL framing/replay units, the
  # DurableLog/checkpoint/recovery units, then the crash-point matrix
  # (chaos_g..chaos_j: bit-identical recovery at every crash point,
  # torn/truncated/bit-flipped tails landing on the last complete group
  # commit, full-device backlog recovery, partitioned rebuild).
  cargo test -q --offline -p storage wal
  cargo test -q --offline -p mobiquery durability
  cargo test -q --offline --test chaos -- chaos_g chaos_h chaos_i chaos_j
  echo "OK: WAL + durability units and the crash-point matrix are green."

  # exp_service with durability attached: every sweep configuration
  # group-commits each frame, checkpoints on cadence, then recovers from
  # the durable image and asserts bit-identity with the served tree.
  DQ_SCALE=quick DQ_SESSIONS=4 DQ_DURABLE=1 \
    cargo run -q --offline --release -p bench --bin exp_service \
    > target/figures/exp_service_wal_smoke.txt
  echo "OK: durable exp_service sweep recovered bit-identically on every configuration."
fi

echo "OK: build, tests, and clippy all green."
