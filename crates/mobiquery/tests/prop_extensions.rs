//! Property tests for the extension modules: joins vs brute force,
//! aggregation vs pointwise counting, uncertainty contract.

use proptest::prelude::*;
use rtree::bulk::bulk_load;
use rtree::{NsiSegmentRecord, RTreeConfig};
use std::collections::BTreeSet;
use storage::Pager;
use stkit::{within_distance, Interval, Rect, TimeSet};

type R = NsiSegmentRecord<2>;

#[derive(Clone, Debug)]
struct RawSeg {
    t0: f64,
    dur: f64,
    a: [f64; 2],
    b: [f64; 2],
}

fn raw_seg() -> impl Strategy<Value = RawSeg> {
    (
        0.0f64..10.0,
        0.2f64..4.0,
        (0.0f64..60.0, 0.0f64..60.0),
        (0.0f64..60.0, 0.0f64..60.0),
    )
        .prop_map(|(t0, dur, a, b)| RawSeg {
            t0,
            dur,
            a: [a.0, a.1],
            b: [b.0, b.1],
        })
}

fn recs(n: usize) -> impl Strategy<Value = Vec<R>> {
    proptest::collection::vec(raw_seg(), 5..n).prop_map(|raws| {
        raws.iter()
            .enumerate()
            .map(|(i, r)| R::new(i as u32, 0, Interval::new(r.t0, r.t0 + r.dur), r.a, r.b))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_matches_brute_force(rs in recs(80), delta in 0.2f64..5.0) {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), rs.clone());
        let window = Interval::new(0.0, 15.0);
        let mut got = BTreeSet::new();
        mobiquery::self_distance_join(&tree, delta, window, |p| {
            got.insert((p.a.oid, p.b.oid));
        });
        let mut expected = BTreeSet::new();
        for (i, a) in rs.iter().enumerate() {
            for b in &rs[i + 1..] {
                if !within_distance(&a.seg, &b.seg, delta)
                    .intersect_interval(&window)
                    .is_empty()
                {
                    expected.insert((a.oid.min(b.oid), a.oid.max(b.oid)));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn count_profile_matches_pointwise(
        ivs in proptest::collection::vec(
            proptest::collection::vec((0.0f64..20.0, 0.1f64..5.0), 1..3), 1..12),
        probes in proptest::collection::vec(0.0f64..25.0, 1..16),
    ) {
        let sets: Vec<TimeSet> = ivs
            .iter()
            .map(|v| TimeSet::from_intervals(v.iter().map(|&(a, d)| Interval::new(a, a + d))))
            .collect();
        let profile = mobiquery::CountProfile::from_visibilities(sets.iter());
        for &t in &probes {
            // Skip probes landing exactly on breakpoints (boundary
            // conventions legitimately differ there).
            if profile.steps().iter().any(|&(bt, _)| (bt - t).abs() < 1e-12) {
                continue;
            }
            let expected = sets.iter().filter(|s| s.contains(t)).count() as u32;
            prop_assert_eq!(profile.count_at(t), expected, "t={}", t);
        }
    }

    #[test]
    fn uncertainty_never_misses_possible_matches(rs in recs(60), eps in 0.0f64..4.0) {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), rs.clone());
        let q = mobiquery::SnapshotQuery::new(
            Rect::from_corners([15.0, 15.0], [40.0, 40.0]),
            Interval::new(2.0, 8.0),
        );
        let mut reported = BTreeSet::new();
        let mut must = BTreeSet::new();
        mobiquery::uncertain_query(&tree, &q, eps, |h| {
            reported.insert(h.record.oid);
            if h.containment == mobiquery::Containment::Must {
                must.insert(h.record.oid);
            }
        });
        // Contract 1: every exact match is reported.
        for r in &rs {
            if q.matches_segment(&r.seg) {
                prop_assert!(reported.contains(&r.oid), "missed exact match {}", r.oid);
            }
        }
        // Contract 2: Must ⊆ exact matches (a certainly-inside object is
        // inside under zero error too).
        for oid in &must {
            let r = rs.iter().find(|r| r.oid == *oid).unwrap();
            prop_assert!(q.matches_segment(&r.seg), "Must object {} not inside", oid);
        }
        // Contract 3: with eps = 0, reported == exact.
        if eps == 0.0 {
            let exact: BTreeSet<u32> = rs
                .iter()
                .filter(|r| q.matches_segment(&r.seg))
                .map(|r| r.oid)
                .collect();
            prop_assert_eq!(reported, exact);
        }
    }
}
