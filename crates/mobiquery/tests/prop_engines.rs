//! Property-based tests for the query engines: PDQ and NPDQ are checked
//! against brute force over randomly generated data and trajectories.

use proptest::prelude::*;
use rtree::bulk::bulk_load;
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use std::collections::BTreeSet;
use storage::Pager;
use stkit::{Interval, Rect, TimeSet};

use mobiquery::{KeySnapshot, NaiveEngine, NpdqEngine, PdqEngine, SnapshotQuery, Trajectory};

#[derive(Clone, Debug)]
struct RawSeg {
    t0: f64,
    dur: f64,
    a: [f64; 2],
    b: [f64; 2],
}

fn raw_seg() -> impl Strategy<Value = RawSeg> {
    (
        0.0f64..20.0,
        0.2f64..4.0,
        (0.0f64..100.0, 0.0f64..100.0),
        (0.0f64..100.0, 0.0f64..100.0),
    )
        .prop_map(|(t0, dur, a, b)| RawSeg {
            t0,
            dur,
            a: [a.0, a.1],
            b: [b.0, b.1],
        })
}

fn segments(n: usize) -> impl Strategy<Value = Vec<RawSeg>> {
    proptest::collection::vec(raw_seg(), 10..n)
}

/// A random 2–4-key trajectory within the space and a matching span.
fn trajectory() -> impl Strategy<Value = Trajectory<2>> {
    (
        1.0f64..15.0,             // start time
        1.0f64..6.0,              // duration
        2.0f64..15.0,             // window side
        proptest::collection::vec((5.0f64..85.0, 5.0f64..85.0), 2..5),
    )
        .prop_map(|(t0, dur, side, centers)| {
            let n = centers.len();
            let keys = centers
                .iter()
                .enumerate()
                .map(|(i, &(cx, cy))| KeySnapshot {
                    t: t0 + dur * i as f64 / (n - 1) as f64,
                    window: Rect::from_corners([cx, cy], [cx + side, cy + side]),
                })
                .collect();
            Trajectory::new(keys)
        })
}

fn nsi_tree(raws: &[RawSeg]) -> (Vec<NsiSegmentRecord<2>>, RTree<NsiSegmentRecord<2>, Pager>) {
    let recs: Vec<NsiSegmentRecord<2>> = raws
        .iter()
        .enumerate()
        .map(|(i, r)| {
            NsiSegmentRecord::new(i as u32, 0, Interval::new(r.t0, r.t0 + r.dur), r.a, r.b)
        })
        .collect();
    let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
    (recs, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pdq_equals_brute_force(raws in segments(250), traj in trajectory()) {
        let (recs, tree) = nsi_tree(&raws);
        let span = traj.span();
        // Brute force: records with non-empty overlap-time.
        let expected: BTreeSet<u32> = recs
            .iter()
            .filter(|r| !traj.overlap_segment(&r.seg).is_empty())
            .map(|r| r.oid)
            .collect();
        let mut pdq = PdqEngine::start(&tree, traj.clone());
        let results = pdq.drain_window(&tree, span.lo, span.hi);
        let got: BTreeSet<u32> = results.iter().map(|r| r.record.oid).collect();
        prop_assert_eq!(got.len(), results.len(), "no duplicates");
        prop_assert_eq!(&got, &expected);
        // Visibility sets must equal the trajectory's exact overlap.
        for r in &results {
            let expect_vis: TimeSet = traj.overlap_segment(&r.record.seg);
            prop_assert_eq!(&r.visibility, &expect_vis);
        }
    }

    #[test]
    fn pdq_results_arrive_sorted_by_entry_time(raws in segments(250), traj in trajectory()) {
        let (_, tree) = nsi_tree(&raws);
        let span = traj.span();
        let mut pdq = PdqEngine::start(&tree, traj);
        let results = pdq.drain_window(&tree, span.lo, span.hi);
        for w in results.windows(2) {
            prop_assert!(
                w[0].visibility.start().unwrap() <= w[1].visibility.start().unwrap() + 1e-12,
                "entry order violated"
            );
        }
    }

    #[test]
    fn pdq_chunked_equals_single_drain(raws in segments(200), traj in trajectory(), chunks in 2usize..20) {
        let (_, tree) = nsi_tree(&raws);
        let span = traj.span();
        let mut one = PdqEngine::start(&tree, traj.clone());
        let all: BTreeSet<u32> = one
            .drain_window(&tree, span.lo, span.hi)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        let mut many = PdqEngine::start(&tree, traj);
        let mut chunked = BTreeSet::new();
        let dt = span.length() / chunks as f64;
        for k in 0..chunks {
            for r in many.drain_window(&tree, span.lo + k as f64 * dt, span.lo + (k + 1) as f64 * dt) {
                chunked.insert(r.record.oid);
            }
        }
        prop_assert_eq!(chunked, all);
        // Same I/O either way.
        prop_assert_eq!(one.stats().disk_accesses, many.stats().disk_accesses);
    }

    #[test]
    fn npdq_open_session_equals_naive(raws in segments(250), traj in trajectory()) {
        let recs: Vec<DtaSegmentRecord<2>> = raws
            .iter()
            .enumerate()
            .map(|(i, r)| {
                DtaSegmentRecord::new(i as u32, 0, Interval::new(r.t0, r.t0 + r.dur), r.a, r.b)
            })
            .collect();
        let cfg = RTreeConfig { bulk_leading_axes: Some(2), ..RTreeConfig::default() };
        let tree = bulk_load(Pager::new(), cfg, recs);
        let span = traj.span();
        let naive = NaiveEngine::new();
        let mut eng = NpdqEngine::new();
        let mut union_npdq = BTreeSet::new();
        let mut union_naive = BTreeSet::new();
        let frames = 12;
        for k in 0..frames {
            let t = span.lo + span.length() * k as f64 / (frames - 1) as f64;
            let q = SnapshotQuery::open_from(traj.window_at(t), t);
            eng.execute(&tree, &q, f64::INFINITY, |r| { union_npdq.insert(r.oid); });
            naive.query_dta(&tree, &q, |r| { union_naive.insert(r.oid); });
        }
        prop_assert_eq!(union_npdq, union_naive);
    }

    #[test]
    fn npdq_instant_session_equals_naive(raws in segments(250), traj in trajectory()) {
        // Same property under instant query semantics.
        let recs: Vec<DtaSegmentRecord<2>> = raws
            .iter()
            .enumerate()
            .map(|(i, r)| {
                DtaSegmentRecord::new(i as u32, 0, Interval::new(r.t0, r.t0 + r.dur), r.a, r.b)
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let span = traj.span();
        let naive = NaiveEngine::new();
        let mut eng = NpdqEngine::new();
        let mut union_npdq = BTreeSet::new();
        let mut union_naive = BTreeSet::new();
        let frames = 12;
        for k in 0..frames {
            let t = span.lo + span.length() * k as f64 / (frames - 1) as f64;
            let q = SnapshotQuery::at_instant(traj.window_at(t), t);
            eng.execute(&tree, &q, f64::INFINITY, |r| { union_npdq.insert((r.oid, r.seq)); });
            naive.query_dta(&tree, &q, |r| { union_naive.insert((r.oid, r.seq)); });
        }
        prop_assert_eq!(union_npdq, union_naive);
    }

    #[test]
    fn spdq_is_superset_of_pdq(raws in segments(200), traj in trajectory(), delta in 0.0f64..5.0) {
        let (_, tree) = nsi_tree(&raws);
        let span = traj.span();
        let mut pdq = PdqEngine::start(&tree, traj.clone());
        let plain: BTreeSet<u32> = pdq
            .drain_window(&tree, span.lo, span.hi)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        let mut spdq = mobiquery::SpdqSession::start(&tree, traj, delta);
        let fat: BTreeSet<u32> = spdq
            .engine_mut()
            .drain_window(&tree, span.lo, span.hi)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        prop_assert!(fat.is_superset(&plain));
    }

    #[test]
    fn knn_matches_brute_force(raws in segments(250), px in 0.0f64..100.0, py in 0.0f64..100.0, t in 1.0f64..20.0, k in 1usize..8) {
        let (recs, tree) = nsi_tree(&raws);
        let mut stats = mobiquery::QueryStats::default();
        let got = mobiquery::knn_at(&tree, [px, py], t, k, f64::INFINITY, &mut stats);
        // Brute force.
        let mut alive: Vec<(f64, u32)> = recs
            .iter()
            .filter(|r| r.seg.t.contains(t))
            .map(|r| (r.seg.dist_sq_at(t, &[px, py]), r.oid))
            .collect();
        alive.sort_by(|a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(got.len(), k.min(alive.len()));
        for (i, res) in got.iter().enumerate() {
            prop_assert!((res.dist_sq - alive[i].0).abs() < 1e-9,
                "rank {i}: {} vs {}", res.dist_sq, alive[i].0);
        }
    }
}
