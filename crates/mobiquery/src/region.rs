//! Space partitioning for multi-tree serving: a 1-D slab grid.
//!
//! The partitioned server (see [`crate::router`]) splits space into
//! *regions*, each owning its own NSI tree, writer, and buffer-pool
//! slice. [`RegionGrid`] is the partition function: `n − 1` strictly
//! increasing interior cuts along one axis define `n` slabs, with the
//! outer slabs extending to ±∞ so every record routes somewhere. Slabs
//! are **closed** on both sides: a rectangle that merely *touches* a cut
//! routes to the slabs on both sides. That closure is the seam rule that
//! makes boundary semantics exactly-once — a trapezoid segment lying on
//! a seam is replicated into both neighbouring trees, each region's
//! engine may deliver it, and the router's merge deduplicates by
//! `(oid, seq)` so the client sees one entry event (the same discipline
//! the PDQ queue applies to re-notified records within one tree).
//!
//! [`RegionGrid::recut`] is the load-adaptive half (after Kiwano,
//! arXiv 1211.4414): given per-region load tallies it places new cuts at
//! equal-load quantiles of the piecewise-uniform load density, so a
//! hotspot slab shrinks and its cold neighbours widen.

use stkit::{Interval, Rect};
use std::ops::Range;

/// A 1-D slab partition of `D`-space: interior cuts along `axis`,
/// outermost slabs unbounded.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionGrid {
    axis: usize,
    /// Strictly increasing, finite interior cut positions.
    cuts: Vec<f64>,
}

impl RegionGrid {
    /// The trivial grid: one region covering everything (partitioned
    /// serving degenerates to the single-tree server).
    pub fn single() -> RegionGrid {
        RegionGrid {
            axis: 0,
            cuts: Vec::new(),
        }
    }

    /// `regions` equal-width slabs over `span` along `axis` (the outer
    /// two still extend to ±∞ beyond `span`).
    pub fn uniform(axis: usize, span: Interval, regions: usize) -> RegionGrid {
        assert!(regions >= 1, "need at least one region");
        assert!(!span.is_empty(), "span must be non-empty");
        let cuts = (1..regions)
            .map(|k| span.lo + (span.hi - span.lo) * k as f64 / regions as f64)
            .collect();
        RegionGrid { axis, cuts }
    }

    /// A grid from explicit interior cuts (must be finite and strictly
    /// increasing). `cuts.len() + 1` regions result.
    pub fn from_cuts(axis: usize, cuts: Vec<f64>) -> RegionGrid {
        assert!(
            cuts.iter().all(|c| c.is_finite()),
            "cuts must be finite"
        );
        assert!(
            cuts.windows(2).all(|w| w[0] < w[1]),
            "cuts must be strictly increasing"
        );
        RegionGrid { axis, cuts }
    }

    /// Number of regions (always ≥ 1).
    pub fn len(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Never true — a grid always has at least one region.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The axis the grid cuts along.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The interior cut positions.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Region `i`'s slab on the cut axis (outer slabs are half-infinite).
    pub fn span_of(&self, i: usize) -> Interval {
        let lo = if i == 0 {
            f64::NEG_INFINITY
        } else {
            self.cuts[i - 1]
        };
        let hi = if i == self.cuts.len() {
            f64::INFINITY
        } else {
            self.cuts[i]
        };
        Interval::new(lo, hi)
    }

    /// The contiguous range of regions a cut-axis interval overlaps.
    /// Slabs are closed, so an interval *touching* a cut includes both
    /// sides; an empty interval routes nowhere.
    pub fn route_interval(&self, iv: &Interval) -> Range<usize> {
        if iv.is_empty() {
            return 0..0;
        }
        // First region whose right edge reaches iv.lo …
        let first = self.cuts.partition_point(|c| *c < iv.lo);
        // … through the last region whose left edge is within iv.hi.
        let last = self.cuts.partition_point(|c| *c <= iv.hi);
        first..last + 1
    }

    /// The regions a rectangle overlaps (closed-boundary, like
    /// [`Self::route_interval`]); a rect lying on a seam routes to both
    /// neighbours — the replication that keeps seam events exactly-once
    /// after the router's merge dedup.
    pub fn route_rect<const D: usize>(&self, rect: &Rect<D>) -> Range<usize> {
        self.route_interval(&rect.extent(self.axis))
    }

    /// Re-partition into `target` regions at equal-load quantiles.
    ///
    /// `loads[i]` is region `i`'s accumulated load (node reads + writes,
    /// from the per-region obs counters), modelled as spread uniformly
    /// over its slab clamped to `bounds` (the outer half-infinite slabs
    /// must be pinned to something finite — the data's extent). Cuts land
    /// where the piecewise-linear cumulative load crosses `k/target` of
    /// the total; zero total load falls back to the uniform grid.
    pub fn recut(&self, bounds: Interval, loads: &[u64], target: usize) -> RegionGrid {
        assert_eq!(loads.len(), self.len(), "one load tally per region");
        assert!(target >= 1, "need at least one region");
        assert!(!bounds.is_empty(), "bounds must be non-empty");
        let total: u64 = loads.iter().sum();
        if total == 0 || target == 1 {
            return if target == 1 {
                RegionGrid {
                    axis: self.axis,
                    cuts: Vec::new(),
                }
            } else {
                RegionGrid::uniform(self.axis, bounds, target)
            };
        }
        // Slab edges clamped into bounds: x[0]=bounds.lo … x[n]=bounds.hi.
        let n = self.len();
        let mut edges = Vec::with_capacity(n + 1);
        edges.push(bounds.lo);
        for c in &self.cuts {
            edges.push(c.clamp(bounds.lo, bounds.hi));
        }
        edges.push(bounds.hi);
        let mut cuts = Vec::with_capacity(target - 1);
        let mut acc = 0.0f64;
        let mut slab = 0usize;
        for k in 1..target {
            let want = total as f64 * k as f64 / target as f64;
            // Advance to the slab containing the k-th load quantile.
            while slab < n && acc + (loads[slab] as f64) < want {
                acc += loads[slab] as f64;
                slab += 1;
            }
            let (lo, hi) = (edges[slab], edges[slab + 1]);
            let load = loads.get(slab).copied().unwrap_or(0) as f64;
            let frac = if load > 0.0 { (want - acc) / load } else { 0.5 };
            let x = lo + (hi - lo) * frac.clamp(0.0, 1.0);
            // Keep cuts strictly increasing and interior to bounds; a
            // quantile collapsing onto its predecessor (zero-width hot
            // slab) is dropped — fewer regions beat an empty one.
            if x > bounds.lo && x < bounds.hi && cuts.last().is_none_or(|&p| x > p) {
                cuts.push(x);
            }
        }
        RegionGrid {
            axis: self.axis,
            cuts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_grid_routes_everything_to_region_zero() {
        let g = RegionGrid::single();
        assert_eq!(g.len(), 1);
        assert_eq!(g.route_interval(&Interval::new(-1e12, 1e12)), 0..1);
        assert_eq!(g.span_of(0), Interval::new(f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn uniform_cuts_are_evenly_spaced() {
        let g = RegionGrid::uniform(1, Interval::new(0.0, 100.0), 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.cuts(), &[25.0, 50.0, 75.0]);
        assert_eq!(g.axis(), 1);
        assert_eq!(g.span_of(0), Interval::new(f64::NEG_INFINITY, 25.0));
        assert_eq!(g.span_of(1), Interval::new(25.0, 50.0));
        assert_eq!(g.span_of(3), Interval::new(75.0, f64::INFINITY));
    }

    #[test]
    fn interior_interval_routes_to_one_region() {
        let g = RegionGrid::from_cuts(0, vec![10.0, 20.0]);
        assert_eq!(g.route_interval(&Interval::new(11.0, 19.0)), 1..2);
        assert_eq!(g.route_interval(&Interval::new(-5.0, 9.0)), 0..1);
        assert_eq!(g.route_interval(&Interval::new(21.0, 1e9)), 2..3);
    }

    #[test]
    fn spanning_interval_routes_to_every_region_it_crosses() {
        let g = RegionGrid::from_cuts(0, vec![10.0, 20.0]);
        assert_eq!(g.route_interval(&Interval::new(5.0, 25.0)), 0..3);
        assert_eq!(g.route_interval(&Interval::new(9.0, 11.0)), 0..2);
    }

    #[test]
    fn seam_touching_interval_routes_to_both_sides() {
        // Closed slabs: the point interval exactly on a cut belongs to
        // the regions on BOTH sides — the exactly-once seam rule.
        let g = RegionGrid::from_cuts(0, vec![5.0]);
        assert_eq!(g.route_interval(&Interval::new(5.0, 5.0)), 0..2);
        assert_eq!(g.route_interval(&Interval::new(5.0, 7.0)), 0..2);
        assert_eq!(g.route_interval(&Interval::new(3.0, 5.0)), 0..2);
        // Strictly past the cut: one side only.
        assert_eq!(g.route_interval(&Interval::new(5.1, 7.0)), 1..2);
    }

    #[test]
    fn empty_interval_routes_nowhere() {
        let g = RegionGrid::from_cuts(0, vec![5.0]);
        assert_eq!(g.route_interval(&Interval::EMPTY), 0..0);
    }

    #[test]
    fn rect_routes_by_grid_axis_extent() {
        let g = RegionGrid::from_cuts(1, vec![50.0]);
        let low: Rect<2> = Rect::from_corners([0.0, 0.0], [100.0, 49.0]);
        let straddle: Rect<2> = Rect::from_corners([0.0, 40.0], [1.0, 60.0]);
        assert_eq!(g.route_rect(&low), 0..1);
        assert_eq!(g.route_rect(&straddle), 0..2);
    }

    #[test]
    fn recut_moves_cuts_toward_the_hot_region() {
        let g = RegionGrid::uniform(0, Interval::new(0.0, 100.0), 2);
        // Region 0 carries 3× region 1's load: the new cut must move
        // left of 50 so the hot half shrinks.
        let r = g.recut(Interval::new(0.0, 100.0), &[300, 100], 2);
        assert_eq!(r.len(), 2);
        assert!(r.cuts()[0] < 50.0, "cut {} should move left", r.cuts()[0]);
        // Equal-load quantile of a piecewise-uniform density: 200 of the
        // 400 total sits at x = 100 * (200/300) / 2 = 33.3….
        assert!((r.cuts()[0] - 100.0 * (2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn recut_with_zero_load_is_uniform() {
        let g = RegionGrid::uniform(0, Interval::new(0.0, 80.0), 2);
        let r = g.recut(Interval::new(0.0, 80.0), &[0, 0], 4);
        assert_eq!(r.cuts(), &[20.0, 40.0, 60.0]);
    }

    #[test]
    fn recut_can_change_region_count() {
        let g = RegionGrid::single();
        let r = g.recut(Interval::new(0.0, 10.0), &[1000], 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.cuts(), &[2.5, 5.0, 7.5]);
        let back = r.recut(Interval::new(0.0, 10.0), &[1, 1, 1, 1], 1);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn recut_balances_loads_when_rerouted() {
        // After recutting on skewed loads, a uniform point workload over
        // the hot slab spreads across more regions than before.
        let g = RegionGrid::uniform(0, Interval::new(0.0, 100.0), 4);
        let r = g.recut(Interval::new(0.0, 100.0), &[900, 30, 40, 30], 4);
        assert_eq!(r.len(), 4);
        // Three of the four slabs now live inside the old hot [0, 25).
        assert!(r.cuts()[2] <= 25.0 + 1e-9, "cuts {:?}", r.cuts());
    }
}
