//! Spatio-temporal distance joins — the paper's future work (ii).
//!
//! "Generalizing dynamic queries to include more complex queries
//! involving simple or distance-joins" (§6, after Hjaltason & Samet's
//! incremental distance joins, cited as \[6\]).
//!
//! [`distance_join`] finds every pair of motion segments — one from each
//! of two indexes — that come within Euclidean distance `δ` of each other
//! during a time window, reporting the exact *meeting time set* of each
//! pair (the squared pair distance is quadratic in `t`, solved by
//! `stkit::within_distance`). The dual-tree traversal prunes node pairs
//! whose boxes are further than `δ` apart in space or disjoint in time.
//!
//! [`self_distance_join`] is the one-set variant (e.g. "all pairs of
//! vehicles that pass within 1 km of each other today").

use crate::stats::QueryStats;
use rtree::{NsiSegmentRecord, RTree};
use storage::PageStore;
use stkit::{within_distance, Interval, TimeSet};

/// One joined pair and the times the two objects are within `δ`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinPair<const D: usize> {
    /// Record from the left index.
    pub a: NsiSegmentRecord<D>,
    /// Record from the right index.
    pub b: NsiSegmentRecord<D>,
    /// The (possibly disconnected) set of meeting times, clipped to the
    /// query window.
    pub meeting: TimeSet,
}

/// Dual-tree distance join between two NSI indexes over a time window.
pub fn distance_join<const D: usize, SA: PageStore, SB: PageStore>(
    left: &RTree<NsiSegmentRecord<D>, SA>,
    right: &RTree<NsiSegmentRecord<D>, SB>,
    delta: f64,
    window: Interval,
    mut emit: impl FnMut(JoinPair<D>),
) -> QueryStats {
    assert!(delta >= 0.0, "distance threshold must be non-negative");
    let mut stats = QueryStats::default();
    let mut stack = vec![(left.root_page(), right.root_page())];
    let delta_sq = delta * delta;
    while let Some((pa, pb)) = stack.pop() {
        // Zero-copy visits: both nodes stay as borrowed views over their
        // pages; entries decode lazily.
        let na = left.read_node(pa);
        let nb = right.read_node(pb);
        stats.disk_accesses += 2;
        if na.is_leaf() {
            stats.leaf_accesses += 1;
        }
        if nb.is_leaf() {
            stats.leaf_accesses += 1;
        }
        match (na.is_leaf(), nb.is_leaf()) {
            (false, false) => {
                for (ka, ca) in na.internal_entries() {
                    for (kb, cb) in nb.internal_entries() {
                        stats.distance_computations += 1;
                        if compatible(&ka, &kb, delta_sq, &window) {
                            stack.push((ca, cb));
                        }
                    }
                }
            }
            (false, true) => {
                // Descend the left side only; the right node re-loads per
                // matching child (counted — the naive dual traversal).
                let kb = nb.bounding_key();
                for (ka, ca) in na.internal_entries() {
                    stats.distance_computations += 1;
                    if compatible(&ka, &kb, delta_sq, &window) {
                        stack.push((ca, pb));
                    }
                }
            }
            (true, false) => {
                let ka = na.bounding_key();
                for (kb, cb) in nb.internal_entries() {
                    stats.distance_computations += 1;
                    if compatible(&ka, &kb, delta_sq, &window) {
                        stack.push((pa, cb));
                    }
                }
            }
            (true, true) => {
                // Materialize the inner side once per node pair; the outer
                // side streams straight off the page.
                let inner: Vec<_> = nb.leaf_records().collect();
                for a in na.leaf_records() {
                    for &b in &inner {
                        stats.distance_computations += 1;
                        use rtree::Record;
                        if !compatible(&a.key(), &b.key(), delta_sq, &window) {
                            continue;
                        }
                        let meeting =
                            within_distance(&a.seg, &b.seg, delta).intersect_interval(&window);
                        if !meeting.is_empty() {
                            stats.results += 1;
                            emit(JoinPair { a, b, meeting });
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Self-join: pairs of distinct objects within `δ` (each unordered pair
/// reported once, `a.oid < b.oid`).
pub fn self_distance_join<const D: usize, S: PageStore>(
    tree: &RTree<NsiSegmentRecord<D>, S>,
    delta: f64,
    window: Interval,
    mut emit: impl FnMut(JoinPair<D>),
) -> QueryStats {
    distance_join(tree, tree, delta, window, |p| {
        if p.a.oid < p.b.oid {
            emit(p);
        }
    })
}

/// Can any pair under these two keys be within `δ` during `window`?
fn compatible<const D: usize>(
    a: &stkit::StBox<D, 1>,
    b: &stkit::StBox<D, 1>,
    delta_sq: f64,
    window: &Interval,
) -> bool {
    a.time.extent(0).overlaps(&b.time.extent(0))
        && a.time.extent(0).overlaps(window)
        && b.time.extent(0).overlaps(window)
        && a.space.min_dist_sq_rect(&b.space) <= delta_sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;

    type R = NsiSegmentRecord<2>;

    /// n objects crossing a corridor in both directions.
    fn crossing_recs(n: u32) -> Vec<R> {
        (0..n)
            .map(|i| {
                let y = i as f64;
                if i % 2 == 0 {
                    // Eastbound on even rows.
                    R::new(i, 0, Interval::new(0.0, 10.0), [0.0, y], [10.0, y])
                } else {
                    // Westbound on odd rows.
                    R::new(i, 0, Interval::new(0.0, 10.0), [10.0, y], [0.0, y])
                }
            })
            .collect()
    }

    fn brute_pairs(recs: &[R], delta: f64, window: Interval) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, a) in recs.iter().enumerate() {
            for b in &recs[i + 1..] {
                if !within_distance(&a.seg, &b.seg, delta)
                    .intersect_interval(&window)
                    .is_empty()
                {
                    out.push((a.oid.min(b.oid), a.oid.max(b.oid)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn self_join_matches_brute_force() {
        let recs = crossing_recs(20);
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
        let window = Interval::new(0.0, 10.0);
        for delta in [0.5, 1.0, 2.5] {
            let mut got = Vec::new();
            let stats = self_distance_join(&tree, delta, window, |p| {
                got.push((p.a.oid.min(p.b.oid), p.a.oid.max(p.b.oid)));
            });
            got.sort_unstable();
            assert_eq!(got, brute_pairs(&recs, delta, window), "delta {delta}");
            assert!(stats.results as usize >= got.len());
        }
    }

    #[test]
    fn meeting_times_are_exact() {
        // Two head-on objects on the same row meet at t = 5; within 2
        // units during [4, 6] (closing speed 2).
        let recs = vec![
            R::new(0, 0, Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]),
            R::new(1, 0, Interval::new(0.0, 10.0), [10.0, 0.0], [0.0, 0.0]),
        ];
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut pairs = Vec::new();
        self_distance_join(&tree, 2.0, Interval::new(0.0, 10.0), |p| pairs.push(p));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].meeting.hull(), Interval::new(4.0, 6.0));
    }

    #[test]
    fn window_clips_meetings() {
        let recs = vec![
            R::new(0, 0, Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]),
            R::new(1, 0, Interval::new(0.0, 10.0), [10.0, 0.0], [0.0, 0.0]),
        ];
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        // Window ends before they get close.
        let mut n = 0;
        self_distance_join(&tree, 2.0, Interval::new(0.0, 3.0), |_| n += 1);
        assert_eq!(n, 0);
        // Window catches only the first half of the encounter.
        let mut pairs = Vec::new();
        self_distance_join(&tree, 2.0, Interval::new(0.0, 5.0), |p| pairs.push(p));
        assert_eq!(pairs[0].meeting.hull(), Interval::new(4.0, 5.0));
    }

    #[test]
    fn two_tree_join() {
        // Left: eastbound fleet; right: westbound fleet on the same rows.
        let (mut left_recs, mut right_recs) = (Vec::new(), Vec::new());
        for i in 0..10u32 {
            let y = i as f64 * 3.0;
            left_recs.push(R::new(i, 0, Interval::new(0.0, 10.0), [0.0, y], [10.0, y]));
            right_recs.push(R::new(
                100 + i,
                0,
                Interval::new(0.0, 10.0),
                [10.0, y],
                [0.0, y],
            ));
        }
        let left = bulk_load(Pager::new(), RTreeConfig::default(), left_recs);
        let right = bulk_load(Pager::new(), RTreeConfig::default(), right_recs);
        let mut pairs = Vec::new();
        let stats = distance_join(&left, &right, 1.0, Interval::new(0.0, 10.0), |p| {
            pairs.push((p.a.oid, p.b.oid));
        });
        // Rows are 3 apart, δ = 1: only same-row pairs meet.
        assert_eq!(pairs.len(), 10);
        for (a, b) in &pairs {
            assert_eq!(a + 100, *b);
        }
        assert_eq!(stats.results, 10);
    }

    #[test]
    fn pruning_saves_comparisons() {
        // Spread clusters far apart: dual-tree must not compare across.
        let mut recs = Vec::new();
        for i in 0..200u32 {
            let base = if i < 100 { 0.0 } else { 5000.0 };
            let x = base + (i % 10) as f64;
            let y = (i / 10 % 10) as f64;
            recs.push(R::new(i, 0, Interval::new(0.0, 10.0), [x, y], [x + 1.0, y]));
        }
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
        let mut n = 0;
        let stats = self_distance_join(&tree, 0.5, Interval::new(0.0, 10.0), |_| n += 1);
        // Brute force would be 200·199/2 ≈ 19 900 pair tests plus node
        // pairs; pruning should cut well below record-pair exhaustion
        // across clusters (100·100 = 10 000 cross pairs alone).
        let brute = brute_pairs(&recs, 0.5, Interval::new(0.0, 10.0));
        assert_eq!(n, brute.len());
        assert!(
            stats.distance_computations < 19_900,
            "no pruning happened: {}",
            stats.distance_computations
        );
    }
}
