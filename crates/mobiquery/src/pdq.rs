//! Predictive Dynamic Queries (§4.1).
//!
//! The trajectory is known ahead of time, so the engine traverses the
//! R-tree *once* for the whole dynamic query: a priority queue holds
//! index items (nodes and objects) keyed by the **start of their
//! overlap-time interval** with the moving query window.
//! [`PdqEngine::get_next`] is the paper's `getNext(t_start, t_end)`:
//! it pops items in overlap order, expanding nodes lazily (each node
//! loaded at most once — this is the I/O optimality argument) and
//! returning each object exactly when it enters the view, together with
//! its full visibility time set so the client cache knows when to evict
//! it.
//!
//! Concurrent insertions are handled per the paper's update-management
//! protocol: [`PdqEngine::notify`] receives the [`rtree::InsertReport`]
//! (the record itself, or the lowest common ancestor of all pages a
//! cascading split created), re-enqueues it if it intersects the
//! trajectory, eliminates duplicate pops, and rebuilds the queue from the
//! root when the LCA is close to the root.

use crate::stats::QueryStats;
use crate::trajectory::Trajectory;
use rtree::{Inserted, NsiSegmentRecord, Record, TreeRead};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use storage::{PageId, StorageError};
use stkit::{RectBatch, SegmentBatch, TimeSet};

/// One answer of a dynamic query: the record plus the set of times during
/// which it is visible ("the database will inform the application about
/// how long that object will stay in the view").
#[derive(Clone, Debug, PartialEq)]
pub struct PdqResult<const D: usize> {
    /// The motion-segment record.
    pub record: NsiSegmentRecord<D>,
    /// Exact times the object is inside the moving window.
    pub visibility: TimeSet,
}

#[derive(Clone, Debug)]
enum ItemKind<const D: usize> {
    Node { page: PageId, level: u32 },
    Object(Box<PdqResult<D>>),
}

#[derive(Clone, Debug)]
struct QueueItem<const D: usize> {
    /// Start of the overlap-time interval — the queue priority.
    start: f64,
    /// End of the overlap-time interval.
    end: f64,
    kind: ItemKind<D>,
}

impl<const D: usize> QueueItem<D> {
    /// Identity for duplicate elimination: page for nodes, (oid, seq) for
    /// objects.
    fn identity(&self) -> ItemId {
        match &self.kind {
            ItemKind::Node { page, .. } => ItemId::Node(*page),
            ItemKind::Object(r) => ItemId::Object(r.record.oid, r.record.seq),
        }
    }

    /// Deterministic tie-break key for items sharing a `start`: objects
    /// pop before nodes (an answer due now beats speculative expansion),
    /// then ascending identity. Without this, `BinaryHeap`'s arbitrary
    /// tie order makes result order depend on insertion history.
    fn tie_key(&self) -> (u8, u64) {
        match &self.kind {
            ItemKind::Object(r) => (0, ((r.record.oid as u64) << 32) | r.record.seq as u64),
            ItemKind::Node { page, .. } => (1, page.0 as u64),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ItemId {
    Node(PageId),
    Object(u32, u32),
}

impl<const D: usize> PartialEq for QueueItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize> Eq for QueueItem<D> {}
impl<const D: usize> PartialOrd for QueueItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for QueueItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-start-first,
        // with a total tie-break so pop order is deterministic.
        other
            .start
            .total_cmp(&self.start)
            .then_with(|| other.tie_key().cmp(&self.tie_key()))
    }
}

/// The PDQ query processor for one dynamic query.
///
/// The engine holds only queue state; every method borrows the tree, so
/// callers remain free to insert into the tree between calls (forwarding
/// each [`rtree::InsertReport`] through [`PdqEngine::notify`]).
///
/// ```
/// use mobiquery::{PdqEngine, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// // One stationary object at (5.5, 0.5).
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// tree.insert(
///     NsiSegmentRecord::new(7, 0, Interval::new(0.0, 100.0), [5.5, 0.5], [5.5, 0.5]),
///     0.0,
/// );
/// // A 1×1 window sliding right at speed 1 over t ∈ [0, 10].
/// let traj = Trajectory::linear(
///     Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///     [1.0, 0.0], Interval::new(0.0, 10.0), 2);
/// let mut pdq = PdqEngine::start(&tree, traj);
/// let hit = pdq.get_next(&tree, 0.0, 10.0).unwrap();
/// assert_eq!(hit.record.oid, 7);
/// // The window [t, t+1] covers x = 5.5 during t ∈ [4.5, 5.5].
/// assert_eq!(hit.visibility.hull(), Interval::new(4.5, 5.5));
/// assert!(pdq.get_next(&tree, 0.0, 10.0).is_none());
/// ```
#[derive(Debug)]
pub struct PdqEngine<const D: usize> {
    trajectory: Trajectory<D>,
    queue: BinaryHeap<QueueItem<D>>,
    /// §4.1 footnote 2: identities popped at the current head priority,
    /// for consecutive-duplicate elimination.
    recent: Vec<ItemId>,
    recent_priority: f64,
    /// Correctness backstop beyond the paper's consecutive-pop check:
    /// nodes already expanded and objects already returned are never
    /// processed twice even if a duplicate resurfaces at a later priority.
    expanded: HashSet<PageId>,
    returned: HashSet<(u32, u32)>,
    /// Latest `t_start` the application has asked for, so [`Self::notify`]
    /// can discard reports whose overlap lies entirely in the past instead
    /// of growing the queue without bound.
    last_t_start: f64,
    /// Deepest the queue has ever been — the engine's memory footprint
    /// proxy (the paper's queue-size concern in §4.1).
    queue_hwm: usize,
    stats: QueryStats,
    /// SoA staging for internal-node entry boxes (scratch, reused).
    rect_batch: RectBatch<D>,
    /// SoA staging for leaf motion segments (scratch, reused).
    seg_batch: SegmentBatch<D>,
    /// Per-entry overlap time sets from the last batch solve (scratch).
    ts_out: Vec<TimeSet>,
    /// Leaf records staged alongside `seg_batch` (scratch).
    pending_recs: Vec<NsiSegmentRecord<D>>,
    /// Child pages staged alongside `rect_batch` (scratch).
    pending_children: Vec<PageId>,
    /// Levels-from-root threshold for the §4.1 rebuild heuristic: if an
    /// update's LCA is at distance < `rebuild_depth` from the root, drop
    /// and rebuild the queue instead of patching it.
    pub rebuild_depth: u32,
}

impl<const D: usize> PdqEngine<D> {
    /// Start a dynamic query: seeds the queue with the root (if the root's
    /// box overlaps the trajectory at all).
    pub fn start<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        tree: &T,
        trajectory: Trajectory<D>,
    ) -> Self {
        let mut engine = PdqEngine {
            trajectory,
            queue: BinaryHeap::new(),
            recent: Vec::new(),
            recent_priority: f64::NAN,
            expanded: HashSet::new(),
            returned: HashSet::new(),
            last_t_start: f64::NEG_INFINITY,
            queue_hwm: 0,
            stats: QueryStats::default(),
            rect_batch: RectBatch::new(),
            seg_batch: SegmentBatch::new(),
            ts_out: Vec::new(),
            pending_recs: Vec::new(),
            pending_children: Vec::new(),
            rebuild_depth: 1,
        };
        engine.seed_root(tree);
        engine
    }

    /// All queue pushes funnel through here so the high-water mark and
    /// trace stream stay exact.
    fn push_item(&mut self, item: QueueItem<D>) {
        self.queue.push(item);
        let depth = self.queue.len();
        if depth > self.queue_hwm {
            self.queue_hwm = depth;
        }
        obs::trace(obs::TraceEvent::QueueOp {
            op: obs::QueueOpKind::Push,
            depth: depth as u32,
        });
    }

    fn seed_root<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(&mut self, tree: &T) {
        // The root has no stored bounding box above it; enqueue it over
        // the whole trajectory span (it is examined precisely on first pop).
        let span = self.trajectory.span();
        self.push_item(QueueItem {
            start: span.lo,
            end: span.hi,
            kind: ItemKind::Node {
                page: tree.root_page(),
                level: tree.height() - 1,
            },
        });
    }

    /// The trajectory this engine answers.
    pub fn trajectory(&self) -> &Trajectory<D> {
        &self.trajectory
    }

    /// Accumulated cost since the engine started.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Take and reset the accumulated cost (per-frame measurement).
    pub fn take_stats(&mut self) -> QueryStats {
        std::mem::take(&mut self.stats)
    }

    /// Items currently queued (diagnostic).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Deepest the queue has ever been since the engine started.
    pub fn queue_hwm(&self) -> usize {
        self.queue_hwm
    }

    /// The paper's `getNext(t_start, t_end)`: return the next object whose
    /// visibility overlaps `[t_start, t_end]`, or `None` if no such object
    /// exists yet (head of queue lies beyond `t_end`, or queue empty).
    ///
    /// Items whose overlap interval ended before `t_start` are discarded —
    /// the application never asked for them (it "skipped ahead").
    pub fn get_next<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
    ) -> Option<PdqResult<D>> {
        self.try_get_next(tree, t_start, t_end)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Fallible form of [`Self::get_next`]: a device fault while
    /// expanding a node surfaces as `Err` carrying the failing page. The
    /// engine stays consistent — the un-expanded node is re-enqueued at
    /// its old priority and its duplicate-elimination footprint is
    /// retracted, so the very next call retries the read. Results already
    /// returned are never repeated and none are lost: a session can keep
    /// calling across frames and heal once the fault clears.
    pub fn try_get_next<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
    ) -> Result<Option<PdqResult<D>>, StorageError> {
        if t_start > self.last_t_start {
            self.last_t_start = t_start;
        }
        loop {
            let Some(head) = self.queue.peek() else {
                return Ok(None);
            };
            if head.start > t_end {
                // Head is in the future w.r.t. the requested window.
                return Ok(None);
            }
            let item = self.queue.pop().expect("peeked");
            obs::trace(obs::TraceEvent::QueueOp {
                op: obs::QueueOpKind::Pop,
                depth: self.queue.len() as u32,
            });

            // §4.1 duplicate elimination: duplicates share a priority and
            // pop consecutively.
            if item.start == self.recent_priority {
                if self.recent.contains(&item.identity()) {
                    self.stats.duplicates_skipped += 1;
                    continue;
                }
                self.recent.push(item.identity());
            } else {
                self.recent_priority = item.start;
                self.recent.clear();
                self.recent.push(item.identity());
            }

            if item.end < t_start {
                // Entirely in the past: dropped unexamined (line 7).
                continue;
            }
            match item.kind {
                ItemKind::Object(result) => {
                    if self.returned.insert((result.record.oid, result.record.seq)) {
                        self.stats.results += 1;
                        return Ok(Some(*result));
                    }
                    self.stats.duplicates_skipped += 1;
                }
                ItemKind::Node { page, level } => {
                    if self.expanded.contains(&page) {
                        self.stats.duplicates_skipped += 1;
                    } else if let Err(e) = self.expand(tree, page, level, t_start) {
                        // Re-enqueue the un-expanded node at its old
                        // priority and retract its footprint in `recent`,
                        // or the retry would be eliminated as a duplicate.
                        self.recent.pop();
                        self.push_item(QueueItem {
                            start: item.start,
                            end: item.end,
                            kind: ItemKind::Node { page, level },
                        });
                        return Err(e);
                    } else {
                        self.expanded.insert(page);
                    }
                }
            }
        }
    }

    /// Read a node (one disk access, zero-copy) and enqueue each child
    /// whose overlap-time set is non-empty and not entirely before
    /// `t_start`. Entries are decoded lazily straight out of the page.
    fn expand<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        page: PageId,
        level: u32,
        t_start: f64,
    ) -> Result<(), StorageError> {
        let node = tree.try_read_node(page)?;
        self.stats.disk_accesses += 1;
        if level == 0 {
            self.stats.leaf_accesses += 1;
        }
        if node.is_leaf() {
            // Stage every not-yet-returned segment into the SoA batch,
            // then solve all lanes per trajectory piece (branch-free
            // inner loops, bit-identical to the scalar path).
            self.seg_batch.clear();
            self.pending_recs.clear();
            for rec in node.leaf_records() {
                self.stats.distance_computations += 1;
                if self.returned.contains(&(rec.oid, rec.seq)) {
                    continue;
                }
                self.seg_batch.push(&rec.seg);
                self.pending_recs.push(rec);
            }
            self.trajectory
                .overlap_segment_batch_into(&mut self.seg_batch, &mut self.ts_out);
            for j in 0..self.pending_recs.len() {
                let ts = std::mem::take(&mut self.ts_out[j]);
                let rec = self.pending_recs[j];
                self.enqueue_timeset(ts, t_start, |ts| QueueItem {
                    start: ts.start().unwrap(),
                    end: ts.end().unwrap(),
                    kind: ItemKind::Object(Box::new(PdqResult {
                        record: rec,
                        visibility: ts.clone(),
                    })),
                });
            }
        } else {
            let child_level = node.level() - 1;
            self.rect_batch.clear();
            self.pending_children.clear();
            for (key, child) in node.internal_entries() {
                self.stats.distance_computations += 1;
                self.rect_batch.push(&key.space, &key.time.extent(0));
                self.pending_children.push(child);
            }
            self.trajectory
                .overlap_rect_batch_into(&mut self.rect_batch, &mut self.ts_out);
            for j in 0..self.pending_children.len() {
                let ts = std::mem::take(&mut self.ts_out[j]);
                let child = self.pending_children[j];
                self.enqueue_timeset(ts, t_start, |ts| QueueItem {
                    start: ts.start().unwrap(),
                    end: ts.end().unwrap(),
                    kind: ItemKind::Node {
                        page: child,
                        level: child_level,
                    },
                });
            }
        }
        Ok(())
    }

    fn enqueue_timeset(
        &mut self,
        ts: TimeSet,
        t_start: f64,
        make: impl FnOnce(&TimeSet) -> QueueItem<D>,
    ) {
        if ts.is_empty() {
            return;
        }
        // Entirely before the earliest time the application still cares
        // about: never enqueued (algorithm line 12).
        if ts.end().unwrap() < t_start {
            return;
        }
        let item = make(&ts);
        self.push_item(item);
    }

    /// Drain every object whose visibility overlaps `[t_start, t_end]`.
    /// The typical per-frame call: all objects newly appearing by the
    /// frame's time.
    pub fn drain_window<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
    ) -> Vec<PdqResult<D>> {
        let mut out = Vec::new();
        self.drain_window_into(tree, t_start, t_end, &mut out);
        out
    }

    /// Like [`Self::drain_window`], but appends into a caller-owned
    /// buffer so per-frame serving loops can reuse one allocation across
    /// frames.
    pub fn drain_window_into<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
        out: &mut Vec<PdqResult<D>>,
    ) {
        self.try_drain_window_into(tree, t_start, t_end, out)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Fallible form of [`Self::drain_window_into`]: results due before
    /// the fault are appended to `out` and remain valid; the failing node
    /// stays queued for retry (see [`Self::try_get_next`]).
    pub fn try_drain_window_into<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
        out: &mut Vec<PdqResult<D>>,
    ) -> Result<(), StorageError> {
        while let Some(r) = self.try_get_next(tree, t_start, t_end)? {
            out.push(r);
        }
        Ok(())
    }

    /// §4.1 update management: called with the report of every insertion
    /// that runs concurrently with this dynamic query.
    pub fn notify<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        report: &rtree::InsertReport<<NsiSegmentRecord<D> as Record>::Key, NsiSegmentRecord<D>>,
    ) {
        // Reports whose overlap ended before the latest requested t_start
        // go through the same staleness filter as expansion: the
        // application will never ask for them, so enqueueing them would
        // only grow the queue without bound under a sustained insert load.
        let t_start = self.last_t_start;
        match &report.notify {
            Inserted::Record(rec) => {
                if self.returned.contains(&(rec.oid, rec.seq)) {
                    return;
                }
                let ts = self.trajectory.overlap_segment(&rec.seg);
                let rec = *rec;
                self.enqueue_timeset(ts, t_start, |ts| QueueItem {
                    start: ts.start().unwrap(),
                    end: ts.end().unwrap(),
                    kind: ItemKind::Object(Box::new(PdqResult {
                        record: rec,
                        visibility: ts.clone(),
                    })),
                });
            }
            Inserted::Subtree { page, key, level } => {
                let root_distance = tree.height().saturating_sub(1 + *level);
                if report.root_split || root_distance < self.rebuild_depth {
                    // LCA close to the root: high duplication risk —
                    // rebuild the queue from the root (§4.1).
                    self.rebuild(tree);
                    return;
                }
                let ts = self.trajectory.overlap_nsi_box(key);
                if !ts.is_empty() && ts.end().unwrap() >= t_start {
                    // The subtree's contents changed: allow re-expansion.
                    self.expanded.remove(page);
                    self.push_item(QueueItem {
                        start: ts.start().unwrap(),
                        end: ts.end().unwrap(),
                        kind: ItemKind::Node {
                            page: *page,
                            level: *level,
                        },
                    });
                }
            }
        }
    }

    /// Drop all queue state and restart from the root, preserving the set
    /// of already-returned objects so nothing is reported twice.
    pub fn rebuild<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(&mut self, tree: &T) {
        self.queue.clear();
        self.expanded.clear();
        self.recent.clear();
        self.recent_priority = f64::NAN;
        self.seed_root(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::{RTree, RTreeConfig};
    use storage::Pager;
    use stkit::{Interval, Rect};

    type R = NsiSegmentRecord<2>;

    /// Stationary objects on a line at y = 0.5, one per integer x.
    fn line_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    /// 1×1 window sliding right at speed 1 from x=0 over t ∈ [0, span].
    fn slide(span: f64) -> Trajectory<2> {
        Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        )
    }

    #[test]
    fn objects_arrive_in_entry_order() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let results = pdq.drain_window(&tree, 0.0, 50.0);
        // Window [t, t+1] × [0,1] covers object i (at x=i+0.5) during
        // t ∈ [i−0.5, i+0.5]; all 50 objects eventually appear.
        assert_eq!(results.len(), 50);
        let oids: Vec<u32> = results.iter().map(|r| r.record.oid).collect();
        let mut sorted = oids.clone();
        sorted.sort_unstable();
        assert_eq!(oids, sorted, "objects must arrive in entry order");
        // Visibility of object 10 is [9.5, 10.5].
        let v = &results[10].visibility;
        assert_eq!(v.hull(), Interval::new(9.5, 10.5));
    }

    #[test]
    fn get_next_respects_window() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        // Ask only for objects appearing during [0, 5]: objects 0..=5
        // (object i enters at i−0.5 ≤ 5 ⇒ i ≤ 5).
        let early = pdq.drain_window(&tree, 0.0, 5.0);
        let oids: Vec<u32> = early.iter().map(|r| r.record.oid).collect();
        assert_eq!(oids, vec![0, 1, 2, 3, 4, 5]);
        // The rest arrive when asked for later windows; nothing repeats.
        let late = pdq.drain_window(&tree, 5.0, 50.0);
        assert_eq!(late.len(), 44);
        assert!(late.iter().all(|r| r.record.oid > 5));
    }

    #[test]
    fn each_node_loaded_at_most_once() {
        let tree = line_tree(2000);
        let mut pdq = PdqEngine::start(&tree, slide(100.0));
        // Drain frame by frame (high frame rate), as a renderer would.
        let mut total = QueryStats::default();
        let mut results = 0;
        let mut t = 0.0;
        while t < 100.0 {
            let batch = pdq.drain_window(&tree, t, t + 0.1);
            results += batch.len();
            total += pdq.take_stats();
            t += 0.1;
        }
        // The window sweeps x∈[0,101]: objects 0..=100 get covered... the
        // window reaches x=101 at t=100, so objects with x < 101 appear.
        assert_eq!(results, 101);
        // I/O optimality: disk accesses bounded by total node count, and
        // in particular FAR below frames × per-query cost.
        let inv = tree.validate().unwrap();
        assert!(
            total.disk_accesses <= inv.nodes,
            "visited {} nodes of {}",
            total.disk_accesses,
            inv.nodes
        );
        assert_eq!(total.duplicates_skipped, 0, "static tree has no dups");
    }

    #[test]
    fn empty_region_returns_none_cheaply() {
        let tree = line_tree(10);
        // Trajectory far away from all data.
        let tr = Trajectory::linear(
            Rect::from_corners([500.0, 500.0], [501.0, 501.0]),
            [1.0, 0.0],
            Interval::new(0.0, 10.0),
            2,
        );
        let mut pdq = PdqEngine::start(&tree, tr);
        assert!(pdq.get_next(&tree, 0.0, 10.0).is_none());
        // Only the root was examined.
        assert_eq!(pdq.stats().disk_accesses, 1);
    }

    #[test]
    fn future_head_returns_none_until_asked() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        // Consume everything visible by t ≤ 1.
        let _ = pdq.drain_window(&tree, 0.0, 1.0);
        // Object 2 enters at t = 1.5 > 1: not returned for window [0, 1].
        assert!(pdq.get_next(&tree, 0.0, 1.0).is_none());
        // But it exists for the next frame window.
        let next = pdq.get_next(&tree, 1.0, 2.0).expect("object 2 due");
        assert_eq!(next.record.oid, 2);
    }

    #[test]
    fn skipping_ahead_drops_stale_items() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        // Application jumps to t ∈ [30, 31] without asking for earlier
        // frames: objects whose visibility ended before t=30 are dropped.
        let got = pdq.drain_window(&tree, 30.0, 31.0);
        let oids: Vec<u32> = got.iter().map(|r| r.record.oid).collect();
        // Visible during [30,31]: object i visible [i−0.5, i+0.5] ⇒ i ∈ {30, 31}.
        assert_eq!(oids, vec![30, 31]);
    }

    #[test]
    fn late_insertion_is_found() {
        let mut tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        // Consume the first 10 time units.
        let first = pdq.drain_window(&tree, 0.0, 10.0);
        assert_eq!(first.len(), 11);
        // A new object appears ahead of the window at x = 20.5.
        let rec = R::new(999, 0, Interval::new(10.0, 100.0), [20.5, 0.5], [20.5, 0.5]);
        let report = tree.insert(rec, 10.0);
        pdq.notify(&tree, &report);
        let later = pdq.drain_window(&tree, 10.0, 50.0);
        assert!(
            later.iter().any(|r| r.record.oid == 999),
            "late insertion must be returned"
        );
        // And nothing is returned twice across the whole run.
        let mut all: Vec<(u32, u32)> = first
            .iter()
            .chain(later.iter())
            .map(|r| (r.record.oid, r.record.seq))
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate results");
    }

    #[test]
    fn insertion_behind_window_not_returned() {
        let mut tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let _ = pdq.drain_window(&tree, 0.0, 20.0);
        // Insert an object that was only visible around t = 5 (already
        // passed, and its motion ended at t=6).
        let rec = R::new(998, 0, Interval::new(4.0, 6.0), [5.5, 0.5], [5.5, 0.5]);
        let report = tree.insert(rec, 20.0);
        pdq.notify(&tree, &report);
        let later = pdq.drain_window(&tree, 20.0, 50.0);
        assert!(later.iter().all(|r| r.record.oid != 998));
    }

    #[test]
    fn massive_concurrent_insertions_no_duplicates_no_losses() {
        // Build small, then insert a stream of objects ahead of the
        // window while draining — splits will cascade and trigger both
        // LCA notifications and rebuilds.
        let mut tree = line_tree(10);
        let mut pdq = PdqEngine::start(&tree, slide(100.0));
        let mut seen: Vec<(u32, u32)> = Vec::new();
        let mut expected: Vec<u32> = (0..10).collect();
        let mut t = 0.0;
        let mut next_oid = 1000;
        while t < 100.0 {
            for r in pdq.drain_window(&tree, t, t + 1.0) {
                seen.push((r.record.oid, r.record.seq));
            }
            // Two new stationary objects per step, placed ahead of the
            // window (x = t + 10) so they will be swept later.
            for _ in 0..2 {
                let x = t + 10.5;
                if x < 100.0 {
                    let rec = R::new(next_oid, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]);
                    let report = tree.insert(rec, t);
                    pdq.notify(&tree, &report);
                    expected.push(next_oid);
                    next_oid += 1;
                }
            }
            t += 1.0;
        }
        for r in pdq.drain_window(&tree, 0.0, 100.0) {
            seen.push((r.record.oid, r.record.seq));
        }
        // No duplicates.
        let n = seen.len();
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), n, "duplicates returned");
        // No losses: every object whose position gets swept while its
        // motion is valid must have been seen. Objects at x = t+10.5
        // inserted at t are swept at time x−0.5 = t+10 < 100 ✓.
        let seen_oids: HashSet<u32> = seen.iter().map(|&(o, _)| o).collect();
        for oid in expected {
            assert!(seen_oids.contains(&oid), "lost object {oid}");
        }
        tree.validate().unwrap();
    }

    #[test]
    fn explicit_rebuild_loses_nothing_and_duplicates_nothing() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let mut seen: Vec<u32> = pdq
            .drain_window(&tree, 0.0, 10.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        // Rebuild mid-stream (as an update near the root would force).
        pdq.rebuild(&tree);
        seen.extend(
            pdq.drain_window(&tree, 10.0, 50.0)
                .iter()
                .map(|r| r.record.oid),
        );
        let n = seen.len();
        let set: std::collections::BTreeSet<u32> = seen.into_iter().collect();
        assert_eq!(set.len(), n, "rebuild caused duplicate deliveries");
        assert_eq!(set.len(), 50, "rebuild lost objects");
    }

    #[test]
    fn rebuild_depth_zero_never_rebuilds() {
        let mut tree = line_tree(10);
        let mut pdq = PdqEngine::start(&tree, slide(100.0));
        pdq.rebuild_depth = 0;
        let mut got: Vec<(u32, u32)> = pdq
            .drain_window(&tree, 0.0, 5.0)
            .iter()
            .map(|r| (r.record.oid, r.record.seq))
            .collect();
        // Force many splits: the engine must still deliver everything via
        // LCA notifications alone.
        let mut expected = 10usize;
        for i in 0..300u32 {
            let x = 10.5 + (i % 80) as f64;
            if x < 99.0 {
                let rec = R::new(10_000 + i, 0, Interval::new(5.0, 100.0), [x, 0.5], [x, 0.5]);
                let report = tree.insert(rec, 5.0);
                pdq.notify(&tree, &report);
                expected += 1;
            }
        }
        got.extend(
            pdq.drain_window(&tree, 0.0, 100.0)
                .iter()
                .map(|r| (r.record.oid, r.record.seq)),
        );
        got.sort_unstable();
        let n = got.len();
        got.dedup();
        assert_eq!(got.len(), n, "duplicates with rebuild disabled");
        // Everything whose position gets swept must arrive; the window
        // reaches x = 101 by t = 100, so all inserted objects qualify.
        assert_eq!(got.len(), expected, "losses with rebuild disabled");
    }

    #[test]
    fn simultaneous_entries_pop_in_id_order() {
        // Five objects stacked at the same position enter the view at the
        // same instant; pop order must be their id order regardless of
        // heap insertion history. Insert in descending id order to make
        // an insertion-order-dependent heap fail.
        let recs: Vec<R> = (0..5)
            .rev()
            .map(|i| R::new(i, 0, Interval::new(0.0, 100.0), [10.5, 0.5], [10.5, 0.5]))
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let oids: Vec<u32> = pdq
            .drain_window(&tree, 0.0, 50.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        assert_eq!(oids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tie_break_is_stable_across_runs() {
        // Many coincident entries: two independent engines over the same
        // tree must produce the identical sequence.
        let recs: Vec<R> = (0..40)
            .map(|i| {
                let x = (i % 8) as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let run = || {
            let mut pdq = PdqEngine::start(&tree, slide(20.0));
            pdq.drain_window(&tree, 0.0, 20.0)
                .iter()
                .map(|r| (r.record.oid, r.record.seq))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "pop order must be deterministic");
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn stale_notifications_do_not_grow_queue() {
        let mut tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        // Advance the query frame by frame to t = 30.
        let mut t = 0.0;
        while t < 30.0 {
            let _ = pdq.drain_window(&tree, t, t + 1.0);
            t += 1.0;
        }
        let before = pdq.queue_len();
        // A sustained stream of inserts whose overlap with the trajectory
        // ended long before t = 30: every `Inserted::Record` report must
        // be filtered out in notify; only split (subtree) reports — whose
        // LCA box legitimately covers live data — may enqueue anything.
        let mut subtree_reports = 0usize;
        for i in 0..200u32 {
            let x = 5.5 + (i % 10) as f64; // swept around t ∈ [5, 15]
            let rec = R::new(20_000 + i, 0, Interval::new(0.0, 20.0), [x, 0.5], [x, 0.5]);
            let report = tree.insert(rec, 30.0);
            if matches!(report.notify, Inserted::Subtree { .. }) {
                subtree_reports += 1;
            }
            pdq.notify(&tree, &report);
        }
        let after = pdq.queue_len();
        assert!(
            after <= before + subtree_reports,
            "queue grew from {before} to {after} with only {subtree_reports} splits: \
             stale records were enqueued"
        );
        // And none of them is ever returned.
        let rest = pdq.drain_window(&tree, 30.0, 50.0);
        assert!(rest.iter().all(|r| r.record.oid < 20_000));
    }

    #[test]
    fn boundary_entry_delivered_in_the_window_it_touches_first() {
        // Objects at x = k + 1.0 become visible exactly at t = k: their
        // overlap-time start coincides with the shared boundary of the
        // adjacent frame windows [k−1, k] and [k, k+1]. The window
        // predicate is inclusive at t_end (`head_start > t_end` ⇒ wait),
        // so the object belongs to the *earlier* window — the frame
        // rendered at t = k must already show it.
        let recs: Vec<R> = (0..20)
            .map(|k| {
                let x = k as f64 + 1.0;
                R::new(k, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));

        // Frame k drains window [k, k+1]. Object k enters at exactly
        // t = k: boundary-inclusive, so it must arrive in the window
        // whose t_end is k — i.e. frame k−1 — and never again.
        let mut arrivals: Vec<(u32, usize)> = Vec::new();
        for frame in 0..25usize {
            let t0 = frame as f64;
            for r in pdq.drain_window(&tree, t0, t0 + 1.0) {
                arrivals.push((r.record.oid, frame));
            }
        }
        // Exactly once each.
        let mut oids: Vec<u32> = arrivals.iter().map(|&(o, _)| o).collect();
        oids.sort_unstable();
        oids.dedup();
        assert_eq!(oids.len(), 20, "every object exactly once");
        assert_eq!(arrivals.len(), 20, "no duplicate deliveries");
        // Object k (entry time k) arrives in frame k−1 ([k−1, k], whose
        // t_end equals the entry time) — except object 0, which is due at
        // t = 0 and arrives in the first window drained.
        for &(oid, frame) in &arrivals {
            let expected = (oid as usize).saturating_sub(1);
            assert_eq!(
                frame, expected,
                "object {oid} entering at t={oid} must arrive in frame {expected}"
            );
        }
    }

    #[test]
    fn every_object_once_oracle_over_randomized_frame_boundaries() {
        // Oracle: however [0, 50] is cut into adjacent windows — uniform,
        // ragged, or zero-width cuts landing exactly on entry times — the
        // union of drains equals one whole-span drain, with no repeats.
        let tree = line_tree(50);
        let whole: Vec<u32> = PdqEngine::start(&tree, slide(50.0))
            .drain_window(&tree, 0.0, 50.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();

        let cut_sets: &[&[f64]] = &[
            &[10.0, 20.0, 30.0, 40.0],
            &[0.5, 1.5, 2.5, 3.5, 49.5],           // cuts ON entry times
            &[0.5, 0.5, 25.0, 25.0],               // zero-width windows
            &[7.3, 11.9, 12.0, 12.1, 33.3, 48.99], // ragged
        ];
        for cuts in cut_sets {
            let mut pdq = PdqEngine::start(&tree, slide(50.0));
            let mut got: Vec<u32> = Vec::new();
            let mut t0 = 0.0;
            for &t1 in cuts.iter().chain(std::iter::once(&50.0)) {
                got.extend(
                    pdq.drain_window(&tree, t0, t1)
                        .iter()
                        .map(|r| r.record.oid),
                );
                t0 = t1;
            }
            assert_eq!(got, whole, "cuts {cuts:?} changed the delivery");
        }
    }

    #[test]
    fn queue_hwm_tracks_deepest_queue() {
        let tree = line_tree(200);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        assert_eq!(pdq.queue_hwm(), 1, "seeded root only");
        let _ = pdq.drain_window(&tree, 0.0, 50.0);
        let hwm = pdq.queue_hwm();
        assert!(hwm > 1);
        assert!(
            hwm >= pdq.queue_len(),
            "hwm {hwm} below live depth {}",
            pdq.queue_len()
        );
    }

    #[test]
    fn engine_self_heals_across_transient_faults() {
        use storage::{FaultPlan, FaultyStore};
        // Small pages ⇒ many nodes ⇒ many fallible reads.
        let recs = || -> Vec<R> {
            (0..50)
                .map(|i| {
                    let x = i as f64 + 0.5;
                    R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
                })
                .collect()
        };
        // Oracle: a fault-free run over the same data and layout.
        let expected: Vec<u32> = {
            let tree = bulk_load(
                Pager::with_page_size(256),
                RTreeConfig::default(),
                recs(),
            );
            let mut pdq = PdqEngine::start(&tree, slide(50.0));
            pdq.drain_window(&tree, 0.0, 50.0)
                .iter()
                .map(|r| r.record.oid)
                .collect()
        };

        // Same tree over a 40% transient-fault store (no pool, so errors
        // reach the engine raw). Build with injection paused so the
        // structure matches the oracle's.
        let faulty = FaultyStore::new(
            Pager::with_page_size(256),
            FaultPlan::transient(3, 0.4),
        );
        faulty.set_enabled(false);
        let tree = bulk_load(faulty, RTreeConfig::default(), recs());
        tree.store().set_enabled(true);

        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let mut got = Vec::new();
        let mut errors = 0u32;
        loop {
            match pdq.try_get_next(&tree, 0.0, 50.0) {
                Ok(Some(r)) => got.push(r.record.oid),
                Ok(None) => break,
                Err(e) => {
                    assert!(e.is_transient());
                    errors += 1;
                    assert!(errors < 10_000, "engine never converged");
                }
            }
        }
        assert!(errors > 0, "a 40% fault rate must surface errors");
        assert_eq!(got, expected, "healing must not lose or repeat results");
        assert_eq!(pdq.stats().duplicates_skipped, 0, "retries are not dups");
    }

    #[test]
    fn take_stats_resets() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let _ = pdq.drain_window(&tree, 0.0, 1.0);
        let s1 = pdq.take_stats();
        assert!(s1.disk_accesses > 0);
        let s2 = pdq.stats();
        assert_eq!(s2.disk_accesses, 0);
    }
}
