//! The client-side cache keyed on disappearance time (§4.1).
//!
//! "Along with each object returned, the database will inform the
//! application about how long that object will stay in the view … it is
//! easy (at the client) to maintain objects keyed on their 'disappearance
//! time', discarding them from the cache at that time."
//!
//! [`ClientCache`] holds each delivered object with its visibility time
//! set. Advancing the clock evicts objects whose last visibility interval
//! has passed; the currently-visible set is what a renderer would draw.

use std::collections::HashMap;
use stkit::TimeSet;

/// One cached object.
#[derive(Clone, Debug)]
struct CacheEntry<V> {
    value: V,
    visibility: TimeSet,
    disappearance: f64,
}

/// A renderer-side object cache keyed on disappearance time.
///
/// `V` is whatever payload the application keeps per object (geometry,
/// the motion record, …). Keys are object ids.
#[derive(Clone, Debug, Default)]
pub struct ClientCache<V> {
    entries: HashMap<u32, CacheEntry<V>>,
    clock: f64,
    evicted_total: u64,
}

impl<V> ClientCache<V> {
    /// An empty cache at clock 0.
    pub fn new() -> Self {
        ClientCache {
            entries: HashMap::new(),
            clock: 0.0,
            evicted_total: 0,
        }
    }

    /// Current clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total objects evicted so far.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Store a delivered object with its visibility set. An object
    /// delivered again (e.g. a later motion segment of the same object)
    /// replaces the previous entry, merging visibility.
    pub fn insert(&mut self, oid: u32, value: V, visibility: TimeSet) {
        if visibility.is_empty() {
            return;
        }
        let disappearance = visibility.end().expect("non-empty");
        match self.entries.get_mut(&oid) {
            Some(e) => {
                e.value = value;
                e.visibility = e.visibility.union(&visibility);
                e.disappearance = e.disappearance.max(disappearance);
            }
            None => {
                self.entries.insert(
                    oid,
                    CacheEntry {
                        value,
                        visibility,
                        disappearance,
                    },
                );
            }
        }
    }

    /// Advance the clock to `t`, evicting every object whose
    /// disappearance time has passed. Returns the number evicted.
    pub fn advance(&mut self, t: f64) -> usize {
        debug_assert!(t >= self.clock, "clock must be monotone");
        self.clock = t;
        let before = self.entries.len();
        self.entries.retain(|_, e| e.disappearance >= t);
        let evicted = before - self.entries.len();
        self.evicted_total += evicted as u64;
        evicted
    }

    /// Objects visible *right now* (at the current clock): resident and
    /// with a visibility interval covering the clock.
    pub fn visible_now(&self) -> impl Iterator<Item = (u32, &V)> {
        let t = self.clock;
        self.entries
            .iter()
            .filter(move |(_, e)| e.visibility.contains(t))
            .map(|(oid, e)| (*oid, &e.value))
    }

    /// All resident objects (visible now or scheduled to reappear).
    pub fn resident(&self) -> impl Iterator<Item = (u32, &V)> {
        self.entries.iter().map(|(oid, e)| (*oid, &e.value))
    }

    /// Look up one object.
    pub fn get(&self, oid: u32) -> Option<&V> {
        self.entries.get(&oid).map(|e| &e.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::Interval;

    fn ts(ivs: &[(f64, f64)]) -> TimeSet {
        TimeSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn eviction_at_disappearance_time() {
        let mut c = ClientCache::new();
        c.insert(1, "a", ts(&[(0.0, 5.0)]));
        c.insert(2, "b", ts(&[(0.0, 9.0)]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.advance(5.0), 0, "5.0 is still within visibility");
        assert_eq!(c.advance(5.1), 1);
        assert_eq!(c.len(), 1);
        assert!(c.get(1).is_none());
        assert_eq!(c.get(2), Some(&"b"));
        assert_eq!(c.evicted_total(), 1);
    }

    #[test]
    fn visible_now_respects_gaps() {
        let mut c = ClientCache::new();
        // Object visible [0,2] and again [8,10] (window passes it twice).
        c.insert(7, "x", ts(&[(0.0, 2.0), (8.0, 10.0)]));
        c.advance(1.0);
        assert_eq!(c.visible_now().count(), 1);
        c.advance(5.0);
        // Not visible in the gap, but still resident (it will reappear).
        assert_eq!(c.visible_now().count(), 0);
        assert_eq!(c.resident().count(), 1);
        c.advance(9.0);
        assert_eq!(c.visible_now().count(), 1);
        c.advance(10.5);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsertion_merges_visibility() {
        let mut c = ClientCache::new();
        c.insert(1, 10, ts(&[(0.0, 2.0)]));
        c.insert(1, 20, ts(&[(5.0, 7.0)]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(&20));
        c.advance(3.0);
        assert_eq!(c.len(), 1, "merged disappearance is 7.0");
        c.advance(7.5);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_visibility_ignored() {
        let mut c: ClientCache<()> = ClientCache::new();
        c.insert(1, (), TimeSet::empty());
        assert!(c.is_empty());
    }
}
