//! Parametric Space Indexing (PSI) — the alternative §2 dismisses.
//!
//! The authors' earlier work compared two ways of indexing motion:
//! *native space indexing* (NSI — index the space-time bounding box of
//! each segment; what this crate uses everywhere) and *parametric space
//! indexing* (PSI — index the motion parameters themselves: initial
//! location and velocity). "A comparative study between the two indicates
//! that NSI outperforms PSI, because of the loss of locality associated
//! with PSI."
//!
//! This module implements a faithful-enough PSI for 2-d motion so the
//! `ablation_psi` bench can reproduce that comparison:
//!
//! * a [`PsiSegmentRecord`] is a **point** in the 4-d parametric space
//!   `(x₀, y₀, v_x, v_y)` plus its validity interval on the temporal
//!   axis;
//! * a spatio-temporal range query maps to a conservative parametric box
//!   ([`psi_query_key`]): any segment matching the query must have
//!   `x₀ ∈ window ⊖ v·Δt`, which — with velocities bounded by `v_max`
//!   and validity spans by `max_duration` — inflates the window by
//!   `v_max · max_duration` on each positional axis and spans the whole
//!   velocity range. That inflation is precisely the "loss of locality":
//!   the parametric query box admits far more of the index than the
//!   native-space query box does.
//!
//! The leaf-level exact test is unchanged (the record still carries the
//! actual segment), so PSI returns the same answers — it just reads more
//! of the tree to find them.

use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use rtree::{Record, RTree};
use storage::PageStore;
use stkit::{Interval, MotionSegment, Rect, StBox};

/// A motion segment indexed in parametric space (2-d motion only: the
/// parametric space is 4-dimensional and const-generic arithmetic is not
/// available to derive `2·D` on stable Rust).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PsiSegmentRecord {
    /// The motion segment (same payload as the NSI record).
    pub seg: MotionSegment<2>,
    /// Object id.
    pub oid: u32,
    /// Update sequence number.
    pub seq: u32,
}

impl PsiSegmentRecord {
    /// Build a record, quantizing coordinates to the page precision.
    pub fn new(oid: u32, seq: u32, t: Interval, from: [f64; 2], to: [f64; 2]) -> Self {
        let q = rtree::stbox_key::quantize;
        let t = Interval::new(q(t.lo), q(t.hi));
        let from = from.map(q);
        let to = to.map(q);
        PsiSegmentRecord {
            seg: MotionSegment::from_endpoints(t, from, to),
            oid,
            seq,
        }
    }
}

impl Record for PsiSegmentRecord {
    /// Parametric key: point `(x₀, y₀, v_x, v_y)` × validity interval.
    type Key = StBox<4, 1>;

    const ENCODED_LEN: usize = 8 + 16 + 8; // t ‖ endpoints ‖ oid+seq

    fn key(&self) -> Self::Key {
        let p = self.seg.x0;
        let v = self.seg.v;
        StBox::new(
            Rect::new([
                Interval::point(p[0]),
                Interval::point(p[1]),
                Interval::point(v[0]),
                Interval::point(v[1]),
            ]),
            Rect::new([self.seg.t]),
        )
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.seg.t.lo as f32).to_le_bytes());
        buf.extend_from_slice(&(self.seg.t.hi as f32).to_le_bytes());
        let end = self.seg.end_position();
        for i in 0..2 {
            buf.extend_from_slice(&(self.seg.x0[i] as f32).to_le_bytes());
        }
        for i in 0..2 {
            buf.extend_from_slice(&(end[i] as f32).to_le_bytes());
        }
        buf.extend_from_slice(&self.oid.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let f = |o: usize| f32::from_le_bytes(buf[o..o + 4].try_into().unwrap()) as f64;
        let t = Interval::new(f(0), f(4));
        let from = [f(8), f(12)];
        let to = [f(16), f(20)];
        let oid = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let seq = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        PsiSegmentRecord {
            seg: MotionSegment::from_endpoints(t, from, to),
            oid,
            seq,
        }
    }
}

/// Workload bounds the PSI query mapping needs (known to any real
/// deployment from its ingest statistics).
#[derive(Clone, Copy, Debug)]
pub struct PsiBounds {
    /// Upper bound on |v| per axis across all indexed segments.
    pub v_max: f64,
    /// Upper bound on segment validity length.
    pub max_duration: f64,
}

/// Map a spatio-temporal range query into the parametric space
/// (conservative: never misses, over-approximates — the PSI locality
/// loss).
///
/// A segment with anchor `x₀` at `t₀` is inside the window at some
/// `t ∈ [t₀, t₀ + max_duration]` only if `x₀ ∈ window ⊖ v·(t − t₀)`,
/// so with `|v| ≤ v_max` the positional axes inflate by
/// `v_max · max_duration` and the velocity axes span `[−v_max, v_max]`.
pub fn psi_query_key(q: &SnapshotQuery<2>, bounds: &PsiBounds) -> StBox<4, 1> {
    let slack = bounds.v_max * bounds.max_duration;
    StBox::new(
        Rect::new([
            q.window.extent(0).inflate(slack),
            q.window.extent(1).inflate(slack),
            Interval::new(-bounds.v_max, bounds.v_max),
            Interval::new(-bounds.v_max, bounds.v_max),
        ]),
        Rect::new([q.time]),
    )
}

/// Evaluate a snapshot query over a PSI tree (parametric probe + exact
/// leaf test), mirroring [`crate::NaiveEngine::query_nsi`].
pub fn psi_query<S: PageStore>(
    tree: &RTree<PsiSegmentRecord, S>,
    q: &SnapshotQuery<2>,
    bounds: &PsiBounds,
    mut emit: impl FnMut(&PsiSegmentRecord),
) -> QueryStats {
    let key = psi_query_key(q, bounds);
    tree.range_search(&key, |r| q.matches_segment(&r.seg), |r| emit(r))
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;

    fn record(oid: u32, t0: f64, from: [f64; 2], to: [f64; 2]) -> PsiSegmentRecord {
        PsiSegmentRecord::new(oid, 0, Interval::new(t0, t0 + 2.0), from, to)
    }

    fn bounds() -> PsiBounds {
        PsiBounds {
            v_max: 2.0,
            max_duration: 2.0,
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = record(5, 1.5, [10.25, 20.5], [12.25, 18.5]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), PsiSegmentRecord::ENCODED_LEN);
        assert_eq!(PsiSegmentRecord::decode(&buf), r);
    }

    #[test]
    fn key_is_parametric_point() {
        let r = record(1, 0.0, [10.0, 20.0], [12.0, 18.0]);
        let k = r.key();
        assert_eq!(k.space.extent(0), Interval::point(10.0));
        assert_eq!(k.space.extent(1), Interval::point(20.0));
        assert_eq!(k.space.extent(2), Interval::point(1.0)); // vx
        assert_eq!(k.space.extent(3), Interval::point(-1.0)); // vy
        assert_eq!(k.time.extent(0), Interval::new(0.0, 2.0));
    }

    #[test]
    fn query_mapping_is_conservative() {
        // Any record matching the native query must overlap the mapped
        // parametric key.
        let b = bounds();
        let q = SnapshotQuery::at_instant(Rect::from_corners([10.0, 10.0], [20.0, 20.0]), 1.0);
        let key = psi_query_key(&q, &b);
        // A segment that enters the window during its validity.
        let inside = record(1, 0.0, [8.0, 15.0], [12.0, 15.0]);
        assert!(q.matches_segment(&inside.seg));
        assert!(key.overlaps(&inside.key()));
        // The mapped box also admits segments the query does not match —
        // the locality loss.
        let miss = record(2, 0.0, [7.0, 15.0], [7.5, 15.0]);
        assert!(!q.matches_segment(&miss.seg));
        assert!(key.overlaps(&miss.key()));
    }

    #[test]
    fn psi_returns_same_answers_as_exact_filter() {
        let recs: Vec<PsiSegmentRecord> = (0..300)
            .map(|i| {
                let x = (i % 20) as f64 * 5.0;
                let y = (i / 20) as f64 * 6.0;
                record(i, (i % 10) as f64, [x, y], [x + 1.0, y + 1.0])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
        let q = SnapshotQuery::new(
            Rect::from_corners([20.0, 20.0], [60.0, 60.0]),
            Interval::new(3.0, 6.0),
        );
        let mut got: Vec<u32> = Vec::new();
        let stats = psi_query(&tree, &q, &bounds(), |r| got.push(r.oid));
        got.sort_unstable();
        let mut expected: Vec<u32> = recs
            .iter()
            .filter(|r| q.matches_segment(&r.seg))
            .map(|r| r.oid)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(stats.results as usize == expected.len());
    }

    #[test]
    fn psi_visits_more_than_nsi_on_same_data() {
        // The §2 claim at miniature scale: identical data, identical
        // query, PSI examines at least as many candidates.
        // Varied headings matter: PSI's locality loss comes from spatial
        // neighbours being scattered across the velocity axes.
        let n = 2000u32;
        let psi_recs: Vec<PsiSegmentRecord> = (0..n)
            .map(|i| {
                let x = (i % 50) as f64 * 2.0;
                let y = (i / 50) as f64 * 2.5;
                let ang = i as f64 * 2.399; // golden-angle spread
                let (dx, dy) = (2.0 * ang.cos(), 2.0 * ang.sin());
                record(i, (i % 20) as f64, [x, y], [x + dx, y + dy])
            })
            .collect();
        let nsi_recs: Vec<rtree::NsiSegmentRecord<2>> = psi_recs
            .iter()
            .map(|r| {
                rtree::NsiSegmentRecord::new(
                    r.oid,
                    r.seq,
                    r.seg.t,
                    r.seg.x0,
                    r.seg.end_position(),
                )
            })
            .collect();
        let psi_tree = bulk_load(Pager::new(), RTreeConfig::default(), psi_recs);
        let nsi_tree = bulk_load(Pager::new(), RTreeConfig::default(), nsi_recs);
        let q = SnapshotQuery::new(
            Rect::from_corners([30.0, 30.0], [50.0, 50.0]),
            Interval::new(5.0, 8.0),
        );
        let psi_stats = psi_query(&psi_tree, &q, &bounds(), |_| {});
        let nsi_stats = crate::NaiveEngine::new().query_nsi(&nsi_tree, &q, |_| {});
        assert_eq!(psi_stats.results, nsi_stats.results, "same answers");
        assert!(
            psi_stats.distance_computations > nsi_stats.distance_computations,
            "PSI must lose locality: {} vs {}",
            psi_stats.distance_computations,
            nsi_stats.distance_computations
        );
    }
}
