//! Snapshot queries (Definition 3).

use stkit::{Interval, MotionSegment, Rect, StBox};

/// A snapshot query: "retrieve all objects that were in `window`, within
/// `time`" (Definition 3). Visualization uses the degenerate case where
/// `time` is a single instant (one rendered frame).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotQuery<const D: usize> {
    /// Spatial range of the query.
    pub window: Rect<D>,
    /// Temporal extent (may be a single instant).
    pub time: Interval,
}

impl<const D: usize> SnapshotQuery<D> {
    /// A query with temporal extent.
    pub fn new(window: Rect<D>, time: Interval) -> Self {
        SnapshotQuery { window, time }
    }

    /// The visualization special case: a query at one instant.
    pub fn at_instant(window: Rect<D>, t: f64) -> Self {
        SnapshotQuery {
            window,
            time: Interval::point(t),
        }
    }

    /// The open-ended query of §4.2 Fig. 5(a): "all objects which satisfy
    /// the spatial range of the query either now or in the future"
    /// (time `[t, ∞)`).
    ///
    /// This is the query shape that makes NPDQ discardability effective:
    /// with instant queries, consecutive snapshots never overlap
    /// temporally, and any node holding a currently-alive motion segment
    /// also holds freshly-started ones, so `(Q ∩ R) ⊆ P` can never hold
    /// on the start-time axis. With open-ended queries the temporal
    /// containment is trivial and the previous query prunes every node
    /// interior to its window.
    pub fn open_from(window: Rect<D>, t: f64) -> Self {
        SnapshotQuery {
            window,
            time: Interval::new(t, f64::INFINITY),
        }
    }

    /// The query box in the native-space-indexing layout (§3.2).
    pub fn nsi_key(&self) -> StBox<D, 1> {
        StBox::new(self.window, Rect::new([self.time]))
    }

    /// The query region in the double-temporal-axes layout (§4.2,
    /// Fig. 5(b)): a motion with validity `[t_l, t_h]` overlaps the query
    /// time iff `t_l ≤ time.hi ∧ t_h ≥ time.lo`, i.e. the quadrant-shaped
    /// box `⟨(−∞, time.hi], [time.lo, +∞)⟩` on the (start, end) plane.
    pub fn dta_key(&self) -> StBox<D, 2> {
        StBox::new(
            self.window,
            Rect::new([
                Interval::new(f64::NEG_INFINITY, self.time.hi),
                Interval::new(self.time.lo, f64::INFINITY),
            ]),
        )
    }

    /// Exact test (§3.2): does this motion segment actually pass through
    /// the window during the query's time extent?
    pub fn matches_segment(&self, seg: &MotionSegment<D>) -> bool {
        !seg.intersect_query(&self.window, &self.time).is_empty()
    }

    /// True iff this query starts strictly after `other` ends — the
    /// ordering Definition 4 requires of a dynamic query's snapshots.
    pub fn follows(&self, other: &SnapshotQuery<D>) -> bool {
        other.time.precedes(&self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> SnapshotQuery<2> {
        SnapshotQuery::new(
            Rect::from_corners([0.0, 0.0], [10.0, 10.0]),
            Interval::new(5.0, 6.0),
        )
    }

    #[test]
    fn nsi_key_shape() {
        let k = q().nsi_key();
        assert_eq!(k.space, q().window);
        assert_eq!(k.time.extent(0), Interval::new(5.0, 6.0));
    }

    #[test]
    fn dta_key_is_quadrant() {
        let k = q().dta_key();
        assert_eq!(k.time.extent(0).hi, 6.0);
        assert_eq!(k.time.extent(0).lo, f64::NEG_INFINITY);
        assert_eq!(k.time.extent(1).lo, 5.0);
        assert_eq!(k.time.extent(1).hi, f64::INFINITY);
    }

    #[test]
    fn dta_key_overlap_agrees_with_interval_overlap() {
        let query = q();
        // Segment alive during [2, 5.5]: overlaps [5,6] ⇒ both keys agree.
        let seg = MotionSegment::from_endpoints(Interval::new(2.0, 5.5), [1.0, 1.0], [2.0, 2.0]);
        assert!(query.dta_key().overlaps(&seg.dta_box()));
        assert!(query.nsi_key().overlaps(&seg.nsi_box()));
        // Segment dead before the query: neither overlaps.
        let old = MotionSegment::from_endpoints(Interval::new(2.0, 4.9), [1.0, 1.0], [2.0, 2.0]);
        assert!(!query.dta_key().overlaps(&old.dta_box()));
        assert!(!query.nsi_key().overlaps(&old.nsi_box()));
    }

    #[test]
    fn exact_test_detects_miss() {
        let query = q();
        // Alive during query time but spatially outside the window.
        let seg =
            MotionSegment::from_endpoints(Interval::new(5.0, 6.0), [20.0, 20.0], [30.0, 30.0]);
        assert!(!query.matches_segment(&seg));
        // Passing through the window.
        let through =
            MotionSegment::from_endpoints(Interval::new(4.0, 7.0), [-5.0, 5.0], [15.0, 5.0]);
        assert!(query.matches_segment(&through));
    }

    #[test]
    fn instant_query() {
        let query = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [4.0, 4.0]), 2.0);
        assert_eq!(query.time, Interval::point(2.0));
        let seg = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 2.0], [10.0, 2.0]);
        // At t=2 the object is at (2, 2) — inside.
        assert!(query.matches_segment(&seg));
        let late = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [1.0, 4.0]), 9.0);
        // At t=9 the object is at (9, 2) — outside the 1-wide window.
        assert!(!late.matches_segment(&seg));
    }

    #[test]
    fn ordering_per_definition_4() {
        let a = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [1.0, 1.0]), 1.0);
        let b = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [1.0, 1.0]), 2.0);
        assert!(b.follows(&a));
        assert!(!a.follows(&b));
    }
}
