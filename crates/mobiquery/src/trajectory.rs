//! Predictive query trajectories — sequences of key snapshots (§4.1).

use crate::snapshot::SnapshotQuery;
use stkit::{Interval, MotionSegment, MovingWindow, Rect, Scalar, StBox, TimeSet};

/// One key snapshot `K^j = ⟨t, x̄₁, …, x̄_d⟩`: the query window at a point
/// of the observer's trajectory (Eq. 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeySnapshot<const D: usize> {
    /// Time of this key snapshot.
    pub t: Scalar,
    /// Query window at that time.
    pub window: Rect<D>,
}

/// A predictive dynamic query's trajectory: key snapshots with strictly
/// increasing times; between consecutive keys the window interpolates
/// linearly (the trapezoid segments `S^j` of Fig. 3).
///
/// ```
/// use mobiquery::Trajectory;
/// use stkit::{Interval, Rect};
///
/// // A 2×2 window sliding right at speed 2 over t ∈ [0, 10].
/// let traj = Trajectory::linear(
///     Rect::from_corners([0.0, 0.0], [2.0, 2.0]),
///     [2.0, 0.0], Interval::new(0.0, 10.0), 5);
/// assert_eq!(traj.window_at(5.0), Rect::from_corners([10.0, 0.0], [12.0, 2.0]));
/// // Eq. 3: when does the moving window overlap a static box?
/// let hit = traj.overlap_rect(
///     &Rect::from_corners([6.0, 0.0], [7.0, 2.0]),
///     &Interval::new(0.0, 10.0));
/// assert_eq!(hit.hull(), Interval::new(2.0, 3.5));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory<const D: usize> {
    keys: Vec<KeySnapshot<D>>,
    segments: Vec<MovingWindow<D>>,
}

impl<const D: usize> Trajectory<D> {
    /// Build a trajectory from ≥ 2 key snapshots with strictly increasing
    /// times and non-empty windows.
    pub fn new(keys: Vec<KeySnapshot<D>>) -> Self {
        assert!(keys.len() >= 2, "a trajectory needs at least two keys");
        for w in keys.windows(2) {
            assert!(
                w[0].t < w[1].t,
                "key snapshot times must strictly increase"
            );
        }
        assert!(
            keys.iter().all(|k| !k.window.is_empty()),
            "key windows must be non-empty"
        );
        let segments = keys
            .windows(2)
            .map(|w| {
                MovingWindow::between(Interval::new(w[0].t, w[1].t), &w[0].window, &w[1].window)
            })
            .collect();
        Trajectory { keys, segments }
    }

    /// A straight-line trajectory: `window` translating at constant
    /// `velocity` over `span`, sampled into `nkeys` key snapshots. The
    /// common case for both benchmarks and fly-through navigation.
    pub fn linear(
        window: Rect<D>,
        velocity: [Scalar; D],
        span: Interval,
        nkeys: usize,
    ) -> Self {
        assert!(nkeys >= 2, "need at least two keys");
        assert!(!span.is_empty() && span.length() > 0.0, "span must have extent");
        let keys = (0..nkeys)
            .map(|i| {
                let f = i as Scalar / (nkeys - 1) as Scalar;
                let t = span.lo + f * span.length();
                let dt = t - span.lo;
                let mut dims = [Interval::EMPTY; D];
                for d in 0..D {
                    dims[d] = window.extent(d).shift(velocity[d] * dt);
                }
                KeySnapshot {
                    t,
                    window: Rect::new(dims),
                }
            })
            .collect();
        Trajectory::new(keys)
    }

    /// The key snapshots.
    pub fn keys(&self) -> &[KeySnapshot<D>] {
        &self.keys
    }

    /// The interpolated trapezoid segments (one fewer than keys).
    pub fn segments(&self) -> &[MovingWindow<D>] {
        &self.segments
    }

    /// Temporal span `[K¹.t, Kⁿ.t]` of the trajectory.
    pub fn span(&self) -> Interval {
        Interval::new(self.keys[0].t, self.keys[self.keys.len() - 1].t)
    }

    /// The query window at time `t` (clamped into the span).
    pub fn window_at(&self, t: Scalar) -> Rect<D> {
        let t = self.span().clamp(t);
        // Find the segment covering t (last segment covers its end).
        let idx = self
            .segments
            .partition_point(|s| s.span.hi < t)
            .min(self.segments.len() - 1);
        self.segments[idx].window_at(t)
    }

    /// The snapshot query a renderer would pose at instant `t`.
    pub fn snapshot_at(&self, t: Scalar) -> SnapshotQuery<D> {
        SnapshotQuery::at_instant(self.window_at(t), t)
    }

    /// Eq. 3 generalized to the full trajectory: the (possibly
    /// disconnected) set of times at which the moving window overlaps the
    /// static space-time box `⟨time, space⟩`. Each trapezoid segment
    /// contributes one interval `T^j`; the result is their union.
    pub fn overlap_rect(&self, space: &Rect<D>, time: &Interval) -> TimeSet {
        let mut out = TimeSet::empty();
        for s in &self.segments {
            out.insert(s.overlap_time_rect(space, time));
        }
        out
    }

    /// Overlap-time set for an NSI bounding box key.
    pub fn overlap_nsi_box(&self, key: &StBox<D, 1>) -> TimeSet {
        self.overlap_rect(&key.space, &key.time.extent(0))
    }

    /// Exact overlap-time set for a motion segment: the times at which
    /// the *object* (not its bounding box) is inside the moving window —
    /// the leaf-level exact test for dynamic queries, and the visibility
    /// set handed to the client cache ("how long the object stays in
    /// view").
    pub fn overlap_segment(&self, seg: &MotionSegment<D>) -> TimeSet {
        let mut out = TimeSet::empty();
        for s in &self.segments {
            out.insert(s.overlap_time_segment(seg));
        }
        out
    }

    /// Batched [`Self::overlap_rect`] over a staged node page: one
    /// [`TimeSet`] per staged box, built by solving every trajectory
    /// segment against all lanes at once. Segment-order insertion keeps
    /// each result bit-identical to the scalar path.
    pub fn overlap_rect_batch_into(
        &self,
        batch: &mut stkit::RectBatch<D>,
        out: &mut Vec<TimeSet>,
    ) {
        out.clear();
        out.resize(batch.len(), TimeSet::empty());
        for s in &self.segments {
            batch.solve(s);
            for (j, ts) in out.iter_mut().enumerate() {
                ts.insert(batch.result(j));
            }
        }
    }

    /// Batched [`Self::overlap_segment`] over a staged leaf page: one
    /// visibility [`TimeSet`] per staged motion segment.
    pub fn overlap_segment_batch_into(
        &self,
        batch: &mut stkit::SegmentBatch<D>,
        out: &mut Vec<TimeSet>,
    ) {
        out.clear();
        out.resize(batch.len(), TimeSet::empty());
        for s in &self.segments {
            batch.solve(s);
            for (j, ts) in out.iter_mut().enumerate() {
                ts.insert(batch.result(j));
            }
        }
    }

    /// SPDQ (§4): inflate every key window by `delta` to tolerate an
    /// observer deviating up to `‖x_p(t) − x(t)‖ ≤ δ` from the predicted
    /// path.
    pub fn inflate(&self, delta: Scalar) -> Trajectory<D> {
        Trajectory::new(
            self.keys
                .iter()
                .map(|k| KeySnapshot {
                    t: k.t,
                    window: k.window.inflate(delta),
                })
                .collect(),
        )
    }

    /// Conservative spatial bounds of the whole swept trajectory.
    pub fn swept_bounds(&self) -> Rect<D> {
        self.segments
            .iter()
            .fold(Rect::EMPTY, |acc, s| acc.cover(&s.swept_bounds()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(x: f64, y: f64, w: f64) -> Rect<2> {
        Rect::from_corners([x, y], [x + w, y + w])
    }

    fn slide_right() -> Trajectory<2> {
        // 2×2 window sliding right from x=0 to x=20 over t ∈ [0, 10].
        Trajectory::linear(
            win(0.0, 0.0, 2.0),
            [2.0, 0.0],
            Interval::new(0.0, 10.0),
            6,
        )
    }

    #[test]
    fn linear_constructor_interpolates() {
        let tr = slide_right();
        assert_eq!(tr.keys().len(), 6);
        assert_eq!(tr.segments().len(), 5);
        assert_eq!(tr.span(), Interval::new(0.0, 10.0));
        assert_eq!(tr.window_at(0.0), win(0.0, 0.0, 2.0));
        assert_eq!(tr.window_at(5.0), win(10.0, 0.0, 2.0));
        assert_eq!(tr.window_at(10.0), win(20.0, 0.0, 2.0));
        // Clamping beyond the span.
        assert_eq!(tr.window_at(99.0), win(20.0, 0.0, 2.0));
    }

    #[test]
    fn overlap_rect_matches_hand_computation() {
        let tr = slide_right();
        // Box at x ∈ [6, 7], all y, alive the whole time: window's right
        // edge (2 + 2t) reaches 6 at t = 2; left edge (2t) passes 7 at 3.5.
        let ts = tr.overlap_rect(
            &Rect::from_corners([6.0, 0.0], [7.0, 2.0]),
            &Interval::new(0.0, 10.0),
        );
        assert_eq!(ts.hull(), Interval::new(2.0, 3.5));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn overlap_respects_box_validity() {
        let tr = slide_right();
        let ts = tr.overlap_rect(
            &Rect::from_corners([6.0, 0.0], [7.0, 2.0]),
            &Interval::new(3.0, 10.0),
        );
        assert_eq!(ts.hull(), Interval::new(3.0, 3.5));
    }

    #[test]
    fn overlap_segment_exact() {
        let tr = slide_right();
        // Object moving left through the window's path.
        let seg =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [20.0, 1.0], [0.0, 1.0]);
        let ts = tr.overlap_segment(&seg);
        // Object at 20−2t, window [2t, 2+2t]: inside while 2t ≤ 20−2t ≤ 2+2t
        // ⇒ t ∈ [4.5, 5].
        assert_eq!(ts.hull(), Interval::new(4.5, 5.0));
    }

    #[test]
    fn disconnected_overlap_possible() {
        // Window moves right then back left over a static box: two visits.
        let tr = Trajectory::new(vec![
            KeySnapshot { t: 0.0, window: win(0.0, 0.0, 2.0) },
            KeySnapshot { t: 10.0, window: win(20.0, 0.0, 2.0) },
            KeySnapshot { t: 20.0, window: win(0.0, 0.0, 2.0) },
        ]);
        let ts = tr.overlap_rect(
            &Rect::from_corners([10.0, 0.0], [11.0, 2.0]),
            &Interval::new(0.0, 20.0),
        );
        assert_eq!(ts.len(), 2, "expected two disjoint visibility windows");
    }

    #[test]
    fn snapshot_at_matches_window() {
        let tr = slide_right();
        let q = tr.snapshot_at(5.0);
        assert_eq!(q.window, win(10.0, 0.0, 2.0));
        assert_eq!(q.time, Interval::point(5.0));
    }

    #[test]
    fn inflation_grows_windows() {
        let tr = slide_right().inflate(1.0);
        assert_eq!(tr.window_at(0.0), Rect::from_corners([-1.0, -1.0], [3.0, 3.0]));
    }

    #[test]
    fn swept_bounds_cover_path() {
        let b = slide_right().swept_bounds();
        assert_eq!(b, Rect::from_corners([0.0, 0.0], [22.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_keys_rejected() {
        let _ = Trajectory::new(vec![
            KeySnapshot { t: 1.0, window: win(0.0, 0.0, 1.0) },
            KeySnapshot { t: 1.0, window: win(1.0, 1.0, 1.0) },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_key_rejected() {
        let _ = Trajectory::new(vec![KeySnapshot { t: 1.0, window: win(0.0, 0.0, 1.0) }]);
    }
}
