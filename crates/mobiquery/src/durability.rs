//! Durable write path: group-committed WAL, checkpoints, crash recovery.
//!
//! The serving write path applies one insert batch per frame, which gives
//! durability a natural group-commit unit: the writer appends each
//! frame's whole batch as **one** checksummed [`storage::Wal`] record
//! *before* any tree page is written, and periodically checkpoints the
//! tree (reusing the [`storage::save_pager`] snapshot format), truncating
//! the WAL at the checkpoint. Recovery is always *last checkpoint +
//! replay of every complete WAL record*, stopping cleanly at a torn,
//! truncated, or checksum-failing tail — so a crash at any instant loses
//! at most the frames whose records never became durable, and a frame
//! whose record IS durable survives even if the crash hit between the
//! WAL append and the tree write.
//!
//! The *ordering* between commit and apply is carried by the per-region
//! [`crate::FrameClock`]s: the durability thread commits frame `k` and
//! then advances every region clock's `committed` watermark past `k`,
//! and each region writer's `wait_committed(k)` refuses to apply a
//! non-empty slice before the watermark covers it — append
//! happens-before apply, per frame, with no global barrier. Checkpoints
//! are taken only after every clock's `applied` watermark covers the
//! frame (a quiescent boundary), so a snapshot never observes a
//! half-applied frame.
//!
//! Two checkpoint shapes share one log:
//!
//! * [`Checkpoint::Tree`] — the single-tree [`crate::DqServer`] persists
//!   its page store bit-exactly (snapshot v3 keeps the allocator's free
//!   list, so replaying the WAL onto the reloaded pager allocates the
//!   same page ids the live tree would have — recovery is *bit-identical*
//!   to a fault-free tree that applied the same committed prefix).
//! * [`Checkpoint::Logical`] — the [`crate::PartitionedDqServer`] has one
//!   shared WAL over many region trees; its checkpoint is the
//!   deduplicated record set, and recovery rebuilds the regions through
//!   [`crate::PartitionedDqServer::build`] (result-equivalent, not
//!   bit-identical — region trees have no single page image).
//!
//! Checkpoint failure is *safe*: the WAL is only truncated after the new
//! checkpoint is installed, so a failed snapshot leaves the previous
//! checkpoint plus the full (longer) WAL — still a complete recovery
//! story, just a slower one. The failure is counted in
//! [`DurableStats::checkpoint_failures`].

use parking_lot::Mutex;
use rtree::{NsiSegmentRecord, RTree, RTreeConfig, Record};
use std::io;
use std::sync::Arc;
use storage::{
    load_pager, replay_wal, save_pager, PageId, PageStore, Pager, SnapshotSource, StorageError,
    Wal, WalError, WalStats, WalTail, WAL_RECORD_OVERHEAD,
};

/// The durable state the single-tree server checkpoints: a byte-exact
/// page-store snapshot plus the tree metadata needed to reopen it.
#[derive(Clone, Debug)]
pub struct TreeCheckpoint {
    /// [`storage::save_pager`] bytes of the serving store (v3: free list
    /// preserved, so post-restore allocation order matches the original).
    pub snapshot: Vec<u8>,
    /// Root page at checkpoint time.
    pub root: PageId,
    /// Tree height at checkpoint time.
    pub height: u32,
    /// Records indexed at checkpoint time.
    pub len: u64,
    /// Last WAL sequence number the snapshot covers; replay applies only
    /// records with `seq > wal_seq`.
    pub wal_seq: u64,
}

/// The durable state the partitioned server checkpoints: the deduplicated
/// record set (seam replicas collapsed), encoded with the WAL batch codec.
#[derive(Clone, Debug)]
pub struct LogicalCheckpoint {
    /// `count u32 ‖ [record bytes]*` — records only; rebuild inserts each
    /// at its segment start time, exactly like
    /// [`crate::PartitionedDqServer::build`].
    pub records: Vec<u8>,
    /// Records in `records`.
    pub count: u32,
    /// Last WAL sequence number the record set covers.
    pub wal_seq: u64,
}

/// What the last checkpoint persisted.
#[derive(Clone, Debug)]
pub enum Checkpoint {
    /// Byte-exact page snapshot (single-tree server).
    Tree(TreeCheckpoint),
    /// Deduplicated record set (partitioned server).
    Logical(LogicalCheckpoint),
}

impl Checkpoint {
    /// The WAL watermark this checkpoint covers.
    pub fn wal_seq(&self) -> u64 {
        match self {
            Checkpoint::Tree(c) => c.wal_seq,
            Checkpoint::Logical(c) => c.wal_seq,
        }
    }
}

/// Everything recovery needs, captured as of one instant: the installed
/// checkpoint (if any) and the WAL byte image. Crash harnesses snapshot
/// this at arbitrary points — including between a WAL append and the
/// corresponding tree write — then mutilate the WAL tail and recover.
#[derive(Clone, Debug)]
pub struct DurableImage {
    /// The last installed checkpoint.
    pub checkpoint: Option<Checkpoint>,
    /// The WAL image ([`storage::Wal::image`]) as of the capture.
    pub wal: Vec<u8>,
}

/// Lifetime counters of one [`DurableLog`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DurableStats {
    /// The underlying WAL's counters.
    pub wal: WalStats,
    /// Checkpoints successfully installed.
    pub checkpoints: u64,
    /// Checkpoints that failed (WAL kept, previous checkpoint retained).
    pub checkpoint_failures: u64,
}

struct LogState {
    checkpoint: Option<Checkpoint>,
    commits_since_checkpoint: u64,
    checkpoints: u64,
    checkpoint_failures: u64,
}

/// The write path's durability state: one WAL plus the last checkpoint.
///
/// Shared (via `Arc`) between the serving writer — which group-commits
/// each frame's batch before applying it — and whoever captures
/// [`Self::durable_image`] for recovery.
pub struct DurableLog {
    wal: Wal,
    checkpoint_every: u64,
    state: Mutex<LogState>,
}

impl DurableLog {
    /// A log that becomes [due](Self::due_for_checkpoint) for a
    /// checkpoint after every `checkpoint_every` group commits
    /// (`0` = never due; only the initial checkpoint is taken).
    pub fn new(checkpoint_every: u64) -> Self {
        DurableLog {
            wal: Wal::new(),
            checkpoint_every,
            state: Mutex::new(LogState {
                checkpoint: None,
                commits_since_checkpoint: 0,
                checkpoints: 0,
                checkpoint_failures: 0,
            }),
        }
    }

    /// Mirror WAL commit counters into `registry` (`wal.appends`,
    /// `wal.group_commit_ns`).
    pub fn attach_metrics(&self, registry: &obs::MetricsRegistry) {
        self.wal.attach_metrics(registry);
    }

    /// Group-commit one frame's batch as a single WAL record, *before*
    /// any page of the tree is written. Returns the record's sequence
    /// number.
    pub fn commit_frame<const D: usize>(
        &self,
        frame: u64,
        batch: &[(NsiSegmentRecord<D>, f64)],
    ) -> u64 {
        let payload = encode_batch(frame, batch);
        let seq = self.wal.commit(&payload);
        self.state.lock().commits_since_checkpoint += 1;
        obs::trace(obs::TraceEvent::WalCommit {
            seq,
            bytes: (WAL_RECORD_OVERHEAD + payload.len()) as u32,
        });
        seq
    }

    /// True once any checkpoint has been installed (the writer takes an
    /// initial one before its first frame, so recovery never has to
    /// reconstruct preloaded state from nothing).
    pub fn has_checkpoint(&self) -> bool {
        self.state.lock().checkpoint.is_some()
    }

    /// True when enough commits have accumulated since the last
    /// checkpoint for the writer to take the next one.
    pub fn due_for_checkpoint(&self) -> bool {
        self.checkpoint_every > 0
            && self.state.lock().commits_since_checkpoint >= self.checkpoint_every
    }

    /// Checkpoint a single serving tree: snapshot its store byte-exactly,
    /// then truncate the WAL. On snapshot failure nothing is installed
    /// and the WAL is *not* truncated — the previous checkpoint plus the
    /// full log still recovers.
    pub fn checkpoint_tree<const D: usize, S: SnapshotSource>(
        &self,
        tree: &RTree<NsiSegmentRecord<D>, Arc<S>>,
    ) -> io::Result<()> {
        let mut snapshot = Vec::new();
        if let Err(e) = save_pager(tree.store(), &mut snapshot) {
            self.state.lock().checkpoint_failures += 1;
            return Err(e);
        }
        let pages = u32::from_le_bytes(snapshot[12..16].try_into().unwrap());
        let (root, height, len) = tree.metadata();
        self.install(pages, |wal_seq| {
            Checkpoint::Tree(TreeCheckpoint {
                snapshot,
                root,
                height,
                len,
                wal_seq,
            })
        });
        Ok(())
    }

    /// Checkpoint a deduplicated record set (partitioned server), then
    /// truncate the WAL. Encoding into memory cannot fail, so neither can
    /// this.
    pub fn checkpoint_logical<const D: usize>(&self, records: &[NsiSegmentRecord<D>]) {
        let rec_len = <NsiSegmentRecord<D> as Record>::ENCODED_LEN;
        let mut buf = Vec::with_capacity(4 + records.len() * rec_len);
        buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for rec in records {
            rec.encode(&mut buf);
        }
        let count = records.len() as u32;
        self.install(count, |wal_seq| {
            Checkpoint::Logical(LogicalCheckpoint {
                records: buf,
                count,
                wal_seq,
            })
        });
    }

    /// Install a built checkpoint and truncate the WAL under one state
    /// lock, so a concurrent [`Self::durable_image`] capture sees either
    /// (old checkpoint, full WAL) or (new checkpoint, truncated WAL) —
    /// never a truncated WAL with the old checkpoint.
    fn install(&self, pages: u32, make: impl FnOnce(u64) -> Checkpoint) {
        let mut st = self.state.lock();
        let wal_seq = self.wal.next_seq() - 1;
        st.checkpoint = Some(make(wal_seq));
        self.wal.truncate_for_checkpoint();
        st.commits_since_checkpoint = 0;
        st.checkpoints += 1;
        obs::trace(obs::TraceEvent::Checkpoint {
            seq: wal_seq,
            pages,
        });
    }

    /// Capture the durable state as of now (what a crash at this instant
    /// would leave on disk).
    pub fn durable_image(&self) -> DurableImage {
        let st = self.state.lock();
        DurableImage {
            checkpoint: st.checkpoint.clone(),
            wal: self.wal.image(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DurableStats {
        let st = self.state.lock();
        DurableStats {
            wal: self.wal.stats(),
            checkpoints: st.checkpoints,
            checkpoint_failures: st.checkpoint_failures,
        }
    }
}

/// What recovery did: how much WAL it replayed and how the log ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete committed frames replayed on top of the checkpoint.
    pub replayed_frames: u64,
    /// Records applied during replay.
    pub replayed_records: u64,
    /// How the WAL image ended ([`WalTail::Clean`] iff no damage).
    pub tail: WalTail,
}

impl RecoveryReport {
    /// Record `wal.replayed_records` into `registry`.
    pub fn publish(&self, registry: &obs::MetricsRegistry) {
        registry
            .counter("wal.replayed_records")
            .add(self.replayed_records);
    }
}

/// Why recovery could not produce a tree. A damaged WAL *tail* is not an
/// error (replay stops at the last complete record and reports it in
/// [`RecoveryReport::tail`]); these are the states with no recovery story
/// at all.
#[derive(Debug)]
pub enum RecoverError {
    /// No checkpoint was ever installed: there is no base state to replay
    /// onto (the writer takes an initial checkpoint before its first
    /// frame precisely to rule this out).
    NoCheckpoint,
    /// The image's checkpoint is the other server's shape (e.g. a logical
    /// record-set checkpoint handed to [`DurableImage::recover_tree`]).
    WrongCheckpointKind,
    /// The WAL header itself is unusable.
    Wal(WalError),
    /// The checkpoint snapshot failed to load.
    Snapshot(io::Error),
    /// A checksum-valid WAL record decoded to a malformed batch (a logic
    /// bug, surfaced as a typed error rather than a panic).
    Codec(String),
    /// Re-applying a committed record to the recovered store failed.
    Apply(StorageError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NoCheckpoint => write!(f, "no checkpoint to recover from"),
            RecoverError::WrongCheckpointKind => {
                write!(f, "checkpoint kind does not match the recovery path")
            }
            RecoverError::Wal(e) => write!(f, "unusable WAL image: {e}"),
            RecoverError::Snapshot(e) => write!(f, "checkpoint snapshot failed to load: {e}"),
            RecoverError::Codec(msg) => write!(f, "malformed WAL batch payload: {msg}"),
            RecoverError::Apply(e) => write!(f, "replay insert failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl DurableImage {
    /// Recover a single serving tree: load the checkpoint snapshot,
    /// reopen the tree, and replay every complete WAL record past the
    /// checkpoint watermark. The result is bit-identical (same
    /// [`save_pager`] bytes, same metadata) to a fault-free tree that
    /// applied the same committed-frame prefix, because the v3 snapshot
    /// preserves allocation order.
    pub fn recover_tree<const D: usize>(
        &self,
        config: RTreeConfig,
    ) -> Result<(RTree<NsiSegmentRecord<D>, Pager>, RecoveryReport), RecoverError> {
        let Some(Checkpoint::Tree(cp)) = &self.checkpoint else {
            return Err(match &self.checkpoint {
                None => RecoverError::NoCheckpoint,
                Some(_) => RecoverError::WrongCheckpointKind,
            });
        };
        let pager = load_pager(&cp.snapshot[..]).map_err(RecoverError::Snapshot)?;
        let mut tree: RTree<NsiSegmentRecord<D>, Pager> =
            RTree::reopen(pager, config, cp.root, cp.height, cp.len);
        let rep = replay_wal(&self.wal).map_err(RecoverError::Wal)?;
        let mut frames = 0u64;
        let mut records = 0u64;
        for r in &rep.records {
            // A capture racing a checkpoint can hold records the snapshot
            // already covers; the watermark filter keeps replay
            // exactly-once.
            if r.seq <= cp.wal_seq {
                continue;
            }
            let (_, batch) = decode_batch::<D>(&r.payload).map_err(RecoverError::Codec)?;
            frames += 1;
            for (rec, now) in batch {
                tree.try_insert(rec, now).map_err(RecoverError::Apply)?;
                records += 1;
            }
        }
        obs::trace(obs::TraceEvent::WalReplayed {
            records: records as u32,
            clean_tail: rep.tail.is_clean(),
        });
        Ok((
            tree,
            RecoveryReport {
                replayed_frames: frames,
                replayed_records: records,
                tail: rep.tail,
            },
        ))
    }

    /// Recover the partitioned server's durable state: the checkpoint's
    /// deduplicated record set plus every complete committed frame past
    /// the watermark, in commit order. The caller rebuilds region trees
    /// from the base set (via [`crate::PartitionedDqServer::build`]) and
    /// re-applies the frames through routing.
    #[allow(clippy::type_complexity)]
    pub fn recover_records<const D: usize>(
        &self,
    ) -> Result<
        (
            Vec<NsiSegmentRecord<D>>,
            Vec<(u64, Vec<(NsiSegmentRecord<D>, f64)>)>,
            RecoveryReport,
        ),
        RecoverError,
    > {
        let Some(Checkpoint::Logical(cp)) = &self.checkpoint else {
            return Err(match &self.checkpoint {
                None => RecoverError::NoCheckpoint,
                Some(_) => RecoverError::WrongCheckpointKind,
            });
        };
        let base = decode_record_set::<D>(&cp.records).map_err(RecoverError::Codec)?;
        let rep = replay_wal(&self.wal).map_err(RecoverError::Wal)?;
        let mut frames = Vec::new();
        let mut records = 0u64;
        for r in &rep.records {
            if r.seq <= cp.wal_seq {
                continue;
            }
            let (frame, batch) = decode_batch::<D>(&r.payload).map_err(RecoverError::Codec)?;
            records += batch.len() as u64;
            frames.push((frame, batch));
        }
        obs::trace(obs::TraceEvent::WalReplayed {
            records: records as u32,
            clean_tail: rep.tail.is_clean(),
        });
        let report = RecoveryReport {
            replayed_frames: frames.len() as u64,
            replayed_records: records,
            tail: rep.tail,
        };
        Ok((base, frames, report))
    }
}

/// Hooks [`DurableLog`] into a [`crate::DqServer`] without bounding the
/// whole server on [`SnapshotSource`]: the checkpoint path is a plain
/// function pointer instantiated by
/// [`crate::DqServer::with_durability`] — the only place the bound
/// exists — so `serve` stays generic over any [`PageStore`].
pub struct DurabilityHook<const D: usize, S: PageStore> {
    pub(crate) log: Arc<DurableLog>,
    checkpoint_fn: fn(&DurableLog, &RTree<NsiSegmentRecord<D>, Arc<S>>) -> io::Result<()>,
}

impl<const D: usize, S: PageStore> DurabilityHook<D, S> {
    pub(crate) fn for_tree(log: Arc<DurableLog>) -> Self
    where
        S: SnapshotSource,
    {
        DurabilityHook {
            log,
            checkpoint_fn: |log, tree| log.checkpoint_tree(tree),
        }
    }

    /// Take the run's base checkpoint if none exists yet, so recovery
    /// always has the preloaded tree to replay onto.
    pub(crate) fn ensure_initial(
        &self,
        tree: &RTree<NsiSegmentRecord<D>, Arc<S>>,
    ) -> io::Result<()> {
        if self.log.has_checkpoint() {
            return Ok(());
        }
        (self.checkpoint_fn)(&self.log, tree)
    }

    pub(crate) fn checkpoint(&self, tree: &RTree<NsiSegmentRecord<D>, Arc<S>>) -> io::Result<()> {
        (self.checkpoint_fn)(&self.log, tree)
    }
}

fn entry_len<const D: usize>() -> usize {
    <NsiSegmentRecord<D> as Record>::ENCODED_LEN + 8
}

/// WAL batch payload: `frame u64 ‖ count u32 ‖ [record bytes ‖ now f64]*`.
fn encode_batch<const D: usize>(frame: u64, batch: &[(NsiSegmentRecord<D>, f64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + batch.len() * entry_len::<D>());
    buf.extend_from_slice(&frame.to_le_bytes());
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for (rec, now) in batch {
        rec.encode(&mut buf);
        buf.extend_from_slice(&now.to_le_bytes());
    }
    buf
}

fn decode_batch<const D: usize>(
    payload: &[u8],
) -> Result<(u64, Vec<(NsiSegmentRecord<D>, f64)>), String> {
    if payload.len() < 12 {
        return Err(format!("batch payload too short: {} bytes", payload.len()));
    }
    let frame = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let entry = entry_len::<D>();
    if payload.len() != 12 + count * entry {
        return Err(format!(
            "batch payload length {} does not match {count} records",
            payload.len()
        ));
    }
    let rec_len = <NsiSegmentRecord<D> as Record>::ENCODED_LEN;
    let mut batch = Vec::with_capacity(count);
    let mut off = 12;
    for _ in 0..count {
        let rec = <NsiSegmentRecord<D> as Record>::decode(&payload[off..off + rec_len]);
        let now = f64::from_le_bytes(payload[off + rec_len..off + entry].try_into().unwrap());
        batch.push((rec, now));
        off += entry;
    }
    Ok((frame, batch))
}

/// Logical checkpoint body: `count u32 ‖ [record bytes]*`.
fn decode_record_set<const D: usize>(buf: &[u8]) -> Result<Vec<NsiSegmentRecord<D>>, String> {
    if buf.len() < 4 {
        return Err(format!("record set too short: {} bytes", buf.len()));
    }
    let count = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let rec_len = <NsiSegmentRecord<D> as Record>::ENCODED_LEN;
    if buf.len() != 4 + count * rec_len {
        return Err(format!(
            "record set length {} does not match {count} records",
            buf.len()
        ));
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 4;
    for _ in 0..count {
        out.push(<NsiSegmentRecord<D> as Record>::decode(
            &buf[off..off + rec_len],
        ));
        off += rec_len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn rec(oid: u32, x: f64, t: f64) -> R {
        R::new(oid, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5])
    }

    fn build(recs: &[(R, f64)], page_size: usize) -> RTree<R, Pager> {
        let mut tree = RTree::new(Pager::with_page_size(page_size), RTreeConfig::default());
        for (r, now) in recs {
            tree.insert(*r, *now);
        }
        tree
    }

    #[test]
    fn batch_codec_roundtrip() {
        let batch: Vec<(R, f64)> = (0..5).map(|i| (rec(i, f64::from(i), 0.25), 0.25)).collect();
        let payload = encode_batch(7, &batch);
        let (frame, got) = decode_batch::<2>(&payload).unwrap();
        assert_eq!(frame, 7);
        assert_eq!(got, batch);
        // Empty batches are legal group commits.
        let (frame, got) = decode_batch::<2>(&encode_batch::<2>(9, &[])).unwrap();
        assert_eq!((frame, got.len()), (9, 0));
        // Truncated and padded payloads are typed errors, not panics.
        assert!(decode_batch::<2>(&payload[..payload.len() - 1]).is_err());
        assert!(decode_batch::<2>(&[0u8; 11]).is_err());
    }

    #[test]
    fn recover_without_checkpoint_is_a_typed_error() {
        let log = DurableLog::new(4);
        log.commit_frame(0, &[(rec(1, 1.0, 0.0), 0.0)]);
        let image = log.durable_image();
        assert!(matches!(
            image.recover_tree::<2>(RTreeConfig::default()),
            Err(RecoverError::NoCheckpoint)
        ));
        assert!(matches!(
            image.recover_records::<2>(),
            Err(RecoverError::NoCheckpoint)
        ));
    }

    #[test]
    fn checkpoint_plus_replay_reconstructs_the_tree_bit_identically() {
        let preload: Vec<(R, f64)> = (0..30).map(|i| (rec(i, f64::from(i), 0.0), 0.0)).collect();
        let tree = build(&preload, 256).map_store(Arc::new);
        let log = DurableLog::new(0);
        log.checkpoint_tree(&tree).unwrap();

        // Commit two frames, apply them to the live tree, crash, recover.
        let mut live = tree;
        let batches: Vec<Vec<(R, f64)>> = (0..2)
            .map(|k| {
                (0..4)
                    .map(|j| (rec(100 + k * 4 + j, f64::from(j) + 0.25, 1.0), 1.0))
                    .collect()
            })
            .collect();
        for (k, b) in batches.iter().enumerate() {
            log.commit_frame(k as u64, b);
            for (r, now) in b {
                live.insert(*r, *now);
            }
        }
        let (recovered, report) = log
            .durable_image()
            .recover_tree::<2>(RTreeConfig::default())
            .unwrap();
        assert_eq!(report.replayed_frames, 2);
        assert_eq!(report.replayed_records, 8);
        assert!(report.tail.is_clean());
        assert_eq!(recovered.metadata(), live.metadata());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        save_pager(recovered.store(), &mut a).unwrap();
        save_pager(live.store(), &mut b).unwrap();
        assert_eq!(a, b, "recovered pager image differs from the live tree");
    }

    #[test]
    fn checkpoint_truncates_and_watermark_filters_replay() {
        let preload: Vec<(R, f64)> = (0..10).map(|i| (rec(i, f64::from(i), 0.0), 0.0)).collect();
        let mut live = build(&preload, 256).map_store(Arc::new);
        let log = DurableLog::new(2);
        log.checkpoint_tree(&live).unwrap();
        assert!(!log.due_for_checkpoint());

        for k in 0..2u64 {
            let b = vec![(rec(100 + k as u32, 0.25, 1.0), 1.0)];
            log.commit_frame(k, &b);
            live.insert(b[0].0, b[0].1);
        }
        assert!(log.due_for_checkpoint(), "two commits at every=2");
        log.checkpoint_tree(&live).unwrap();
        assert!(!log.due_for_checkpoint());
        let stats = log.stats();
        assert_eq!(stats.checkpoints, 2);
        assert_eq!(stats.wal.truncations, 2);

        // Nothing to replay: the checkpoint covers both commits.
        let (recovered, report) = log
            .durable_image()
            .recover_tree::<2>(RTreeConfig::default())
            .unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(recovered.metadata(), live.metadata());

        // One more commit replays exactly one record (seq continuity
        // across the truncation is what makes the watermark meaningful).
        let b = vec![(rec(200, 0.75, 2.0), 2.0)];
        log.commit_frame(2, &b);
        live.insert(b[0].0, b[0].1);
        let (recovered, report) = log
            .durable_image()
            .recover_tree::<2>(RTreeConfig::default())
            .unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(recovered.metadata(), live.metadata());
    }

    #[test]
    fn logical_checkpoint_roundtrips_records_and_frames() {
        let base: Vec<R> = (0..12).map(|i| rec(i, f64::from(i), 0.0)).collect();
        let log = DurableLog::new(0);
        log.checkpoint_logical(&base);
        let batch = vec![(rec(500, 3.25, 1.0), 1.0), (rec(501, 7.25, 1.0), 1.0)];
        log.commit_frame(4, &batch);
        let (got_base, frames, report) = log.durable_image().recover_records::<2>().unwrap();
        assert_eq!(got_base, base);
        assert_eq!(frames, vec![(4, batch)]);
        assert_eq!(report.replayed_frames, 1);
        assert_eq!(report.replayed_records, 2);
        assert!(report.tail.is_clean());
    }

    #[test]
    fn kind_mismatch_is_a_typed_error() {
        let log = DurableLog::new(0);
        log.checkpoint_logical::<2>(&[]);
        assert!(matches!(
            log.durable_image().recover_tree::<2>(RTreeConfig::default()),
            Err(RecoverError::WrongCheckpointKind)
        ));
        let tree = build(&[], 256).map_store(Arc::new);
        let log = DurableLog::new(0);
        log.checkpoint_tree(&tree).unwrap();
        assert!(matches!(
            log.durable_image().recover_records::<2>(),
            Err(RecoverError::WrongCheckpointKind)
        ));
    }
}
