//! The naive baseline: every snapshot query evaluated independently.
//!
//! "A naive approach to handling dynamic queries is to evaluate each
//! snapshot query in the sequence independently of all others" (§4). One
//! range search per rendered frame; cost is proportional to the frame
//! rate and does not benefit from overlap between consecutive frames —
//! exactly what Figs. 6–13 show as the upper bars.

use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree};
use storage::PageStore;

/// Stateless snapshot-query evaluator over either index layout.
///
/// The engine exists to make bench code symmetric with [`crate::PdqEngine`]
/// and [`crate::NpdqEngine`]; each call is an ordinary R-tree range search
/// plus the exact segment test of §3.2.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveEngine {
    /// Disable the §3.2 leaf-level exact segment test (accept every
    /// record whose bounding box overlaps) — for the `ablation_leaf_exact`
    /// experiment.
    pub skip_exact_test: bool,
}

impl NaiveEngine {
    /// Engine with the exact leaf test enabled (the paper's setting).
    pub fn new() -> Self {
        NaiveEngine::default()
    }

    /// Evaluate one snapshot query over an NSI tree.
    pub fn query_nsi<const D: usize, S: PageStore>(
        &self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        q: &SnapshotQuery<D>,
        mut emit: impl FnMut(&NsiSegmentRecord<D>),
    ) -> QueryStats {
        let skip = self.skip_exact_test;
        tree.range_search(
            &q.nsi_key(),
            |r| skip || q.matches_segment(&r.seg),
            |r| emit(r),
        )
        .into()
    }

    /// Evaluate one snapshot query over a double-temporal-axes tree.
    pub fn query_dta<const D: usize, S: PageStore>(
        &self,
        tree: &RTree<DtaSegmentRecord<D>, S>,
        q: &SnapshotQuery<D>,
        mut emit: impl FnMut(&DtaSegmentRecord<D>),
    ) -> QueryStats {
        let skip = self.skip_exact_test;
        tree.range_search(
            &q.dta_key(),
            |r| skip || q.matches_segment(&r.seg),
            |r| emit(r),
        )
        .into()
    }

    /// Evaluate a whole dynamic query naively: one independent snapshot
    /// per frame time. Returns per-frame stats.
    pub fn run_frames_nsi<const D: usize, S: PageStore>(
        &self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        frames: impl IntoIterator<Item = SnapshotQuery<D>>,
    ) -> Vec<QueryStats> {
        frames
            .into_iter()
            .map(|q| self.query_nsi(tree, &q, |_| {}))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::{Interval, Rect};

    type R = NsiSegmentRecord<2>;

    fn grid_tree() -> RTree<R, Pager> {
        let recs: Vec<R> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                R::new(
                    i,
                    0,
                    Interval::new(0.0, 10.0),
                    [x + 0.5, y + 0.5],
                    [x + 0.5, y + 0.5],
                )
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    #[test]
    fn snapshot_returns_window_contents() {
        let tree = grid_tree();
        let q = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [3.0, 3.0]), 5.0);
        let mut got = Vec::new();
        let stats = NaiveEngine::new().query_nsi(&tree, &q, |r| got.push(r.oid));
        assert_eq!(got.len(), 9, "3×3 stationary objects");
        assert_eq!(stats.results, 9);
        assert!(stats.disk_accesses > 0);
    }

    #[test]
    fn per_frame_cost_is_flat() {
        // The defining property of the baseline: cost per frame does not
        // depend on inter-frame overlap.
        let tree = grid_tree();
        let w = Rect::from_corners([5.0, 5.0], [8.0, 8.0]);
        let frames: Vec<SnapshotQuery<2>> = (0..20)
            .map(|i| SnapshotQuery::at_instant(w, i as f64 * 0.1))
            .collect();
        let stats = NaiveEngine::new().run_frames_nsi(&tree, frames);
        let first = stats[0];
        for s in &stats[1..] {
            assert_eq!(s.disk_accesses, first.disk_accesses);
            assert_eq!(s.results, first.results);
        }
    }

    #[test]
    fn exact_test_can_be_disabled() {
        // Diagonal mover: bbox covers everything, path misses the corner.
        let diag = R::new(0, 0, Interval::new(0.0, 10.0), [0.0, 0.0], [20.0, 20.0]);
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), vec![diag]);
        let q = SnapshotQuery::new(
            Rect::from_corners([15.0, 0.0], [20.0, 3.0]),
            Interval::new(0.0, 10.0),
        );
        let mut exact = 0;
        NaiveEngine::new().query_nsi(&tree, &q, |_| exact += 1);
        assert_eq!(exact, 0);
        let mut sloppy = 0;
        NaiveEngine { skip_exact_test: true }.query_nsi(&tree, &q, |_| sloppy += 1);
        assert_eq!(sloppy, 1, "bbox-only test admits the false positive");
    }

    #[test]
    fn dta_layout_agrees_with_nsi() {
        let recs: Vec<_> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                (
                    NsiSegmentRecord::<2>::new(i, 0, Interval::new(0.0, 10.0), [x, y], [x + 1.0, y]),
                    DtaSegmentRecord::<2>::new(i, 0, Interval::new(0.0, 10.0), [x, y], [x + 1.0, y]),
                )
            })
            .collect();
        let nsi = bulk_load(
            Pager::new(),
            RTreeConfig::default(),
            recs.iter().map(|(a, _)| *a).collect(),
        );
        let dta = bulk_load(
            Pager::new(),
            RTreeConfig::default(),
            recs.iter().map(|(_, b)| *b).collect(),
        );
        let q = SnapshotQuery::at_instant(Rect::from_corners([3.0, 3.0], [9.0, 9.0]), 4.0);
        let mut a: Vec<u32> = Vec::new();
        let mut b: Vec<u32> = Vec::new();
        let e = NaiveEngine::new();
        e.query_nsi(&nsi, &q, |r| a.push(r.oid));
        e.query_dta(&dta, &q, |r| b.push(r.oid));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both layouts must return the same objects");
        assert!(!a.is_empty());
    }
}
