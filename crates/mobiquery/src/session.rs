//! High-level visualization session: PDQ + client cache, framed.
//!
//! The paper's system picture (§1, §4.1) is a renderer posing 15–30
//! snapshot queries per second while the database streams each object
//! once, with its visibility interval, into a client cache keyed on
//! disappearance time. [`FlightSession`] packages that loop: one call per
//! frame returns what appeared, what is visible, and what was evicted —
//! the exact contract a rendering front-end needs.

use crate::cache::ClientCache;
use crate::pdq::PdqEngine;
use crate::trajectory::Trajectory;
use rtree::{NsiSegmentRecord, RTree, Record};
use storage::PageStore;

/// What one rendered frame sees.
#[derive(Clone, Debug)]
pub struct FrameView<const D: usize> {
    /// Frame time.
    pub t: f64,
    /// Records that entered the view since the previous frame (newly
    /// fetched from the database — the only ones that cost I/O).
    pub appeared: Vec<NsiSegmentRecord<D>>,
    /// Object ids currently visible (from the client cache).
    pub visible: Vec<u32>,
    /// Number of cache entries evicted at this frame (their
    /// disappearance time passed).
    pub evicted: usize,
}

/// A fly-through session over a predictive trajectory.
///
/// Owns the PDQ engine and the client cache; borrows the tree per frame
/// so concurrent insertions remain possible between frames (forward the
/// reports through [`FlightSession::notify`]).
///
/// ```
/// use mobiquery::{FlightSession, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// tree.insert(
///     NsiSegmentRecord::new(7, 0, Interval::new(0.0, 100.0), [3.5, 0.5], [3.5, 0.5]),
///     0.0);
/// let traj = Trajectory::linear(
///     Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///     [1.0, 0.0], Interval::new(0.0, 10.0), 2);
/// let mut session = FlightSession::start(&tree, traj);
/// // Window [3,4] covers the object at t = 3.2.
/// let frame = session.frame(&tree, 3.2);
/// assert_eq!(frame.visible, vec![7]);
/// // By t = 4.0 the window has moved past: the cache evicts it.
/// let frame = session.frame(&tree, 4.0);
/// assert!(frame.visible.is_empty());
/// ```
#[derive(Debug)]
pub struct FlightSession<const D: usize> {
    engine: PdqEngine<D>,
    cache: ClientCache<NsiSegmentRecord<D>>,
    prev_t: f64,
    finished_t: f64,
}

impl<const D: usize> FlightSession<D> {
    /// Start a session over `trajectory`.
    pub fn start<S: PageStore>(
        tree: &RTree<NsiSegmentRecord<D>, S>,
        trajectory: Trajectory<D>,
    ) -> Self {
        let start = trajectory.span().lo;
        let end = trajectory.span().hi;
        FlightSession {
            engine: PdqEngine::start(tree, trajectory),
            cache: ClientCache::new(),
            prev_t: start,
            finished_t: end,
        }
    }

    /// Render one frame at time `t` (monotone across calls): drains the
    /// engine up to `t`, feeds the cache, advances eviction.
    pub fn frame<S: PageStore>(
        &mut self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        t: f64,
    ) -> FrameView<D> {
        debug_assert!(t >= self.prev_t, "frames must advance");
        let mut appeared = Vec::new();
        for r in self.engine.drain_window(tree, self.prev_t, t) {
            self.cache.insert(r.record.oid, r.record, r.visibility);
            appeared.push(r.record);
        }
        let evicted = self.cache.advance(t);
        self.prev_t = t;
        FrameView {
            t,
            appeared,
            visible: self.cache.visible_now().map(|(oid, _)| oid).collect(),
            evicted,
        }
    }

    /// Forward a concurrent insertion to the running query (§4.1).
    pub fn notify<S: PageStore>(
        &mut self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        report: &rtree::InsertReport<<NsiSegmentRecord<D> as Record>::Key, NsiSegmentRecord<D>>,
    ) {
        self.engine.notify(tree, report);
    }

    /// True iff the trajectory has been fully traversed.
    pub fn finished(&self) -> bool {
        self.prev_t >= self.finished_t
    }

    /// Accumulated query cost.
    pub fn stats(&self) -> crate::stats::QueryStats {
        self.engine.stats()
    }

    /// The client cache (inspection).
    pub fn cache(&self) -> &ClientCache<NsiSegmentRecord<D>> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::{Interval, Rect};

    type R = NsiSegmentRecord<2>;

    fn line_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    fn slide(span: f64) -> Trajectory<2> {
        Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [2.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        )
    }

    #[test]
    fn frames_track_visibility() {
        let tree = line_tree(30);
        let mut s = FlightSession::start(&tree, slide(20.0));
        // Frame at t=0: window [0,2] covers objects 0 (x=0.5) and 1 (x=1.5).
        let f0 = s.frame(&tree, 0.0);
        let mut vis = f0.visible.clone();
        vis.sort_unstable();
        assert_eq!(vis, vec![0, 1]);
        // Advance to t=5: window [5,7] covers objects 5 and 6.
        let f5 = s.frame(&tree, 5.0);
        let mut vis = f5.visible.clone();
        vis.sort_unstable();
        assert_eq!(vis, vec![5, 6]);
        assert!(f5.evicted > 0, "passed objects must be evicted");
        assert!(!s.finished());
        let _ = s.frame(&tree, 20.0);
        assert!(s.finished());
    }

    #[test]
    fn appeared_objects_are_new_each_frame() {
        let tree = line_tree(30);
        let mut s = FlightSession::start(&tree, slide(20.0));
        let mut seen = std::collections::HashSet::new();
        let mut t = 0.0;
        while t <= 20.0 {
            let f = s.frame(&tree, t);
            for r in &f.appeared {
                assert!(seen.insert((r.oid, r.seq)), "re-delivered {:?}", r.oid);
            }
            t += 0.5;
        }
        assert_eq!(seen.len(), 22, "objects 0..=21 enter the sliding window");
    }

    #[test]
    fn live_insert_appears_in_later_frame() {
        let recs: Vec<R> = (0..10)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        let mut tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut s = FlightSession::start(&tree, slide(20.0));
        let _ = s.frame(&tree, 1.0);
        // Insert an object ahead of the window.
        let rec = R::new(99, 0, Interval::new(1.0, 100.0), [15.5, 0.5], [15.5, 0.5]);
        let report = tree.insert(rec, 1.0);
        s.notify(&tree, &report);
        let mut found = false;
        let mut t = 1.5;
        while t <= 20.0 {
            let f = s.frame(&tree, t);
            found |= f.appeared.iter().any(|r| r.oid == 99);
            t += 0.5;
        }
        assert!(found, "live insertion must surface");
    }
}
