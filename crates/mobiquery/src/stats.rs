//! Per-query cost accounting — the paper's two metrics.

/// Cost of evaluating (part of) a query.
///
/// §5: "Our performance measures are I/O cost measured in number of disk
/// accesses/query and CPU utilization in terms of number of distance
/// computations."
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// R-tree nodes loaded (simulated disk accesses).
    pub disk_accesses: u64,
    /// Of those, leaf-level nodes (the paper's figures split the bars
    /// into leaf and upper-level accesses).
    pub leaf_accesses: u64,
    /// Geometric comparisons: one per child entry or record examined
    /// (overlap tests / overlap-time computations) — the paper's
    /// "distance computations" CPU metric.
    pub distance_computations: u64,
    /// Objects returned.
    pub results: u64,
    /// Duplicate queue entries discarded by the §4.1 update-management
    /// dedup (0 unless concurrent insertions occur).
    pub duplicates_skipped: u64,
}

impl QueryStats {
    /// Disk accesses at non-leaf levels.
    pub fn upper_accesses(&self) -> u64 {
        self.disk_accesses - self.leaf_accesses
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: Self) {
        self.disk_accesses += rhs.disk_accesses;
        self.leaf_accesses += rhs.leaf_accesses;
        self.distance_computations += rhs.distance_computations;
        self.results += rhs.results;
        self.duplicates_skipped += rhs.duplicates_skipped;
    }
}

impl std::ops::Add for QueryStats {
    type Output = QueryStats;
    fn add(mut self, rhs: Self) -> QueryStats {
        self += rhs;
        self
    }
}

impl From<rtree::SearchStats> for QueryStats {
    fn from(s: rtree::SearchStats) -> Self {
        QueryStats {
            disk_accesses: s.nodes_visited,
            leaf_accesses: s.leaf_nodes_visited,
            distance_computations: s.comparisons,
            results: s.results,
            duplicates_skipped: 0,
        }
    }
}

/// Averages a sequence of [`QueryStats`], for the "subsequent queries"
/// rows of the paper's figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsAccumulator {
    sum: QueryStats,
    count: u64,
}

impl StatsAccumulator {
    /// Add one query's stats.
    pub fn push(&mut self, s: QueryStats) {
        self.sum += s;
        self.count += 1;
    }

    /// Number of queries accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total of all accumulated stats.
    pub fn total(&self) -> QueryStats {
        self.sum
    }

    /// Mean disk accesses per query.
    pub fn mean_disk(&self) -> f64 {
        self.mean(|s| s.disk_accesses)
    }

    /// Mean leaf-level disk accesses per query.
    pub fn mean_leaf(&self) -> f64 {
        self.mean(|s| s.leaf_accesses)
    }

    /// Mean distance computations per query.
    pub fn mean_cpu(&self) -> f64 {
        self.mean(|s| s.distance_computations)
    }

    /// Mean results per query.
    pub fn mean_results(&self) -> f64 {
        self.mean(|s| s.results)
    }

    fn mean(&self, f: impl Fn(&QueryStats) -> u64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            f(&self.sum) as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: u64, l: u64, c: u64, r: u64) -> QueryStats {
        QueryStats {
            disk_accesses: d,
            leaf_accesses: l,
            distance_computations: c,
            results: r,
            duplicates_skipped: 0,
        }
    }

    #[test]
    fn add_and_upper() {
        let a = s(10, 6, 100, 5) + s(2, 1, 20, 1);
        assert_eq!(a.disk_accesses, 12);
        assert_eq!(a.leaf_accesses, 7);
        assert_eq!(a.upper_accesses(), 5);
        assert_eq!(a.distance_computations, 120);
        assert_eq!(a.results, 6);
    }

    #[test]
    fn accumulator_means() {
        let mut acc = StatsAccumulator::default();
        acc.push(s(10, 5, 100, 3));
        acc.push(s(20, 15, 300, 5));
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean_disk(), 15.0);
        assert_eq!(acc.mean_leaf(), 10.0);
        assert_eq!(acc.mean_cpu(), 200.0);
        assert_eq!(acc.mean_results(), 4.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = StatsAccumulator::default();
        assert_eq!(acc.mean_disk(), 0.0);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn from_search_stats() {
        let ss = rtree::SearchStats {
            nodes_visited: 7,
            leaf_nodes_visited: 4,
            comparisons: 99,
            results: 12,
        };
        let qs: QueryStats = ss.into();
        assert_eq!(qs.disk_accesses, 7);
        assert_eq!(qs.leaf_accesses, 4);
        assert_eq!(qs.upper_accesses(), 3);
        assert_eq!(qs.distance_computations, 99);
    }
}
