//! Continuous aggregation over dynamic queries — future work (ii).
//!
//! A PDQ already returns each visible object once, with its exact
//! visibility time set. That is sufficient to answer *continuous
//! aggregate* queries — "how many objects are in view, as a function of
//! time?" — without any further index access: sweep the visibility
//! endpoints. [`CountProfile`] is the resulting step function.

use crate::pdq::PdqResult;
use stkit::{Interval, TimeSet};

/// A piecewise-constant count over time (right-open steps).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CountProfile {
    /// Breakpoints `(t, count)`: the count holds from this `t` until the
    /// next breakpoint. Sorted by `t`.
    steps: Vec<(f64, u32)>,
}

impl CountProfile {
    /// Build the profile from visibility time sets (a sweep over their
    /// interval endpoints).
    pub fn from_visibilities<'a>(vis: impl IntoIterator<Item = &'a TimeSet>) -> Self {
        // +1 at every interval start, −1 after every end.
        let mut events: Vec<(f64, i32)> = Vec::new();
        for ts in vis {
            for iv in ts.intervals() {
                events.push((iv.lo, 1));
                events.push((iv.hi, -1));
            }
        }
        // Starts before ends at the same instant (closed intervals).
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut steps: Vec<(f64, u32)> = Vec::new();
        let mut count = 0i32;
        for (t, d) in events {
            count += d;
            let c = count.max(0) as u32;
            // Right-continuous convention: at coincident event times the
            // final value wins (the instant itself is measure zero).
            match steps.last_mut() {
                Some(&mut (lt, ref mut lc)) if lt == t => *lc = c,
                Some(&mut (_, lc)) if lc == c => {}
                _ => steps.push((t, c)),
            }
        }
        CountProfile { steps }
    }

    /// Build directly from PDQ results.
    pub fn from_results<const D: usize>(results: &[PdqResult<D>]) -> Self {
        Self::from_visibilities(results.iter().map(|r| &r.visibility))
    }

    /// The count at instant `t` (0 before the first breakpoint).
    pub fn count_at(&self, t: f64) -> u32 {
        match self.steps.partition_point(|&(bt, _)| bt <= t) {
            0 => 0,
            i => self.steps[i - 1].1,
        }
    }

    /// Maximum count over the whole profile.
    pub fn max_count(&self) -> u32 {
        self.steps.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Time-weighted average count over `window`.
    pub fn mean_over(&self, window: Interval) -> f64 {
        if window.is_empty() || window.length() == 0.0 {
            return self.count_at(window.lo) as f64;
        }
        let mut acc = 0.0;
        let mut t = window.lo;
        let mut i = self.steps.partition_point(|&(bt, _)| bt <= window.lo);
        let mut current = if i == 0 { 0 } else { self.steps[i - 1].1 };
        while t < window.hi {
            let next = if i < self.steps.len() {
                self.steps[i].0.min(window.hi)
            } else {
                window.hi
            };
            acc += current as f64 * (next - t);
            t = next;
            if i < self.steps.len() && self.steps[i].0 <= t {
                current = self.steps[i].1;
                i += 1;
            }
        }
        acc / window.length()
    }

    /// The breakpoints (inspection/plotting).
    pub fn steps(&self) -> &[(f64, u32)] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ivs: &[(f64, f64)]) -> TimeSet {
        TimeSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn single_object_profile() {
        let v = [ts(&[(1.0, 3.0)])];
        let p = CountProfile::from_visibilities(v.iter());
        assert_eq!(p.count_at(0.5), 0);
        assert_eq!(p.count_at(1.0), 1);
        assert_eq!(p.count_at(2.9), 1);
        assert_eq!(p.count_at(3.5), 0);
        assert_eq!(p.max_count(), 1);
    }

    #[test]
    fn overlapping_objects_stack() {
        let v = [ts(&[(0.0, 4.0)]), ts(&[(2.0, 6.0)]), ts(&[(3.0, 3.5)])];
        let p = CountProfile::from_visibilities(v.iter());
        assert_eq!(p.count_at(1.0), 1);
        assert_eq!(p.count_at(2.5), 2);
        assert_eq!(p.count_at(3.2), 3);
        assert_eq!(p.count_at(5.0), 1);
        assert_eq!(p.count_at(7.0), 0);
        assert_eq!(p.max_count(), 3);
    }

    #[test]
    fn disconnected_visibility() {
        let v = [ts(&[(0.0, 1.0), (5.0, 6.0)])];
        let p = CountProfile::from_visibilities(v.iter());
        assert_eq!(p.count_at(0.5), 1);
        assert_eq!(p.count_at(3.0), 0);
        assert_eq!(p.count_at(5.5), 1);
    }

    #[test]
    fn mean_over_window() {
        // One object for [0, 2], two for [2, 4] ⇒ mean over [0, 4] = 1.5.
        let v = [ts(&[(0.0, 4.0)]), ts(&[(2.0, 4.0)])];
        let p = CountProfile::from_visibilities(v.iter());
        let m = p.mean_over(Interval::new(0.0, 4.0));
        assert!((m - 1.5).abs() < 1e-9, "{m}");
        assert_eq!(p.mean_over(Interval::new(5.0, 6.0)), 0.0);
    }

    #[test]
    fn empty_profile() {
        let p = CountProfile::from_visibilities(std::iter::empty());
        assert_eq!(p.count_at(0.0), 0);
        assert_eq!(p.max_count(), 0);
        assert_eq!(p.mean_over(Interval::new(0.0, 1.0)), 0.0);
    }

    #[test]
    fn profile_matches_pdq_frame_counts() {
        // End-to-end: profile from PDQ visibilities equals per-frame
        // naive counts.
        use crate::{NaiveEngine, PdqEngine, Trajectory};
        use rtree::bulk::bulk_load;
        use rtree::{NsiSegmentRecord, RTreeConfig};
        use storage::Pager;
        use stkit::Rect;
        let recs: Vec<NsiSegmentRecord<2>> = (0..50)
            .map(|i| {
                let x = i as f64 + 0.5;
                NsiSegmentRecord::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let traj = Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [5.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, 20.0),
            2,
        );
        let mut pdq = PdqEngine::start(&tree, traj.clone());
        let results = pdq.drain_window(&tree, 0.0, 20.0);
        let profile = CountProfile::from_results(&results);
        let naive = NaiveEngine::new();
        for k in 0..40 {
            let t = 0.25 + k as f64 * 0.5;
            let mut n = 0;
            naive.query_nsi(&tree, &traj.snapshot_at(t), |_| n += 1);
            assert_eq!(profile.count_at(t), n, "t={t}");
        }
    }
}
