//! k-nearest-neighbour search for a (moving) query point — the paper's
//! future-work extension (i), after Song & Roussopoulos' moving-query-
//! point kNN (§6).
//!
//! [`knn_at`] is a classic best-first kNN (Hjaltason–Samet style, the
//! same priority-queue machinery §4.1 builds on) restricted to motion
//! segments valid at the query instant. [`MovingKnn`] evaluates a
//! sequence of instants, seeding each search with the previous answer's
//! distance bound: when the query point moves by `δ`, the previous k-th
//! distance plus `δ` plus the maximum object displacement bounds the new
//! k-th distance, letting the search prune aggressively — the same
//! result-reuse idea the paper applies to range queries.

use crate::stats::QueryStats;
use rtree::{NsiSegmentRecord, TreeRead};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use storage::PageId;

/// One kNN answer: a record and its squared distance at the query instant.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnResult<const D: usize> {
    /// The motion-segment record.
    pub record: NsiSegmentRecord<D>,
    /// Squared distance to the query point at the query instant.
    pub dist_sq: f64,
}

enum Frontier<const D: usize> {
    Node(PageId),
    Object(NsiSegmentRecord<D>),
}

struct FrontierItem<const D: usize> {
    dist_sq: f64,
    what: Frontier<D>,
}

impl<const D: usize> FrontierItem<D> {
    /// Deterministic tie-break at equal distance, same as the PDQ queue:
    /// objects pop before nodes (an answer beats speculative expansion),
    /// then ascending identity. Without this, `BinaryHeap`'s arbitrary
    /// tie order makes the reported k-set depend on insertion history
    /// whenever the k-th and (k+1)-th candidates are equidistant.
    fn tie_key(&self) -> (u8, u64) {
        match &self.what {
            Frontier::Object(r) => (0, ((r.oid as u64) << 32) | r.seq as u64),
            Frontier::Node(page) => (1, page.0 as u64),
        }
    }
}

impl<const D: usize> PartialEq for FrontierItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize> Eq for FrontierItem<D> {}
impl<const D: usize> PartialOrd for FrontierItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for FrontierItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, with a total tie-break so the pop order
        // (and therefore the k-set at tie boundaries) is deterministic.
        other
            .dist_sq
            .total_cmp(&self.dist_sq)
            .then_with(|| other.tie_key().cmp(&self.tie_key()))
    }
}

/// Best-first kNN at a single instant `t`: the `k` objects (valid at `t`)
/// nearest to point `p`, with an optional initial pruning bound
/// `max_dist_sq` (results beyond it are not reported).
pub fn knn_at<const D: usize, T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
    tree: &T,
    p: [f64; D],
    t: f64,
    k: usize,
    max_dist_sq: f64,
    stats: &mut QueryStats,
) -> Vec<KnnResult<D>> {
    let mut heap: BinaryHeap<FrontierItem<D>> = BinaryHeap::new();
    heap.push(FrontierItem {
        dist_sq: 0.0,
        what: Frontier::Node(tree.root_page()),
    });
    let mut out: Vec<KnnResult<D>> = Vec::with_capacity(k);
    let mut bound = max_dist_sq;
    while let Some(item) = heap.pop() {
        if item.dist_sq > bound {
            break;
        }
        match item.what {
            Frontier::Object(record) => {
                out.push(KnnResult {
                    record,
                    dist_sq: item.dist_sq,
                });
                stats.results += 1;
                if out.len() == k {
                    break;
                }
            }
            Frontier::Node(page) => {
                // Zero-copy visit: entries decode lazily out of the page.
                let node = tree.read_node(page);
                stats.disk_accesses += 1;
                if node.is_leaf() {
                    stats.leaf_accesses += 1;
                    for rec in node.leaf_records() {
                        stats.distance_computations += 1;
                        if !rec.seg.t.contains(t) {
                            continue;
                        }
                        let d = rec.seg.dist_sq_at(t, &p);
                        if d <= bound {
                            heap.push(FrontierItem {
                                dist_sq: d,
                                what: Frontier::Object(rec),
                            });
                        }
                    }
                } else {
                    for (key, child) in node.internal_entries() {
                        stats.distance_computations += 1;
                        if !key.time.extent(0).contains(t) {
                            continue;
                        }
                        let d = key.space.min_dist_sq(&p);
                        if d <= bound {
                            heap.push(FrontierItem {
                                dist_sq: d,
                                what: Frontier::Node(child),
                            });
                        }
                    }
                }
            }
        }
        // Tighten the bound once k candidates are enqueued/known: the
        // k-th smallest enqueued object distance is an upper bound.
        if out.len() == k {
            break;
        }
    }
    out.truncate(k);
    if let Some(last) = out.last() {
        let _ = last; // bound bookkeeping done by the caller (MovingKnn)
    }
    let _ = &mut bound;
    out
}

/// kNN over a moving query point: a sequence of `(t, p)` instants, each
/// search seeded with a distance bound derived from the previous answer.
#[derive(Clone, Debug)]
pub struct MovingKnn<const D: usize> {
    k: usize,
    /// Upper bound on any object's speed (for bound transfer between
    /// instants); `f64::INFINITY` disables reuse.
    max_object_speed: f64,
    prev: Option<(f64, [f64; D], f64)>, // (t, p, kth_dist)
}

impl<const D: usize> MovingKnn<D> {
    /// A moving-kNN session. `max_object_speed` bounds how fast any
    /// indexed object moves (the workload knows this).
    pub fn new(k: usize, max_object_speed: f64) -> Self {
        assert!(k > 0, "k must be positive");
        MovingKnn {
            k,
            max_object_speed,
            prev: None,
        }
    }

    /// Evaluate the kNN at instant `(t, p)`.
    pub fn query<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        t: f64,
        p: [f64; D],
        stats: &mut QueryStats,
    ) -> Vec<KnnResult<D>> {
        let bound = match self.prev {
            Some((pt, pp, kth)) if t >= pt => {
                // Previous k-th neighbour moved at most v·Δt; the query
                // point moved ‖p − pp‖. New k-th distance is at most
                // kth + both displacements (triangle inequality).
                let dt = t - pt;
                let moved: f64 = pp
                    .iter()
                    .zip(&p)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let slack = moved + self.max_object_speed * dt;
                let b = kth.sqrt() + slack;
                b * b
            }
            _ => f64::INFINITY,
        };
        let mut res = knn_at(tree, p, t, self.k, bound, stats);
        // The bound can only be *too tight* if fewer than k results came
        // back (e.g. objects expired); retry unbounded in that case.
        if res.len() < self.k && bound.is_finite() {
            res = knn_at(tree, p, t, self.k, f64::INFINITY, stats);
        }
        if let Some(last) = res.last() {
            self.prev = Some((t, p, last.dist_sq));
        } else {
            self.prev = None;
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::{RTree, RTreeConfig};
    use storage::Pager;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn grid_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n * n)
            .map(|k| {
                let x = (k % n) as f64 + 0.5;
                let y = (k / n) as f64 + 0.5;
                R::new(k, 0, Interval::new(0.0, 100.0), [x, y], [x, y])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    #[test]
    fn nearest_neighbor_is_correct() {
        let tree = grid_tree(20);
        let mut stats = QueryStats::default();
        let res = knn_at(&tree, [5.6, 5.6], 1.0, 1, f64::INFINITY, &mut stats);
        assert_eq!(res.len(), 1);
        // Nearest grid point to (5.6, 5.6) is (5.5, 5.5).
        assert_eq!(res[0].record.seg.x0, [5.5, 5.5]);
        assert!((res[0].dist_sq - 0.02).abs() < 1e-9);
    }

    #[test]
    fn k_results_in_distance_order() {
        let tree = grid_tree(20);
        let mut stats = QueryStats::default();
        let res = knn_at(&tree, [10.5, 10.5], 1.0, 5, f64::INFINITY, &mut stats);
        assert_eq!(res.len(), 5);
        for w in res.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
        // First is the exact cell we sit on.
        assert_eq!(res[0].record.seg.x0, [10.5, 10.5]);
        assert_eq!(res[0].dist_sq, 0.0);
    }

    #[test]
    fn validity_filter_applies() {
        // One object valid only early, closer than everything else.
        let mut recs = vec![R::new(
            0,
            0,
            Interval::new(0.0, 1.0),
            [50.0, 50.0],
            [50.0, 50.0],
        )];
        recs.push(R::new(1, 0, Interval::new(0.0, 100.0), [52.0, 50.0], [52.0, 50.0]));
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut stats = QueryStats::default();
        let early = knn_at(&tree, [50.0, 50.0], 0.5, 1, f64::INFINITY, &mut stats);
        assert_eq!(early[0].record.oid, 0);
        let late = knn_at(&tree, [50.0, 50.0], 5.0, 1, f64::INFINITY, &mut stats);
        assert_eq!(late[0].record.oid, 1, "expired object must be skipped");
    }

    #[test]
    fn moving_knn_matches_fresh_searches_and_saves_io() {
        let tree = grid_tree(40);
        let mut mov = MovingKnn::new(3, 0.0);
        let mut mov_stats = QueryStats::default();
        let mut fresh_stats = QueryStats::default();
        for step in 0..20 {
            let t = 1.0 + step as f64 * 0.1;
            let p = [5.0 + step as f64 * 0.3, 8.0];
            let a = mov.query(&tree, t, p, &mut mov_stats);
            let b = knn_at(&tree, p, t, 3, f64::INFINITY, &mut fresh_stats);
            // Equidistant neighbours may tie-break differently between
            // the bounded and unbounded searches: compare distances.
            let ak: Vec<f64> = a.iter().map(|r| r.dist_sq).collect();
            let bk: Vec<f64> = b.iter().map(|r| r.dist_sq).collect();
            assert_eq!(ak, bk, "step {step}");
        }
        assert!(
            mov_stats.distance_computations <= fresh_stats.distance_computations,
            "bound reuse should not examine more: {} vs {}",
            mov_stats.distance_computations,
            fresh_stats.distance_computations
        );
    }

    #[test]
    fn equidistant_tie_breaks_are_deterministic() {
        // Eight objects on the integer circle of radius 5 around the
        // query point — Pythagorean offsets (±3,±4)/(±4,±3) make every
        // distance *exactly* 25 even after f32 coordinate quantization —
        // and k = 3 < 8, so the k-set is decided purely by the tie-break.
        // Assign oids in an order unrelated to position so an
        // insertion-order heap would produce a different (arbitrary) set.
        let offsets = [
            [3.0, 4.0],
            [4.0, 3.0],
            [-3.0, 4.0],
            [-4.0, -3.0],
            [3.0, -4.0],
            [4.0, -3.0],
            [-3.0, -4.0],
            [-4.0, 3.0],
        ];
        let order = [5u32, 2, 7, 0, 3, 6, 1, 4];
        let recs: Vec<R> = order
            .iter()
            .zip(&offsets)
            .map(|(&oid, off)| {
                let p = [50.0 + off[0], 50.0 + off[1]];
                R::new(oid, 0, Interval::new(0.0, 100.0), p, p)
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut stats = QueryStats::default();
        let res = knn_at(&tree, [50.0, 50.0], 1.0, 3, f64::INFINITY, &mut stats);
        assert_eq!(res.len(), 3);
        for r in &res {
            assert_eq!(r.dist_sq, 25.0, "all candidates tie exactly");
        }
        // Objects pop before nodes, then ascending (oid, seq): the k-set
        // is the three smallest oids, in oid order, every run.
        let ids: Vec<u32> = res.iter().map(|r| r.record.oid).collect();
        assert_eq!(ids, vec![0, 1, 2], "k-set must be the smallest ids");
        // And a second run over the same tree is bit-identical.
        let again = knn_at(&tree, [50.0, 50.0], 1.0, 3, f64::INFINITY, &mut stats);
        assert_eq!(res, again);
    }

    #[test]
    fn equidistant_moving_observer_is_deterministic() {
        // Same tie scenario through the moving-observer entry point: four
        // stationary objects at identical closest-approach distance.
        let recs: Vec<R> = [3u32, 1, 2, 0]
            .iter()
            .enumerate()
            .map(|(slot, &oid)| {
                let x = 10.0 + 20.0 * slot as f64;
                R::new(oid, 0, Interval::new(0.0, 10.0), [x, 2.0], [x, 2.0])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let observer =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [100.0, 0.0]);
        let mut stats = QueryStats::default();
        let res =
            knn_moving_observer(&tree, &observer, Interval::new(0.0, 10.0), 2, &mut stats);
        let ids: Vec<u32> = res.iter().map(|r| r.record.oid).collect();
        assert_eq!(ids, vec![0, 1], "equidistant ties must resolve by id");
    }

    use stkit::MotionSegment;

    #[test]
    fn more_neighbors_than_objects() {
        let tree = grid_tree(2);
        let mut stats = QueryStats::default();
        let res = knn_at(&tree, [0.0, 0.0], 1.0, 10, f64::INFINITY, &mut stats);
        assert_eq!(res.len(), 4, "only 4 objects exist");
    }
}

/// kNN *relative to a moving observer over a time window*: the `k`
/// records minimizing their closest approach to the observer's motion
/// during `window` — "which k objects come nearest to me during the next
/// minute?". Best-first over a lower bound: the spatial box distance
/// between the observer's swept extent and each node box (valid because
/// positions stay inside their bounding boxes).
pub fn knn_moving_observer<const D: usize, T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
    tree: &T,
    observer: &stkit::MotionSegment<D>,
    window: stkit::Interval,
    k: usize,
    stats: &mut QueryStats,
) -> Vec<KnnResult<D>> {
    use stkit::min_dist_sq_over;
    let span = observer.t.intersect(&window);
    if span.is_empty() || k == 0 {
        return Vec::new();
    }
    // The observer's swept spatial box over the window.
    let clipped = stkit::MotionSegment::from_endpoints(
        span,
        observer.position(span.lo),
        observer.position(span.hi),
    );
    let swept = clipped.spatial_bbox();

    let mut heap: BinaryHeap<FrontierItem<D>> = BinaryHeap::new();
    heap.push(FrontierItem {
        dist_sq: 0.0,
        what: Frontier::Node(tree.root_page()),
    });
    let mut out: Vec<KnnResult<D>> = Vec::with_capacity(k);
    while let Some(item) = heap.pop() {
        match item.what {
            Frontier::Object(record) => {
                out.push(KnnResult {
                    record,
                    dist_sq: item.dist_sq,
                });
                stats.results += 1;
                if out.len() == k {
                    break;
                }
            }
            Frontier::Node(page) => {
                let node = tree.read_node(page);
                stats.disk_accesses += 1;
                if node.is_leaf() {
                    stats.leaf_accesses += 1;
                    for rec in node.leaf_records() {
                        stats.distance_computations += 1;
                        if let Some(d) = min_dist_sq_over(&rec.seg, observer, &span) {
                            heap.push(FrontierItem {
                                dist_sq: d,
                                what: Frontier::Object(rec),
                            });
                        }
                    }
                } else {
                    for (key, child) in node.internal_entries() {
                        stats.distance_computations += 1;
                        if !key.time.extent(0).overlaps(&span) {
                            continue;
                        }
                        let d = key.space.min_dist_sq_rect(&swept);
                        heap.push(FrontierItem {
                            dist_sq: d,
                            what: Frontier::Node(child),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod moving_observer_tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::{Interval, MotionSegment};

    type R = NsiSegmentRecord<2>;

    #[test]
    fn closest_approach_ranking() {
        // Observer drives east along y = 0; objects sit at varying y.
        let recs: Vec<R> = (0..20)
            .map(|i| {
                let y = 1.0 + i as f64;
                R::new(i, 0, Interval::new(0.0, 10.0), [50.0, y], [50.0, y])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let observer =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [100.0, 0.0]);
        let mut stats = QueryStats::default();
        let res = knn_moving_observer(&tree, &observer, Interval::new(0.0, 10.0), 3, &mut stats);
        let ids: Vec<u32> = res.iter().map(|r| r.record.oid).collect();
        assert_eq!(ids, vec![0, 1, 2], "nearest rows first");
        assert!((res[0].dist_sq - 1.0).abs() < 1e-9);
        assert!((res[2].dist_sq - 9.0).abs() < 1e-9);
    }

    #[test]
    fn window_changes_the_answer() {
        // Object 0 is near the observer's path only late; object 1 early.
        let recs = vec![
            R::new(0, 0, Interval::new(0.0, 10.0), [90.0, 2.0], [90.0, 2.0]),
            R::new(1, 0, Interval::new(0.0, 10.0), [10.0, 2.0], [10.0, 2.0]),
        ];
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let observer =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [100.0, 0.0]);
        let mut stats = QueryStats::default();
        // Early window: observer only reaches x ∈ [0, 30].
        let early =
            knn_moving_observer(&tree, &observer, Interval::new(0.0, 3.0), 1, &mut stats);
        assert_eq!(early[0].record.oid, 1);
        // Late window: x ∈ [80, 100].
        let late =
            knn_moving_observer(&tree, &observer, Interval::new(8.0, 10.0), 1, &mut stats);
        assert_eq!(late[0].record.oid, 0);
    }

    #[test]
    fn matches_brute_force() {
        let recs: Vec<R> = (0..300)
            .map(|i| {
                let ang = i as f64 * 2.399;
                let p = [50.0 + (i % 17) as f64 * 2.0 - 16.0, 30.0 + (i % 23) as f64];
                R::new(
                    i,
                    0,
                    Interval::new((i % 5) as f64, (i % 5) as f64 + 4.0),
                    p,
                    [p[0] + ang.cos(), p[1] + ang.sin()],
                )
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
        let observer =
            MotionSegment::from_endpoints(Interval::new(0.0, 8.0), [30.0, 30.0], [70.0, 45.0]);
        let window = Interval::new(1.0, 7.0);
        let mut stats = QueryStats::default();
        let got = knn_moving_observer(&tree, &observer, window, 5, &mut stats);
        let mut brute: Vec<(f64, u32)> = recs
            .iter()
            .filter_map(|r| {
                stkit::min_dist_sq_over(&r.seg, &observer, &window).map(|d| (d, r.oid))
            })
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(got.len(), 5);
        for (i, res) in got.iter().enumerate() {
            assert!(
                (res.dist_sq - brute[i].0).abs() < 1e-9,
                "rank {i}: {} vs {}",
                res.dist_sq,
                brute[i].0
            );
        }
    }
}
