//! # mobiquery — dynamic queries over mobile objects (EDBT 2002)
//!
//! The paper's primary contribution: query processing for *dynamic
//! queries* — spatio-temporal range queries whose window moves with an
//! observer — over an R-tree of motion segments, retrieving each object
//! **once**, when it enters the view, instead of re-running a snapshot
//! query per rendered frame.
//!
//! * [`SnapshotQuery`] — one instantaneous (or small-extent) range query
//!   (Definition 3).
//! * [`Trajectory`] — a predictive dynamic query's sequence of key
//!   snapshots, with the Eq. 3 overlap-time computation against bounding
//!   boxes and exact motion segments.
//! * [`PdqEngine`] — the §4.1 algorithm: a priority queue ordered by
//!   overlap start time; `get_next(t_start, t_end)` emits objects as they
//!   enter the view, visiting each R-tree node at most once per dynamic
//!   query. Handles concurrent insertions via the §4.1 update-management
//!   protocol (LCA notification, duplicate elimination on pop, queue
//!   rebuild when the LCA is near the root).
//! * [`NpdqEngine`] — the §4.2 algorithm for unknown trajectories:
//!   consecutive snapshot queries over the double-temporal-axes index,
//!   discarding any subtree whose overlap with the current query is
//!   covered by the previous one (`(Q ∩ R) ⊆ P`), with node timestamps
//!   deciding when the previous query is still usable.
//! * [`spdq`] — semi-predictive queries: PDQ over a δ-inflated trajectory.
//! * [`naive`] — the baseline: every snapshot evaluated independently.
//! * [`ClientCache`] — the client-side buffer keyed on object
//!   disappearance time that completes the paper's system picture.
//! * [`knn`] — the paper's future-work extension (i): incremental
//!   nearest-neighbour search for a moving query point, on the same
//!   best-first machinery.

// Numeric kernels iterate several fixed-size arrays in lockstep; index
// loops keep the per-axis math symmetric and readable.
#![allow(clippy::needless_range_loop)]

pub mod adaptive;
pub mod aggregate;
pub mod cache;
pub mod clock;
pub mod durability;
pub mod join;
pub mod knn;
pub mod layout;
pub mod naive;
pub mod npdq;
pub mod pdq;
pub mod psi;
pub mod region;
pub mod router;
pub mod service;
pub mod session;
pub mod snapshot;
pub mod spdq;
pub mod stats;
pub mod trajectory;
pub mod uncertain;

pub use adaptive::{AdaptiveConfig, AdaptiveSession, Mode};
pub use aggregate::CountProfile;
pub use cache::ClientCache;
pub use clock::{FrameClock, SessionLiveness};
pub use durability::{
    Checkpoint, DurableImage, DurableLog, DurableStats, LogicalCheckpoint, RecoverError,
    RecoveryReport, TreeCheckpoint,
};
pub use join::{distance_join, self_distance_join, JoinPair};
pub use knn::{knn_at, knn_moving_observer, KnnResult, MovingKnn};
pub use layout::MotionRecord;
pub use naive::NaiveEngine;
pub use npdq::NpdqEngine;
pub use pdq::{PdqEngine, PdqResult};
pub use psi::{psi_query, psi_query_key, PsiBounds, PsiSegmentRecord};
pub use region::RegionGrid;
pub use router::{PartitionedDqServer, PartitionedServeReport, RecutPlan, RegionReport};
pub use service::{
    DqServer, FrameDelta, FrameReport, FrameSink, ServeReport, SessionKind, SessionOutcome,
    SessionOutput, SessionPlan, SessionSpec, SinkVerdict,
};
pub use session::{FlightSession, FrameView};
pub use snapshot::SnapshotQuery;
pub use spdq::SpdqSession;
pub use stats::QueryStats;
pub use trajectory::{KeySnapshot, Trajectory};
pub use uncertain::{uncertain_query, Containment, UncertainHit};

/// Convenience alias: the NSI record type the PDQ/naive engines index.
pub type NsiRecord<const D: usize> = rtree::NsiSegmentRecord<D>;
/// Convenience alias: the double-temporal-axes record type NPDQ indexes.
pub type DtaRecord<const D: usize> = rtree::DtaSegmentRecord<D>;
