//! Region-partitioned serving: many trees, many writers, one answer.
//!
//! [`crate::service::DqServer`] serializes every insert behind ONE
//! tree's write lock — correct, but the writer caps throughput long
//! before millions of objects. [`PartitionedDqServer`] splits space by a
//! [`RegionGrid`] into regions that each own their own NSI tree, their
//! own writer thread, and their own buffer pool, so per-frame insert
//! batches apply in parallel (the architecture of distributed
//! continuous-range-query processors, arXiv 2206.01905, folded into one
//! process).
//!
//! The router half lives in each session: a session's moving window is
//! split across the regions its trajectory sweeps (its *lanes*), one
//! PDQ/NPDQ engine per lane, and per-frame lane results are merged back
//! into a single stream. Records whose trapezoid segments straddle a
//! region seam are replicated into every touching region (closed slabs —
//! see [`RegionGrid::route_rect`]), so the merge deduplicates by
//! `(oid, seq)`: PDQ keeps a cross-frame delivered set (entry events
//! stay exactly-once at seams), NPDQ dedups within the frame (snapshot
//! semantics re-report per frame by design). Within a frame, merged PDQ
//! results order by `(visibility start, oid, seq)` — the same keys the
//! PDQ queue itself tie-breaks on — which makes partitioned runs
//! bitwise deterministic: [`PartitionedDqServer::serve`] equals
//! [`PartitionedDqServer::serve_serial`] exactly, the same contract the
//! single-tree server keeps.
//!
//! ## The clock protocol, per region
//!
//! Frames are ordered by one [`crate::clock::FrameClock`] *per region* —
//! there is no global barrier anywhere on the serving path. Region `r`'s
//! writer applies its routed slice of batch `k` only after (a) the
//! `committed` watermark covers `k` (durable runs: the batch is in the
//! WAL first) and (b) every live session attached to `r` has acked past
//! `k` — then it applies under its tree's
//! write lock, broadcasts [`rtree::InsertReport`]s into per-`(session,
//! region)` mailboxes, and advances `r`'s `applied` watermark. A session
//! processes frame `k` by waiting on `applied` of exactly the regions
//! its query sweeps, so a slow (or deliberately sleeping) session
//! back-pressures only its own lanes: writers of untouched regions never
//! hear from it. Sessions *detach* from their lane clocks when their
//! schedule ends — or when they fail mid-run, so a dead session releases
//! the writers instead of zombie-parking at a barrier. Per region the
//! invariant `committed >= applied` holds throughout, and the flow
//! control keeps every optimistic read validation passing: region tree
//! level reads == Σ lane disk accesses attributed to that region + that
//! region's writer reads, exactly (non-durable runs).
//!
//! ## Epoch-handoff recuts
//!
//! Because nothing global synchronizes frames, the grid can be *recut
//! while sessions are live* ([`RecutPlan`]): the run is split into
//! epochs, each with its own grid, trees, clocks, and mailboxes. At an
//! epoch boundary the coordinator waits for the old epoch's clocks to
//! drain, collects and deduplicates every record, recuts the grid at
//! equal-load quantiles of the epoch's measured load, rebuilds region
//! trees, and publishes the next epoch; sessions re-route their lanes
//! and rebuild their engines against the new layout, carrying their
//! delivered-set and accumulated results across — delivery stays
//! exactly-once and result sequences are bit-identical to a run that
//! never recut. Between-serves [`PartitionedDqServer::rebalance`] (over
//! `&mut self`) remains for callers that want the same recut without a
//! live run.
//!
//! Hotspot rebalancing (after Kiwano, arXiv 1211.4414): every serve
//! accumulates per-region load (writer reads+writes plus session reads);
//! [`PartitionedDqServer::hotspot`] flags a region pulling more than a
//! factor above the mean.

use crate::clock::{FrameClock, SessionLiveness};
use crate::durability::DurableLog;
use crate::layout::MotionRecord;
use crate::npdq::NpdqEngine;
use crate::pdq::{PdqEngine, PdqResult};
use crate::region::RegionGrid;
use crate::service::{
    mailbox_bound, panic_message, publish_mailbox_hwm, record_wait, FrameDelta, FrameReport,
    FrameSink, Mailbox, NsiReport, ServeReport, SessionKind, SessionOutcome, SessionOutput,
    SessionPlan, SessionSpec, SinkVerdict,
};
use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use parking_lot::{Condvar, Mutex, RwLock};
use rtree::{EpochStats, NsiSegmentRecord, RTree, TreeReadRetry};
use std::collections::{BTreeMap, HashSet};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stkit::Interval;
use storage::{PageStore, RetryPolicy, StorageError};

/// One region's shared tree handle: epochs and the server itself hold
/// `Arc`s to the same locked tree, so a recut can hand trees off without
/// copying and old-epoch readers drain at their own pace.
type RegionTree<const D: usize, S> = Arc<RwLock<RTree<NsiSegmentRecord<D>, Arc<S>>>>;

/// A scheduled live recut: at the start of frame `at_frame` the grid is
/// recut into `target_regions` at equal-load quantiles of the load
/// measured so far, while sessions keep running.
#[derive(Clone, Copy, Debug)]
pub struct RecutPlan {
    /// Global frame at whose boundary the handoff happens (the new grid
    /// serves frames `at_frame..`). Must be strictly inside the run.
    pub at_frame: usize,
    /// Region count after the recut (>= 1).
    pub target_regions: usize,
}

impl RecutPlan {
    /// A recut at frame `at_frame` into `target_regions` regions.
    pub fn new(at_frame: usize, target_regions: usize) -> Self {
        RecutPlan {
            at_frame,
            target_regions,
        }
    }
}

/// Per-region tallies of one partitioned run.
#[derive(Clone, Debug, Default)]
pub struct RegionReport {
    /// The region's slab on the grid axis.
    pub span: Interval,
    /// Records this region's writer applied (a record straddling a seam
    /// counts once in every region that stores a replica).
    pub inserts_applied: usize,
    /// Node reads this region's writer performed in its write sections.
    pub writer_reads: u64,
    /// Node writes this region's writer performed in its write sections.
    pub writer_writes: u64,
    /// Session-side node reads attributed to this region's lanes.
    pub session_reads: u64,
    /// Whether this region's writer applied every batch clean.
    pub writer_outcome: SessionOutcome,
}

impl RegionReport {
    /// The load figure hotspot detection and recutting run on: every
    /// node touch the region cost the run, reader- or writer-side.
    pub fn load(&self) -> u64 {
        self.writer_reads + self.writer_writes + self.session_reads
    }
}

/// Outcome of one [`PartitionedDqServer::serve`] /
/// [`PartitionedDqServer::serve_serial`] run: the familiar single-tree
/// [`ServeReport`] (writer tallies summed over regions *and* epochs;
/// session outputs merged across lanes) plus the per-region breakdown of
/// the **final** epoch (the whole run when nothing recut — region
/// indices are not comparable across grids).
///
/// Note `base.inserts_applied` counts *physical* per-region inserts, so
/// it exceeds the batch record count when segments straddle seams.
/// Under the clock protocol sessions never absorb frames outside their
/// own window, so `Σ frame.stats == session.stats` holds here exactly
/// as it does for the single-tree server.
#[derive(Clone, Debug, Default)]
pub struct PartitionedServeReport {
    /// The run viewed as a single server (sessions in spec order).
    pub base: ServeReport,
    /// Per-region tallies of the final epoch, in grid order.
    pub regions: Vec<RegionReport>,
}

impl std::ops::Deref for PartitionedServeReport {
    type Target = ServeReport;
    fn deref(&self) -> &ServeReport {
        &self.base
    }
}

/// One lane's engine: the session's algorithm instantiated against one
/// region's tree.
enum LaneEngine<const D: usize> {
    Pdq(Box<PdqEngine<D>>),
    Npdq(Box<NpdqEngine<D>>),
}

/// One session's in-flight state: an engine per swept region, plus the
/// merge/dedup state that folds lane streams back into one.
struct LaneRun<'a, const D: usize> {
    index: usize,
    spec: &'a SessionSpec<D>,
    /// Contiguous region indices this session's trajectory sweeps.
    lanes: Range<usize>,
    engines: Vec<LaneEngine<D>>,
    /// PDQ cross-frame dedup: seam replicas deliver in the same frame in
    /// every lane (frame assignment depends only on overlap start), but
    /// the set keeps exactly-once robust without leaning on that. It
    /// also carries exactly-once across an epoch handoff, where fresh
    /// engines re-see everything still visible.
    delivered: HashSet<(u32, u32)>,
    out: SessionOutput,
    /// Node reads attributed per region (for the per-region identity),
    /// flushed into the epoch's shared tally before the final ack.
    region_reads: Vec<u64>,
    scratch: Vec<PdqResult<D>>,
    merge_pdq: Vec<(f64, u32, u32)>,
    merge_npdq: Vec<(u32, u32)>,
    /// Per-attempt NPDQ emission staging: a snapshot descent aborted by
    /// a version conflict retries wholesale, so emissions only reach the
    /// merge once the attempt completes.
    npdq_scratch: Vec<(u32, u32)>,
}

impl<'a, const D: usize> LaneRun<'a, D> {
    /// `trees[r]` is the read handle for region `r`: optimistic
    /// [`rtree::TreeReader`]s on the concurrent path, the same on the
    /// serial path (validation always passes there — no concurrent
    /// writer — so the code path stays identical).
    fn start<T: TreeReadRetry<NsiSegmentRecord<D>>>(
        index: usize,
        spec: &'a SessionSpec<D>,
        grid: &RegionGrid,
        trees: &[T],
    ) -> Self {
        let lanes = grid.route_rect(&spec.trajectory.swept_bounds());
        let engines = lanes
            .clone()
            .map(|r| match spec.kind {
                SessionKind::Pdq => LaneEngine::Pdq(Box::new(PdqEngine::start(
                    &trees[r],
                    spec.trajectory.clone(),
                ))),
                SessionKind::Npdq => LaneEngine::Npdq(Box::new(NpdqEngine::new())),
            })
            .collect();
        LaneRun {
            index,
            spec,
            lanes,
            engines,
            delivered: HashSet::new(),
            out: SessionOutput::default(),
            region_reads: vec![0; trees.len()],
            scratch: Vec::new(),
            merge_pdq: Vec::new(),
            merge_npdq: Vec::new(),
            npdq_scratch: Vec::new(),
        }
    }

    /// Re-route this session under a recut grid: fold the dying engines'
    /// high-water marks into the output, then build fresh engines per
    /// new lane. The delivered set and accumulated results survive, so
    /// objects the new engines re-discover (anything still visible) are
    /// suppressed — delivery stays exactly-once across the handoff.
    fn rebuild<T: TreeReadRetry<NsiSegmentRecord<D>>>(&mut self, grid: &RegionGrid, trees: &[T]) {
        for engine in &self.engines {
            match engine {
                LaneEngine::Pdq(pdq) => {
                    self.out.queue_hwm = self.out.queue_hwm.max(pdq.queue_hwm());
                }
                LaneEngine::Npdq(npdq) => {
                    self.out.discarded_subtrees += npdq.discarded_subtrees();
                }
            }
        }
        self.lanes = grid.route_rect(&self.spec.trajectory.swept_bounds());
        self.engines = self
            .lanes
            .clone()
            .map(|r| match self.spec.kind {
                SessionKind::Pdq => LaneEngine::Pdq(Box::new(PdqEngine::start(
                    &trees[r],
                    self.spec.trajectory.clone(),
                ))),
                SessionKind::Npdq => LaneEngine::Npdq(Box::new(NpdqEngine::new())),
            })
            .collect();
        self.region_reads = vec![0; trees.len()];
    }

    /// Hand the per-region read attribution to `add` and zero it (the
    /// region count changes across epochs, so attribution is flushed
    /// into each epoch's own tally before the handoff).
    fn flush_loads(&mut self, mut add: impl FnMut(usize, u64)) {
        for (r, c) in self.region_reads.iter_mut().enumerate() {
            if *c > 0 {
                add(r, *c);
                *c = 0;
            }
        }
    }

    /// Process global frame `k` across every lane: absorb `reports[li]`
    /// (this frame's broadcast for lane `li`), drain/execute in-schedule
    /// frames, then merge. Only the first lane error is returned (lanes
    /// process in ascending region order, so the choice is
    /// deterministic); the engines stay valid for retry next frame,
    /// exactly like the single-tree path.
    fn step_frame<T: TreeReadRetry<NsiSegmentRecord<D>>>(
        &mut self,
        trees: &[T],
        reports: &[Vec<NsiReport<D>>],
        k: usize,
    ) -> Result<Option<u64>, StorageError> {
        let in_schedule = match self.spec.kind {
            SessionKind::Pdq => k + 1 < self.spec.frame_times.len(),
            SessionKind::Npdq => k < self.spec.frame_times.len(),
        };
        if in_schedule {
            obs::trace(obs::TraceEvent::FrameStart {
                session: self.index as u32,
                frame: k as u32,
            });
        }
        let before_results = self.out.results.len();
        let started = Instant::now();
        let mut frame_stats = QueryStats::default();
        let mut first_err: Option<StorageError> = None;
        self.merge_pdq.clear();
        self.merge_npdq.clear();
        for (li, r) in self.lanes.clone().enumerate() {
            let tree = &trees[r];
            match &mut self.engines[li] {
                LaneEngine::Pdq(pdq) => {
                    for report in &reports[li] {
                        pdq.notify(tree, report);
                    }
                    if in_schedule {
                        let (t0, t1) = (self.spec.frame_times[k], self.spec.frame_times[k + 1]);
                        self.scratch.clear();
                        let res = pdq.try_drain_window_into(tree, t0, t1, &mut self.scratch);
                        for pr in &self.scratch {
                            self.merge_pdq.push((
                                pr.visibility.start().unwrap_or(f64::NEG_INFINITY),
                                pr.record.oid,
                                pr.record.seq,
                            ));
                        }
                        if let Err(e) = res {
                            first_err.get_or_insert(e);
                        }
                    }
                    let st = pdq.take_stats();
                    frame_stats += st;
                    self.region_reads[r] += st.disk_accesses;
                }
                LaneEngine::Npdq(npdq) => {
                    if in_schedule {
                        let t = self.spec.frame_times[k];
                        let q = SnapshotQuery::at_instant(self.spec.trajectory.window_at(t), t);
                        // Whole descent against one pinned version; an
                        // aborted attempt's emissions stay in the scratch.
                        let scratch = &mut self.npdq_scratch;
                        match tree.with_consistent(|view| {
                            scratch.clear();
                            npdq.try_execute(view, &q, t, |rec: &NsiSegmentRecord<D>| {
                                scratch.push(rec.ids());
                            })
                        }) {
                            Ok(st) => {
                                self.merge_npdq.extend(self.npdq_scratch.iter().copied());
                                frame_stats += st;
                                self.region_reads[r] += st.disk_accesses;
                            }
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
            }
        }
        // The seam merge. PDQ: order by the queue's own priority keys —
        // (visibility start, then object identity) — and deliver each
        // object once ever; a straddler drained by two lanes ties on the
        // full key, so which copy survives is immaterial. NPDQ: snapshot
        // per frame, ordered and deduplicated by identity within the
        // frame only.
        match self.spec.kind {
            SessionKind::Pdq => {
                self.merge_pdq.sort_unstable_by(|a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                });
                for &(_, oid, seq) in &self.merge_pdq {
                    if self.delivered.insert((oid, seq)) {
                        self.out.results.push((oid, seq));
                    }
                }
            }
            SessionKind::Npdq => {
                self.merge_npdq.sort_unstable();
                self.merge_npdq.dedup();
                self.out.results.extend(self.merge_npdq.iter().copied());
            }
        }
        let latency_ns = started.elapsed().as_nanos() as u64;
        self.out.stats += frame_stats;
        if !in_schedule {
            return match first_err {
                Some(e) => Err(e),
                None => Ok(None),
            };
        }
        let results = self.out.results.len() - before_results;
        self.out.frames.push(FrameReport {
            frame: k,
            results,
            latency_ns,
            stats: frame_stats,
        });
        obs::trace(obs::TraceEvent::FrameEnd {
            session: self.index as u32,
            frame: k as u32,
            results: results as u32,
            latency_ns,
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(Some(latency_ns)),
        }
    }

    fn finish(mut self) -> SessionOutput {
        for engine in &self.engines {
            match engine {
                LaneEngine::Pdq(pdq) => {
                    self.out.queue_hwm = self.out.queue_hwm.max(pdq.queue_hwm());
                }
                LaneEngine::Npdq(npdq) => {
                    self.out.discarded_subtrees += npdq.discarded_subtrees();
                }
            }
        }
        self.out
    }
}

/// Per-region writer tallies while a run is in flight.
#[derive(Clone, Default)]
struct RegionTally {
    applied: usize,
    reads: u64,
    writes: u64,
    outcome: SessionOutcome,
}

impl RegionTally {
    /// A failed region writer (full device) stops applying; see
    /// [`crate::service::DqServer`] — the same rule, per region.
    fn failed(&self) -> bool {
        matches!(self.outcome, SessionOutcome::Failed(_))
    }
}

/// Tallies of the durability participant (WAL commits + logical
/// checkpoints) over one partitioned run.
#[derive(Clone, Copy, Default)]
struct DurabilityTally {
    appends: u64,
    commit_ns: u64,
    checkpoints: u64,
}

/// Writer tallies folded over every epoch of a run (regions are not
/// comparable across recuts, so cross-epoch figures only exist summed).
#[derive(Default)]
struct RunTotals {
    applied: usize,
    reads: u64,
    writes: u64,
    outcome: SessionOutcome,
}

impl RunTotals {
    fn absorb(&mut self, tallies: &[RegionTally]) {
        for t in tallies {
            self.applied += t.applied;
            self.reads += t.reads;
            self.writes += t.writes;
            match &t.outcome {
                SessionOutcome::Ok => {}
                SessionOutcome::Degraded { errors } => {
                    for e in errors {
                        self.outcome.record_error(e.clone());
                    }
                }
                SessionOutcome::Failed(msg) => {
                    self.outcome = SessionOutcome::Failed(msg.clone());
                }
            }
        }
    }
}

/// One epoch of a partitioned run: a grid, its trees, one frame clock
/// per region, and the per-`(session, region)` mailboxes — everything
/// that must be replaced wholesale at a live recut.
struct Epoch<const D: usize, S: PageStore> {
    /// First global frame this epoch serves.
    start: usize,
    /// One past the last global frame this epoch serves.
    end: usize,
    grid: RegionGrid,
    trees: Vec<RegionTree<D, S>>,
    /// `clocks[r]` orders region `r`'s frames against its sessions.
    clocks: Vec<FrameClock>,
    /// `windows[r][i]`: session `i`'s attached window on region `r`'s
    /// clock — its global window clamped to this epoch, `None` when the
    /// session's lanes miss `r` or its window misses the epoch.
    windows: Vec<Vec<Option<(u64, u64)>>>,
    /// `lanes[i]`: the regions session `i`'s trajectory sweeps under
    /// this epoch's grid.
    lanes: Vec<Range<usize>>,
    /// `mailboxes[i][r]`: insert reports broadcast by region `r`'s
    /// writer for session `i` to absorb. Bounded by `mailbox_cap`.
    mailboxes: Vec<Vec<Mailbox<NsiReport<D>>>>,
    /// The one-batch mailbox bound (largest insert batch of the run; a
    /// region's routed slice can only be smaller).
    mailbox_cap: usize,
    /// Session-side node reads attributed per region, flushed in by
    /// each session before its final ack of the epoch (feeds recut
    /// loads and the final report).
    session_loads: Vec<AtomicU64>,
}

/// The ordered list of published epochs. Sessions wait here for epoch
/// `e` to exist; the coordinator publishes each next epoch only after
/// the previous one drained.
struct EpochGate<const D: usize, S: PageStore> {
    published: Mutex<Vec<Arc<Epoch<D, S>>>>,
    cv: Condvar,
}

impl<const D: usize, S: PageStore> EpochGate<D, S> {
    fn new() -> Self {
        EpochGate {
            published: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, ep: Arc<Epoch<D, S>>) {
        self.published.lock().push(ep);
        self.cv.notify_all();
    }

    fn wait_for(&self, e: usize) -> Arc<Epoch<D, S>> {
        let mut g = self.published.lock();
        while g.len() <= e {
            self.cv.wait(&mut g);
        }
        Arc::clone(&g[e])
    }

    fn snapshot(&self) -> Vec<Arc<Epoch<D, S>>> {
        self.published.lock().clone()
    }
}

/// Build one epoch: route every plan's lanes under `grid`, clamp every
/// plan's window to `[start, end)`, and give each region a clock that
/// knows exactly which sessions are attached to it.
#[allow(clippy::too_many_arguments)]
fn make_epoch<const D: usize, S: PageStore>(
    plans: &[SessionPlan<D>],
    plan_windows: &[Option<(u64, u64)>],
    grid: RegionGrid,
    trees: Vec<RegionTree<D, S>>,
    live: &Arc<SessionLiveness>,
    start: usize,
    end: usize,
    durable: bool,
    mailbox_cap: usize,
) -> Arc<Epoch<D, S>> {
    let n = grid.len();
    let lanes: Vec<Range<usize>> = plans
        .iter()
        .map(|p| grid.route_rect(&p.spec.trajectory.swept_bounds()))
        .collect();
    let windows: Vec<Vec<Option<(u64, u64)>>> = (0..n)
        .map(|r| {
            plan_windows
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    w.and_then(|(f, l)| {
                        let f = f.max(start as u64);
                        let l = l.min(end.saturating_sub(1) as u64);
                        (lanes[i].contains(&r) && f <= l).then_some((f, l))
                    })
                })
                .collect()
        })
        .collect();
    let clocks: Vec<FrameClock> = (0..n)
        .map(|r| FrameClock::new(windows[r].clone(), Arc::clone(live), start as u64, durable))
        .collect();
    let mailboxes: Vec<Vec<Mailbox<NsiReport<D>>>> = plans
        .iter()
        .map(|_| (0..n).map(|_| Mailbox::new()).collect())
        .collect();
    let session_loads: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    Arc::new(Epoch {
        start,
        end,
        grid,
        trees,
        clocks,
        windows,
        lanes,
        mailboxes,
        mailbox_cap,
        session_loads,
    })
}

/// Epoch boundaries of a run: `[0, recut frames..., steps]`. Recut
/// frames must be strictly increasing and strictly inside the run.
fn epoch_bounds(recuts: &[RecutPlan], steps: usize) -> Vec<usize> {
    let mut bounds = vec![0];
    for rp in recuts {
        assert!(
            rp.at_frame > *bounds.last().expect("non-empty") && rp.at_frame < steps,
            "recut frames must be strictly increasing and inside the run"
        );
        assert!(rp.target_regions >= 1, "recut needs at least one region");
        bounds.push(rp.at_frame);
    }
    bounds.push(steps);
    bounds
}

/// The slice of `batch` that routes to region `r` under `grid`, in
/// batch order.
fn route_slice<const D: usize>(
    grid: &RegionGrid,
    r: usize,
    batch: &[(NsiSegmentRecord<D>, f64)],
) -> Vec<(NsiSegmentRecord<D>, f64)> {
    batch
        .iter()
        .filter(|(rec, _)| grid.route_rect(&rec.seg.spatial_bbox()).contains(&r))
        .copied()
        .collect()
}

/// Every record resident across `trees`, deduplicated by `(oid, seq)`
/// so seam replicas collapse to one copy — the shared idiom of recuts
/// and logical checkpoints.
fn dedup_from<const D: usize, S: PageStore>(
    trees: &[RegionTree<D, S>],
) -> BTreeMap<(u32, u32), NsiSegmentRecord<D>> {
    let mut records = BTreeMap::new();
    for lock in trees {
        lock.read().scan(|rec| {
            records.insert(rec.ids(), *rec);
        });
    }
    records
}

/// The grid-axis extent spanned by `records` (degenerate sets get a
/// unit slab so `RegionGrid::recut` always has room to cut).
fn record_bounds<const D: usize>(
    axis: usize,
    records: &BTreeMap<(u32, u32), NsiSegmentRecord<D>>,
) -> Interval {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for rec in records.values() {
        let e = rec.seg.spatial_bbox().extent(axis);
        lo = lo.min(e.lo);
        hi = hi.max(e.hi);
    }
    if lo < hi {
        Interval::new(lo, hi)
    } else if lo.is_finite() {
        Interval::new(lo - 0.5, lo + 0.5)
    } else {
        Interval::new(0.0, 1.0)
    }
}

/// Build fresh region trees under `grid` from a deduplicated record
/// set, routing seam straddlers into every touching region.
fn build_regions<const D: usize, S: PageStore>(
    grid: &RegionGrid,
    records: &BTreeMap<(u32, u32), NsiSegmentRecord<D>>,
    make_tree: &mut dyn FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
) -> Vec<RegionTree<D, S>> {
    let mut trees: Vec<RTree<NsiSegmentRecord<D>, S>> = (0..grid.len())
        .map(|r| {
            let t = make_tree(r);
            assert!(t.is_empty(), "make_tree must return empty trees");
            t
        })
        .collect();
    for rec in records.values() {
        for r in grid.route_rect(&rec.seg.spatial_bbox()) {
            trees[r].insert(*rec, rec.seg.t.lo);
        }
    }
    trees
        .into_iter()
        .map(|t| Arc::new(RwLock::new(t.map_store(Arc::new))))
        .collect()
}

/// Install a logical checkpoint of the deduplicated record set of
/// `trees`. Callers fence the writers first (serial execution, or the
/// committed-watermark hold in the durability loop), so the read-locked
/// scans see a quiescent frame boundary.
fn checkpoint_from<const D: usize, S: PageStore>(trees: &[RegionTree<D, S>], log: &DurableLog) {
    let records: Vec<NsiSegmentRecord<D>> = dedup_from(trees).into_values().collect();
    log.checkpoint_logical(&records);
}

/// Optimistic-read counters summed over every region's tree.
fn stats_of<const D: usize, S: PageStore>(trees: &[RegionTree<D, S>]) -> EpochStats {
    let mut total = EpochStats::default();
    for lock in trees {
        total += lock.read().epoch_stats();
    }
    total
}

/// A serving instance owning one NSI tree *per region*.
///
/// ```
/// use mobiquery::{PartitionedDqServer, RegionGrid, SessionKind, SessionSpec, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let preload = vec![NsiSegmentRecord::new(
///     7, 0, Interval::new(0.0, 100.0), [5.5, 0.5], [5.5, 0.5],
/// )];
/// let server = PartitionedDqServer::build(
///     RegionGrid::from_cuts(0, vec![4.0, 8.0]),
///     &preload,
///     |_region| RTree::new(Pager::new(), RTreeConfig::default()),
/// );
/// let spec = SessionSpec {
///     kind: SessionKind::Pdq,
///     trajectory: Trajectory::linear(
///         Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///         [1.0, 0.0], Interval::new(0.0, 10.0), 2),
///     frame_times: (0..=10).map(f64::from).collect(),
/// };
/// let report = server.serve(&[spec], &[]);
/// assert_eq!(report.sessions[0].results, vec![(7, 0)]);
/// ```
pub struct PartitionedDqServer<const D: usize, S: PageStore> {
    grid: RegionGrid,
    /// One tree per region; stores are `Arc`-wrapped so each session can
    /// hold per-region optimistic readers without `S: Clone`, and the
    /// locks are `Arc`-wrapped so live epochs share them with `&self`.
    regions: Vec<RegionTree<D, S>>,
    /// Accumulated per-region load across serves (feeds hotspot
    /// detection and recutting).
    loads: Mutex<Vec<u64>>,
    metrics: Option<Arc<obs::MetricsRegistry>>,
    writer_retry: RetryPolicy,
    /// When set, every frame's batch is group-committed to the WAL
    /// before any region applies it, and *logical* checkpoints (the
    /// deduplicated record set, not per-region page images) are
    /// installed when due. Survives [`Self::rebalance`]: the logical
    /// form is partition-independent.
    durability: Option<Arc<DurableLog>>,
}

impl<const D: usize, S: PageStore> PartitionedDqServer<D, S> {
    /// Build one tree per region (each from `make_tree`, which must
    /// return an *empty* tree — typically over its own pool slice) and
    /// route `preload` into every region its segment's spatial bbox
    /// overlaps (each inserted at its segment's start time).
    pub fn build(
        grid: RegionGrid,
        preload: &[NsiSegmentRecord<D>],
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) -> Self {
        let n = grid.len();
        let mut trees: Vec<RTree<NsiSegmentRecord<D>, S>> = (0..n)
            .map(|r| {
                let t = make_tree(r);
                assert!(t.is_empty(), "make_tree must return empty trees");
                t
            })
            .collect();
        for rec in preload {
            for r in grid.route_rect(&rec.seg.spatial_bbox()) {
                trees[r].insert(*rec, rec.seg.t.lo);
            }
        }
        let loads = Mutex::new(vec![0; n]);
        PartitionedDqServer {
            grid,
            regions: trees
                .into_iter()
                .map(|t| Arc::new(RwLock::new(t.map_store(Arc::new))))
                .collect(),
            loads,
            metrics: None,
            writer_retry: RetryPolicy::default(),
            durability: None,
        }
    }

    /// Record serving metrics into `registry` (builder-style): the
    /// single-tree run counters (including `service.clock_wait_ns` and
    /// `service.frame_lag`) plus per-region labels
    /// `service.region{r}.{inserts,writer.reads,writer.writes,session.reads,load}`.
    pub fn with_metrics(mut self, registry: Arc<obs::MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// How each region's writer treats transient insert failures
    /// (builder-style); see [`crate::service::DqServer::with_writer_retry`].
    pub fn with_writer_retry(mut self, policy: RetryPolicy) -> Self {
        self.writer_retry = policy;
        self
    }

    /// Make the write path durable (builder-style): each frame's whole
    /// batch is appended to `log`'s WAL as one group-committed record
    /// *before* any region writer touches a tree page (the per-region
    /// clocks' `committed` watermark publishes exactly that fact), and
    /// when a checkpoint falls due the deduplicated record set of every
    /// region is installed as a [`crate::durability::Checkpoint::Logical`]
    /// checkpoint. Recovery rebuilds via [`Self::build`] from the
    /// checkpoint records plus the replayed frames — result-equivalent
    /// to the crashed server, under any grid.
    ///
    /// Unlike the single-tree server no `SnapshotSource` bound is
    /// needed: logical checkpoints serialize records, not pages.
    pub fn with_durability(mut self, log: Arc<DurableLog>) -> Self {
        self.durability = Some(log);
        self
    }

    /// The current partition function.
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// Accumulated per-region loads (across every serve since the last
    /// rebalance).
    pub fn region_loads(&self) -> Vec<u64> {
        self.loads.lock().clone()
    }

    /// Records resident per region. Seam replicas count once per region,
    /// so the sum can exceed the distinct record count.
    pub fn region_record_counts(&self) -> Vec<u64> {
        self.regions.iter().map(|t| t.read().len()).collect()
    }

    /// Run a value out of region `r`'s tree under its read lock.
    pub fn with_region_tree<T>(
        &self,
        r: usize,
        f: impl FnOnce(&RTree<NsiSegmentRecord<D>, Arc<S>>) -> T,
    ) -> T {
        f(&self.regions[r].read())
    }

    /// The region (if any) whose accumulated load exceeds `factor` times
    /// the mean — the rebalance trigger. A single-region grid has no
    /// hotspot (there is nothing to shed load to).
    pub fn hotspot(&self, factor: f64) -> Option<usize> {
        let loads = self.loads.lock();
        if loads.len() < 2 {
            return None;
        }
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let (r, &max) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .expect("non-empty");
        (max as f64 > factor * mean && mean > 0.0).then_some(r)
    }

    /// Recut the grid into `target_regions` at equal-load quantiles of
    /// the accumulated per-region loads and rebuild the region trees
    /// (between serves — callers hold `&mut self`, so no epoch is in
    /// flight). The same handoff [`RecutPlan`] performs mid-run, minus
    /// the live sessions: records are collected from every region,
    /// deduplicated by `(oid, seq)` (seam replicas collapse), then
    /// re-routed under the new cuts; load tallies reset.
    pub fn rebalance(
        &mut self,
        target_regions: usize,
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) {
        let records = dedup_from(&self.regions);
        let grid = {
            let loads = self.loads.lock();
            self.grid
                .recut(record_bounds(self.grid.axis(), &records), &loads, target_regions)
        };
        self.regions = build_regions(&grid, &records, &mut make_tree);
        self.grid = grid;
        *self.loads.lock() = vec![0; self.grid.len()];
    }

    /// Take the base checkpoint covering the preloaded regions, so
    /// recovery always has a record set to replay onto (idempotent:
    /// skipped once the log holds any checkpoint).
    fn ensure_initial_checkpoint(&self, log: &DurableLog) {
        if !log.has_checkpoint() {
            checkpoint_from(&self.regions, log);
        }
    }

    /// Checkpoint the current region trees and truncate the WAL now,
    /// regardless of the cadence counter. Returns `false` on a
    /// non-durable server. The network front door calls this on
    /// graceful shutdown so recovery after a drain replays zero records.
    pub fn checkpoint_now(&self) -> bool {
        match &self.durability {
            Some(log) => {
                checkpoint_from(&self.regions, log);
                true
            }
            None => false,
        }
    }

    /// Global frame steps for a run (same rule as the single-tree
    /// server: enough for every plan's window and every insert batch).
    fn step_count(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> usize {
        plans
            .iter()
            .filter_map(|p| p.window().map(|(_, last)| last as usize + 1))
            .max()
            .unwrap_or(0)
            .max(inserts.len())
    }

    /// Apply one region's routed slice under that region's write lock —
    /// the single-tree writer's retry discipline, per region: transient
    /// failures back off with the lock *released*, exhausted or
    /// unrecoverable records are skipped into the tally's outcome.
    fn apply_region_batch(
        &self,
        tree: &RwLock<RTree<NsiSegmentRecord<D>, Arc<S>>>,
        batch: &[(NsiSegmentRecord<D>, f64)],
        reports: &mut Vec<NsiReport<D>>,
        w: &mut RegionTally,
        hold_hist: Option<&Arc<obs::Histogram>>,
    ) {
        let mut idx = 0;
        let mut attempt = 0u32;
        while idx < batch.len() {
            let backoff = {
                let mut tree = tree.write();
                let held = Instant::now();
                let before = tree.level_counters().snapshot();
                let mut backoff = None;
                while idx < batch.len() {
                    let (rec, now) = &batch[idx];
                    match tree.try_insert(*rec, *now) {
                        Ok(report) => {
                            reports.push(report);
                            w.applied += 1;
                            idx += 1;
                            attempt = 0;
                        }
                        Err(e)
                            if e.is_transient()
                                && attempt + 1 < self.writer_retry.max_attempts =>
                        {
                            attempt += 1;
                            backoff = Some(self.writer_retry.backoff(attempt));
                            break;
                        }
                        // A full device fails the region's writer for the
                        // rest of the run (same rule as the single-tree
                        // server): skipping ahead would drop records
                        // silently, and retrying a full disk is futile.
                        Err(e @ StorageError::Full { .. }) => {
                            w.outcome = SessionOutcome::Failed(format!("writer stopped: {e}"));
                            idx = batch.len();
                        }
                        Err(e) => {
                            w.outcome.record_error(e);
                            idx += 1;
                            attempt = 0;
                        }
                    }
                }
                let delta = tree.level_counters().snapshot() - before;
                w.reads += delta.total_reads();
                w.writes += delta.total_writes();
                if let Some(h) = hold_hist {
                    h.record(held.elapsed().as_nanos() as u64);
                }
                backoff
            };
            if let Some(pause) = backoff {
                std::thread::sleep(pause);
            }
        }
    }

    /// Region `r`'s writer over one epoch: per frame, wait for the WAL
    /// commit (durable runs) and for every attached session's permit,
    /// apply the routed slice, broadcast to in-window live PDQ
    /// mailboxes, and advance `r`'s `applied` watermark — every frame,
    /// batch or not, so sessions of an idle or failed region never
    /// stall.
    #[allow(clippy::too_many_arguments)]
    fn writer_loop(
        &self,
        ep: &Epoch<D, S>,
        r: usize,
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        is_pdq: &[bool],
        live: &SessionLiveness,
        any_failed: &AtomicBool,
        hold_hist: Option<&Arc<obs::Histogram>>,
        wait_hist: &Option<Arc<obs::Histogram>>,
        lag_gauge: Option<&Arc<obs::Gauge>>,
    ) -> RegionTally {
        let mut w = RegionTally::default();
        let mut reports: Vec<NsiReport<D>> = Vec::new();
        let clock = &ep.clocks[r];
        for k in ep.start..ep.end {
            let ku = k as u64;
            if let Some(batch) = inserts.get(k) {
                let routed = route_slice(&ep.grid, r, batch);
                if !routed.is_empty() && !w.failed() {
                    // WAL before any page write, then flow control:
                    // every live attached session has acked past `k`
                    // (finished frame `k - 1`, or — at its join frame —
                    // built its engines). Frames that route nothing
                    // here skip both waits, so the ack check must not
                    // be window-scoped (a later non-empty batch would
                    // slip past a still-reading session).
                    record_wait(wait_hist, clock.wait_committed(ku));
                    record_wait(wait_hist, clock.wait_ready(ku));
                    reports.clear();
                    self.apply_region_batch(&ep.trees[r], &routed, &mut reports, &mut w, hold_hist);
                    if w.failed() {
                        any_failed.store(true, Ordering::Relaxed);
                    }
                    // Broadcast outside the write lock; only to live
                    // sessions attached to this region whose window
                    // covers this frame — nobody else will ever drain
                    // the mailbox.
                    for (i, win) in ep.windows[r].iter().enumerate() {
                        if is_pdq[i]
                            && win.is_some_and(|(f, l)| f <= ku && ku <= l)
                            && live.is_live(i)
                        {
                            ep.mailboxes[i][r].push_all(&reports, ep.mailbox_cap);
                        }
                    }
                    obs::trace(obs::TraceEvent::RegionRoute {
                        region: r as u32,
                        records: routed.len() as u32,
                    });
                }
            }
            let lag = clock.advance_applied(ku + 1);
            if let Some(g) = lag_gauge {
                g.record_max(lag as i64);
            }
            obs::trace(obs::TraceEvent::FrameAdvance {
                region: r as u32,
                frame: k as u32,
                watermark: obs::Watermark::Applied,
            });
        }
        w
    }

    /// The durability participant (one per durable run; durable runs
    /// are single-epoch): per frame, fence-and-checkpoint when due,
    /// group-commit the batch, then advance every region's `committed`
    /// watermark. The fence waits for every region's `applied` to reach
    /// the frame boundary while `committed` still withholds the frame's
    /// batch — trees hold exactly the batches the WAL's committed
    /// prefix holds, a consistent cut under any interleaving.
    fn durability_loop(
        &self,
        ep: &Epoch<D, S>,
        log: &DurableLog,
        steps: usize,
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        any_failed: &AtomicBool,
        wait_hist: &Option<Arc<obs::Histogram>>,
    ) -> DurabilityTally {
        let mut t = DurabilityTally::default();
        for k in 0..steps {
            let ku = k as u64;
            if let Some(batch) = inserts.get(k) {
                // Never checkpoint once any region's writer has failed:
                // truncation would drop committed records the failed
                // tree never absorbed.
                if !any_failed.load(Ordering::Relaxed) && log.due_for_checkpoint() {
                    for c in &ep.clocks {
                        record_wait(wait_hist, c.wait_applied(ku));
                    }
                    checkpoint_from(&ep.trees, log);
                    t.checkpoints += 1;
                }
                let committed = Instant::now();
                log.commit_frame(ku, batch);
                t.appends += 1;
                t.commit_ns += committed.elapsed().as_nanos() as u64;
            }
            for (r, c) in ep.clocks.iter().enumerate() {
                c.advance_committed(ku + 1);
                obs::trace(obs::TraceEvent::FrameAdvance {
                    region: r as u32,
                    frame: k as u32,
                    watermark: obs::Watermark::Committed,
                });
            }
        }
        // A checkpoint that came due on the run's last commits.
        if !any_failed.load(Ordering::Relaxed) && log.due_for_checkpoint() {
            for c in &ep.clocks {
                record_wait(wait_hist, c.wait_applied(steps as u64));
            }
            checkpoint_from(&ep.trees, log);
            t.checkpoints += 1;
        }
        t
    }

    /// One session's thread over the whole run: walk the epochs its
    /// window intersects, (re)build lane engines at each handoff, and
    /// inside an epoch run the clock protocol — wait `applied`, drain
    /// mailboxes, step, ack. Failure at any point detaches the session
    /// from its lane clocks and keeps its results so far.
    #[allow(clippy::too_many_arguments)]
    fn session_loop(
        i: usize,
        plan: &SessionPlan<D>,
        epoch_count: usize,
        gate: &EpochGate<D, S>,
        sink: Option<&dyn FrameSink>,
        drain_hist: &Option<Arc<obs::Histogram>>,
        wait_hist: &Option<Arc<obs::Histogram>>,
    ) -> SessionOutput {
        let Some((gf, gl)) = plan.window() else {
            // Never scheduled: no engines, no clock attachment anywhere.
            return SessionOutput::default();
        };
        let mut run: Option<LaneRun<'_, D>> = None;
        let mut failure: Option<SessionOutcome> = None;
        let mut started: Option<Instant> = None;
        'epochs: for e in 0..epoch_count {
            let ep = gate.wait_for(e);
            if (ep.start as u64) > gl {
                break;
            }
            let f = gf.max(ep.start as u64);
            let l = gl.min(ep.end.saturating_sub(1) as u64);
            if f > l {
                continue;
            }
            let lanes = ep.lanes[i].clone();
            // Wait for the join/handoff boundary on every lane: trees
            // hold exactly state_{f-1} (the writers withhold batch `f`
            // until our un-acked permit clears), so the engines build
            // against precisely what the serial reference shows them.
            for r in lanes.clone() {
                record_wait(wait_hist, ep.clocks[r].wait_applied(f));
            }
            // Latch-free read path: every frame descends through these
            // optimistic readers, never a read lock.
            let readers: Vec<_> = ep.trees.iter().map(|t| t.read().reader()).collect();
            if started.is_none() {
                started = Some(Instant::now());
            }
            let prep = match &mut run {
                None => catch_unwind(AssertUnwindSafe(|| {
                    LaneRun::start(i, &plan.spec, &ep.grid, &readers)
                }))
                .map(Some),
                Some(r0) => catch_unwind(AssertUnwindSafe(|| {
                    r0.rebuild(&ep.grid, &readers);
                    None
                })),
            };
            match prep {
                Ok(Some(r0)) => run = Some(r0),
                Ok(None) => {}
                Err(p) => {
                    let msg = panic_message(p);
                    match &mut run {
                        Some(r0) => r0.out.outcome = SessionOutcome::Failed(msg),
                        None => failure = Some(SessionOutcome::Failed(msg)),
                    }
                    for r in lanes.clone() {
                        ep.clocks[r].detach(i);
                    }
                    break 'epochs;
                }
            }
            for r in lanes.clone() {
                ep.clocks[r].ack(i, f + 1);
            }
            let r0 = run.as_mut().expect("engines exist past prep");
            for k in f..=l {
                for r in lanes.clone() {
                    record_wait(wait_hist, ep.clocks[r].wait_applied(k + 1));
                }
                let reports: Vec<Vec<NsiReport<D>>> = lanes
                    .clone()
                    .map(|r| ep.mailboxes[i][r].take())
                    .collect();
                let results_before = r0.out.results.len();
                let frames_before = r0.out.frames.len();
                // Contain panics to the engine work alone; the clock
                // calls stay outside so a caught panic can't corrupt
                // the frame protocol.
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    r0.step_frame(&readers, &reports, k as usize)
                }));
                match stepped {
                    Ok(Ok(Some(ns))) => {
                        if let Some(h) = drain_hist {
                            h.record(ns);
                        }
                    }
                    Ok(Ok(None)) => {}
                    Ok(Err(e)) => r0.out.outcome.record_error(e),
                    Err(p) => {
                        // Dead engine: keep the results so far, flush
                        // the read attribution, release the writers.
                        r0.out.outcome = SessionOutcome::Failed(panic_message(p));
                        r0.flush_loads(|r, c| {
                            ep.session_loads[r].fetch_add(c, Ordering::Relaxed);
                        });
                        for r in lanes.clone() {
                            ep.clocks[r].detach(i);
                        }
                        break 'epochs;
                    }
                }
                if r0.out.frames.len() > frames_before {
                    if let Some(sink) = sink {
                        let f = r0.out.frames.last().expect("frame just reported");
                        let delta = FrameDelta {
                            session: i,
                            frame: f.frame,
                            results: &r0.out.results[results_before..],
                            latency_ns: f.latency_ns,
                        };
                        if sink.on_frame(&delta) == SinkVerdict::Detach {
                            // Evicted by its consumer: same exit as a
                            // mid-run failure — flush attribution, keep
                            // the results so far, release the writers.
                            r0.out.outcome =
                                SessionOutcome::Failed("detached by frame sink".into());
                            r0.flush_loads(|r, c| {
                                ep.session_loads[r].fetch_add(c, Ordering::Relaxed);
                            });
                            for r in lanes.clone() {
                                ep.clocks[r].detach(i);
                            }
                            break 'epochs;
                        }
                    }
                }
                if !plan.frame_delay.is_zero() {
                    std::thread::sleep(plan.frame_delay);
                }
                if k == l {
                    // Last frame of this epoch: flush before the final
                    // ack, so the coordinator's drain sees the loads.
                    r0.flush_loads(|r, c| {
                        ep.session_loads[r].fetch_add(c, Ordering::Relaxed);
                    });
                }
                for r in lanes.clone() {
                    ep.clocks[r].ack(i, k + 2);
                }
            }
            if l == gl {
                // Schedule complete: detach so no writer ever waits on
                // this slot again (later epochs never attach it — the
                // window clamp comes up empty).
                for r in lanes.clone() {
                    ep.clocks[r].detach(i);
                }
            }
        }
        let mut out = match (run, failure) {
            (Some(r0), _) => r0.finish(),
            (None, Some(outcome)) => SessionOutput {
                outcome,
                ..SessionOutput::default()
            },
            (None, None) => SessionOutput::default(),
        };
        if let Some(s) = started {
            out.wall_ns = s.elapsed().as_nanos() as u64;
        }
        out
    }

    /// The concurrent serve: one writer thread per region per epoch, one
    /// thread per session for the whole run, plus (durable runs) one
    /// durability thread — all ordered by the per-region [`FrameClock`]s,
    /// no global barrier anywhere. The coordinator (this thread) performs
    /// the epoch handoffs: join an epoch's writers, drain its clocks,
    /// recut, publish the next epoch through the [`EpochGate`].
    ///
    /// Returns the report plus — when a recut happened — the final grid
    /// and trees for the caller to adopt.
    #[allow(clippy::type_complexity)]
    fn serve_clocked(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        recuts: &[RecutPlan],
        mut make_tree: Option<&mut dyn FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>>,
        sinks: &[Option<&dyn FrameSink>],
    ) -> (
        PartitionedServeReport,
        Option<(RegionGrid, Vec<RegionTree<D, S>>)>,
    )
    where
        S: Sync + Send,
    {
        let steps = self.step_count(plans, inserts);
        let mailbox_cap = mailbox_bound(inserts);
        let bounds = epoch_bounds(recuts, steps);
        let epoch_count = bounds.len() - 1;
        let durable = self.durability.as_deref();
        assert!(
            epoch_count == 1 || durable.is_none(),
            "live recuts require a non-durable server"
        );
        if let Some(log) = durable {
            self.ensure_initial_checkpoint(log);
        }
        let plan_windows: Vec<Option<(u64, u64)>> = plans.iter().map(|p| p.window()).collect();
        let is_pdq: Vec<bool> = plans
            .iter()
            .map(|p| matches!(p.spec.kind, SessionKind::Pdq))
            .collect();
        let live = SessionLiveness::new(plans.len());
        let any_failed = AtomicBool::new(false);
        let gate = EpochGate::new();
        let ep0 = make_epoch(
            plans,
            &plan_windows,
            self.grid.clone(),
            self.regions.iter().map(Arc::clone).collect(),
            &live,
            0,
            bounds[1],
            durable.is_some(),
            mailbox_cap,
        );
        let mut baselines = vec![stats_of(&ep0.trees)];
        gate.publish(Arc::clone(&ep0));

        let drain_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));
        let wait_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.clock_wait_ns"));
        let lag_gauge = self.metrics.as_ref().map(|m| m.gauge("service.frame_lag"));

        let mut epoch_tallies: Vec<Vec<RegionTally>> = Vec::new();
        let mut dur = DurabilityTally::default();
        let outputs: Vec<SessionOutput> = std::thread::scope(|scope| {
            let gate_ref = &gate;
            let session_handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    let drain = drain_hist.clone();
                    let wait = wait_hist.clone();
                    let sink = sinks.get(i).copied().flatten();
                    scope.spawn(move || {
                        Self::session_loop(i, plan, epoch_count, gate_ref, sink, &drain, &wait)
                    })
                })
                .collect();

            let mut dur_handle = None;
            for e in 0..epoch_count {
                let ep = gate.wait_for(e);
                if e == 0 {
                    if let Some(log) = durable {
                        let ep = Arc::clone(&ep);
                        let wait = wait_hist.clone();
                        let any_failed = &any_failed;
                        dur_handle = Some(scope.spawn(move || {
                            self.durability_loop(&ep, log, steps, inserts, any_failed, &wait)
                        }));
                    }
                }
                let writer_handles: Vec<_> = (0..ep.grid.len())
                    .map(|r| {
                        let ep = Arc::clone(&ep);
                        let hold = hold_hist.clone();
                        let wait = wait_hist.clone();
                        let lag = lag_gauge.clone();
                        let live = &live;
                        let any_failed = &any_failed;
                        let is_pdq = &is_pdq;
                        scope.spawn(move || {
                            self.writer_loop(
                                &ep,
                                r,
                                inserts,
                                is_pdq,
                                live,
                                any_failed,
                                hold.as_ref(),
                                &wait,
                                lag.as_ref(),
                            )
                        })
                    })
                    .collect();
                let tallies: Vec<RegionTally> = writer_handles
                    .into_iter()
                    .map(|h| h.join().expect("region writer panicked"))
                    .collect();
                if e + 1 < epoch_count {
                    // Epoch handoff: every live session has fully left
                    // this epoch (final acks past `end`), so loads and
                    // tree contents are settled.
                    for c in &ep.clocks {
                        c.wait_drained();
                    }
                    let loads: Vec<u64> = (0..ep.grid.len())
                        .map(|r| {
                            ep.session_loads[r].load(Ordering::Relaxed)
                                + tallies[r].reads
                                + tallies[r].writes
                        })
                        .collect();
                    let records = dedup_from(&ep.trees);
                    let new_grid = ep.grid.recut(
                        record_bounds(ep.grid.axis(), &records),
                        &loads,
                        recuts[e].target_regions,
                    );
                    let make = make_tree.as_deref_mut().expect("recuts require make_tree");
                    let new_trees = build_regions(&new_grid, &records, make);
                    baselines.push(stats_of(&new_trees));
                    gate.publish(make_epoch(
                        plans,
                        &plan_windows,
                        new_grid,
                        new_trees,
                        &live,
                        bounds[e + 1],
                        bounds[e + 2],
                        false,
                        mailbox_cap,
                    ));
                }
                epoch_tallies.push(tallies);
            }
            if let Some(h) = dur_handle {
                dur = h.join().expect("durability thread panicked");
            }
            session_handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(p) => SessionOutput {
                        outcome: SessionOutcome::Failed(panic_message(p)),
                        ..SessionOutput::default()
                    },
                })
                .collect()
        });

        let published = gate.snapshot();
        let deepest = published
            .iter()
            .flat_map(|ep| ep.mailboxes.iter().flatten().map(Mailbox::hwm))
            .max()
            .unwrap_or(0);
        publish_mailbox_hwm(&self.metrics, deepest);
        let mut retries = EpochStats::default();
        for (e, ep) in published.iter().enumerate() {
            retries += stats_of(&ep.trees) - baselines[e];
        }
        let mut totals = RunTotals::default();
        for tallies in &epoch_tallies {
            totals.absorb(tallies);
        }
        let final_tallies = epoch_tallies.pop().expect("at least one epoch");
        let final_ep = published.last().expect("at least one epoch");
        let final_loads: Vec<u64> = final_ep
            .session_loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect();
        let report = self.finish_report(
            steps,
            outputs,
            &final_ep.grid,
            final_tallies,
            &final_loads,
            totals,
            dur,
            retries,
        );
        let final_state =
            (epoch_count > 1).then(|| (final_ep.grid.clone(), final_ep.trees.clone()));
        (report, final_state)
    }

    /// Single-threaded reference for the clocked serve: the same epoch
    /// schedule, frame interleaving (WAL commit → regions ascending →
    /// sessions ascending) and handoff rebuilds, with no threads and no
    /// clocks. [`Self::serve_plans`] must match this bit-for-bit.
    #[allow(clippy::type_complexity)]
    fn serve_serial_clocked(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        recuts: &[RecutPlan],
        mut make_tree: Option<&mut dyn FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>>,
    ) -> (
        PartitionedServeReport,
        Option<(RegionGrid, Vec<RegionTree<D, S>>)>,
    ) {
        let steps = self.step_count(plans, inserts);
        let bounds = epoch_bounds(recuts, steps);
        let epoch_count = bounds.len() - 1;
        let durable = self.durability.as_deref();
        assert!(
            epoch_count == 1 || durable.is_none(),
            "live recuts require a non-durable server"
        );
        if let Some(log) = durable {
            self.ensure_initial_checkpoint(log);
        }
        let plan_windows: Vec<Option<(u64, u64)>> = plans.iter().map(|p| p.window()).collect();
        let is_pdq: Vec<bool> = plans
            .iter()
            .map(|p| matches!(p.spec.kind, SessionKind::Pdq))
            .collect();
        let drain_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));

        let mut grid = self.grid.clone();
        let mut trees: Vec<RegionTree<D, S>> = self.regions.iter().map(Arc::clone).collect();
        let mut runs: Vec<Option<Result<LaneRun<'_, D>, SessionOutcome>>> =
            plans.iter().map(|_| None).collect();
        let mut started: Vec<Option<Instant>> = vec![None; plans.len()];
        let mut dur = DurabilityTally::default();
        let mut totals = RunTotals::default();
        let mut epoch_meta: Vec<(Vec<RegionTree<D, S>>, EpochStats)> = Vec::new();
        let mut final_tallies: Vec<RegionTally> = Vec::new();
        let mut final_loads: Vec<u64> = vec![0; grid.len()];
        let mut final_grid = grid.clone();

        for e in 0..epoch_count {
            let (start, end) = (bounds[e], bounds[e + 1]);
            let baseline = stats_of(&trees);
            let mut tallies: Vec<RegionTally> = vec![RegionTally::default(); grid.len()];
            let mut session_loads: Vec<u64> = vec![0; grid.len()];
            let wins: Vec<Option<(u64, u64)>> = plan_windows
                .iter()
                .map(|w| {
                    w.and_then(|(f, l)| {
                        let f = f.max(start as u64);
                        let l = l.min(end.saturating_sub(1) as u64);
                        (f <= l).then_some((f, l))
                    })
                })
                .collect();
            let readers: Vec<_> = trees.iter().map(|t| t.read().reader()).collect();
            if e > 0 {
                // Handoff rebuild for sessions carried over from the
                // previous epoch, in the same session order the
                // concurrent path attaches them.
                for (i, run) in runs.iter_mut().enumerate() {
                    if wins[i].is_none() {
                        continue;
                    }
                    if let Some(Ok(r0)) = run {
                        if matches!(r0.out.outcome, SessionOutcome::Failed(_)) {
                            continue;
                        }
                        if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                            r0.rebuild(&grid, &readers);
                        })) {
                            r0.out.outcome = SessionOutcome::Failed(panic_message(p));
                        }
                    }
                }
            }
            for k in start..end {
                let ku = k as u64;
                for (i, plan) in plans.iter().enumerate() {
                    if runs[i].is_none() && wins[i].is_some_and(|(f, _)| f == ku) {
                        started[i] = Some(Instant::now());
                        runs[i] = Some(
                            catch_unwind(AssertUnwindSafe(|| {
                                LaneRun::start(i, &plan.spec, &grid, &readers)
                            }))
                            .map_err(|p| SessionOutcome::Failed(panic_message(p))),
                        );
                    }
                }
                let mut frame_reports: Vec<Vec<NsiReport<D>>> = vec![Vec::new(); grid.len()];
                if let Some(batch) = inserts.get(k) {
                    if let Some(log) = durable {
                        if !tallies.iter().any(RegionTally::failed) && log.due_for_checkpoint() {
                            checkpoint_from(&trees, log);
                            dur.checkpoints += 1;
                        }
                        let committed = Instant::now();
                        log.commit_frame(ku, batch);
                        dur.appends += 1;
                        dur.commit_ns += committed.elapsed().as_nanos() as u64;
                    }
                    for r in 0..grid.len() {
                        let routed = route_slice(&grid, r, batch);
                        if !routed.is_empty() && !tallies[r].failed() {
                            self.apply_region_batch(
                                &trees[r],
                                &routed,
                                &mut frame_reports[r],
                                &mut tallies[r],
                                hold_hist.as_ref(),
                            );
                            obs::trace(obs::TraceEvent::RegionRoute {
                                region: r as u32,
                                records: routed.len() as u32,
                            });
                        }
                    }
                }
                for (i, run) in runs.iter_mut().enumerate() {
                    let Some(Ok(r0)) = run else { continue };
                    if matches!(r0.out.outcome, SessionOutcome::Failed(_)) {
                        continue;
                    }
                    let Some((f, l)) = wins[i] else { continue };
                    if ku < f || ku > l {
                        continue;
                    }
                    let reports: Vec<Vec<NsiReport<D>>> = r0
                        .lanes
                        .clone()
                        .map(|reg| {
                            if is_pdq[i] {
                                frame_reports[reg].clone()
                            } else {
                                Vec::new()
                            }
                        })
                        .collect();
                    match catch_unwind(AssertUnwindSafe(|| r0.step_frame(&readers, &reports, k))) {
                        Ok(Ok(Some(ns))) => {
                            if let Some(h) = &drain_hist {
                                h.record(ns);
                            }
                        }
                        Ok(Ok(None)) => {}
                        Ok(Err(err)) => r0.out.outcome.record_error(err),
                        Err(p) => r0.out.outcome = SessionOutcome::Failed(panic_message(p)),
                    }
                }
            }
            for r0 in runs.iter_mut().flatten().flatten() {
                r0.flush_loads(|r, c| session_loads[r] += c);
            }
            totals.absorb(&tallies);
            epoch_meta.push((trees.clone(), baseline));
            if e + 1 < epoch_count {
                let loads: Vec<u64> = (0..grid.len())
                    .map(|r| session_loads[r] + tallies[r].reads + tallies[r].writes)
                    .collect();
                let records = dedup_from(&trees);
                let new_grid = grid.recut(
                    record_bounds(grid.axis(), &records),
                    &loads,
                    recuts[e].target_regions,
                );
                let make = make_tree.as_deref_mut().expect("recuts require make_tree");
                trees = build_regions(&new_grid, &records, make);
                grid = new_grid;
            } else {
                if let Some(log) = durable {
                    if !tallies.iter().any(RegionTally::failed) && log.due_for_checkpoint() {
                        checkpoint_from(&trees, log);
                        dur.checkpoints += 1;
                    }
                }
                final_tallies = tallies;
                final_loads = session_loads;
                final_grid = grid.clone();
            }
        }

        let outputs: Vec<SessionOutput> = runs
            .into_iter()
            .zip(&started)
            .map(|(run, started)| {
                let mut out = match run {
                    Some(Ok(r0)) => r0.finish(),
                    Some(Err(outcome)) => SessionOutput {
                        outcome,
                        ..SessionOutput::default()
                    },
                    None => SessionOutput::default(),
                };
                if let Some(s) = started {
                    out.wall_ns = s.elapsed().as_nanos() as u64;
                }
                out
            })
            .collect();
        let mut retries = EpochStats::default();
        for (epoch_trees, baseline) in &epoch_meta {
            retries += stats_of(epoch_trees) - *baseline;
        }
        let report = self.finish_report(
            steps,
            outputs,
            &final_grid,
            final_tallies,
            &final_loads,
            totals,
            dur,
            retries,
        );
        let final_state = (epoch_count > 1).then_some((final_grid, trees));
        (report, final_state)
    }

    /// Assemble the report from the final epoch's per-region tallies and
    /// loads plus the run-wide totals, and publish metrics.
    #[allow(clippy::too_many_arguments)]
    fn finish_report(
        &self,
        steps: usize,
        outputs: Vec<SessionOutput>,
        grid: &RegionGrid,
        final_tallies: Vec<RegionTally>,
        final_loads: &[u64],
        totals: RunTotals,
        dur: DurabilityTally,
        retries: EpochStats,
    ) -> PartitionedServeReport {
        let regions: Vec<RegionReport> = final_tallies
            .into_iter()
            .enumerate()
            .map(|(r, w)| RegionReport {
                span: grid.span_of(r),
                inserts_applied: w.applied,
                writer_reads: w.reads,
                writer_writes: w.writes,
                session_reads: final_loads[r],
                writer_outcome: w.outcome,
            })
            .collect();
        let report = PartitionedServeReport {
            base: ServeReport {
                sessions: outputs,
                frames: steps,
                inserts_applied: totals.applied,
                writer_reads: totals.reads,
                writer_writes: totals.writes,
                writer_outcome: totals.outcome,
                wal_appends: dur.appends,
                wal_commit_ns: dur.commit_ns,
                checkpoints: dur.checkpoints,
            },
            regions,
        };
        self.publish_run(&report, retries);
        report
    }

    /// Serve with the plain per-spec schedule (every session joins at
    /// frame 0); see [`Self::serve_plans`].
    pub fn serve(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport
    where
        S: Sync + Send,
    {
        let plans: Vec<SessionPlan<D>> = specs.iter().cloned().map(SessionPlan::new).collect();
        self.serve_plans(&plans, inserts)
    }

    /// Single-threaded reference for [`Self::serve`].
    pub fn serve_serial(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport {
        let plans: Vec<SessionPlan<D>> = specs.iter().cloned().map(SessionPlan::new).collect();
        self.serve_serial_plans(&plans, inserts)
    }

    /// Run the clocked serve over explicit [`SessionPlan`]s (staggered
    /// joins, per-frame delays) with the current grid, one epoch, no
    /// recuts.
    pub fn serve_plans(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport
    where
        S: Sync + Send,
    {
        let (report, _) = self.serve_clocked(plans, inserts, &[], None, &[]);
        self.accumulate_loads(&report);
        report
    }

    /// [`Self::serve_plans`] with a per-session [`FrameSink`] hook: each
    /// session's new frame results are offered to its sink as soon as the
    /// frame is processed, before the session acks the next frame. A sink
    /// returning [`SinkVerdict::Detach`] removes the session from every
    /// region clock without stalling the run — this is the attach point
    /// for the network front door's bounded outboxes.
    pub fn serve_plans_streamed(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        sinks: &[Option<&dyn FrameSink>],
    ) -> PartitionedServeReport
    where
        S: Sync + Send,
    {
        let (report, _) = self.serve_clocked(plans, inserts, &[], None, sinks);
        self.accumulate_loads(&report);
        report
    }

    /// Single-threaded reference for [`Self::serve_plans`].
    pub fn serve_serial_plans(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport {
        let (report, _) = self.serve_serial_clocked(plans, inserts, &[], None);
        self.accumulate_loads(&report);
        report
    }

    /// Serve with live rebalances: at each [`RecutPlan`] frame boundary
    /// the epoch coordinator drains the old clocks, recuts the grid at
    /// load quantiles, rebuilds the region trees via `make_tree`, and
    /// hands live sessions over to the new epoch (their engines rebuild
    /// against the new partition; the delivered-set dedup guarantees no
    /// object is ever re-emitted). The server adopts the final grid and
    /// trees. Requires a non-durable server.
    pub fn serve_plans_with_recuts(
        &mut self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        recuts: &[RecutPlan],
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) -> PartitionedServeReport
    where
        S: Sync + Send,
    {
        let (report, final_state) =
            self.serve_clocked(plans, inserts, recuts, Some(&mut make_tree), &[]);
        self.adopt(&report, final_state);
        report
    }

    /// Single-threaded reference for [`Self::serve_plans_with_recuts`].
    pub fn serve_serial_plans_with_recuts(
        &mut self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        recuts: &[RecutPlan],
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) -> PartitionedServeReport {
        let (report, final_state) =
            self.serve_serial_clocked(plans, inserts, recuts, Some(&mut make_tree));
        self.adopt(&report, final_state);
        report
    }

    /// Fold a run's per-region session+writer loads into the sticky
    /// per-region tallies that drive [`Self::hotspot`].
    fn accumulate_loads(&self, report: &PartitionedServeReport) {
        let mut loads = self.loads.lock();
        for (r, rr) in report.regions.iter().enumerate() {
            loads[r] += rr.load();
        }
    }

    /// Install the final epoch's grid and trees after a run with recuts
    /// (or just fold loads when no recut fired).
    #[allow(clippy::type_complexity)]
    fn adopt(
        &mut self,
        report: &PartitionedServeReport,
        final_state: Option<(RegionGrid, Vec<RegionTree<D, S>>)>,
    ) {
        match final_state {
            Some((grid, trees)) => {
                self.grid = grid;
                self.regions = trees;
                *self.loads.lock() = report.regions.iter().map(RegionReport::load).collect();
            }
            None => self.accumulate_loads(report),
        }
    }

    /// Mirror a run's report into the metrics registry (no-op when no
    /// registry was attached). `retries` carries the run's
    /// optimistic-read counter deltas summed per epoch — recut handoffs
    /// reset the trees, so the deltas only compose epoch-by-epoch.
    fn publish_run(&self, report: &PartitionedServeReport, retries: EpochStats) {
        let Some(reg) = &self.metrics else { return };
        reg.counter("tree.read_retries").add(retries.read_retries);
        reg.counter("tree.version_conflicts")
            .add(retries.version_conflicts);
        reg.counter("service.frames").add(report.base.frames as u64);
        reg.counter("service.inserts")
            .add(report.base.inserts_applied as u64);
        reg.counter("service.results")
            .add(report.base.total_results() as u64);
        reg.counter("service.writer.reads").add(report.base.writer_reads);
        reg.counter("service.writer.writes").add(report.base.writer_writes);
        reg.counter("service.session.reads")
            .add(report.base.total_stats().disk_accesses);
        if report.base.checkpoints > 0 {
            reg.counter("service.checkpoints").add(report.base.checkpoints);
        }
        for (r, rr) in report.regions.iter().enumerate() {
            reg.counter(&format!("service.region{r}.inserts"))
                .add(rr.inserts_applied as u64);
            reg.counter(&format!("service.region{r}.writer.reads"))
                .add(rr.writer_reads);
            reg.counter(&format!("service.region{r}.writer.writes"))
                .add(rr.writer_writes);
            reg.counter(&format!("service.region{r}.session.reads"))
                .add(rr.session_reads);
            reg.gauge(&format!("service.region{r}.load"))
                .set(rr.load() as i64);
        }
        for s in &report.base.sessions {
            reg.gauge("service.pdq.queue_hwm")
                .record_max(s.queue_hwm as i64);
            if s.discarded_subtrees > 0 {
                reg.counter("service.npdq.discarded").add(s.discarded_subtrees);
            }
            match &s.outcome {
                SessionOutcome::Ok => {}
                SessionOutcome::Degraded { errors } => {
                    reg.counter("service.sessions.degraded").add(1);
                    reg.counter("service.sessions.errors").add(errors.len() as u64);
                }
                SessionOutcome::Failed(_) => {
                    reg.counter("service.sessions.failed").add(1);
                }
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use rtree::RTreeConfig;
    use stkit::Rect;
    use storage::Pager;

    type R = NsiSegmentRecord<2>;

    fn line_records(n: u32) -> Vec<R> {
        (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect()
    }

    fn slide_spec(kind: SessionKind, frames: usize, span: f64) -> SessionSpec<2> {
        SessionSpec {
            kind,
            trajectory: crate::Trajectory::linear(
                Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
                [1.0, 0.0],
                Interval::new(0.0, span),
                2,
            ),
            frame_times: (0..=frames)
                .map(|k| span * k as f64 / frames as f64)
                .collect(),
        }
    }

    fn build(grid: RegionGrid, preload: &[R]) -> PartitionedDqServer<2, Pager> {
        PartitionedDqServer::build(grid, preload, |_| {
            RTree::new(Pager::new(), RTreeConfig::default())
        })
    }

    #[test]
    fn single_region_matches_single_tree_server_per_frame() {
        // 1-region partitioned serving delivers the same objects in the
        // same frames as DqServer (in-frame order may legally differ at
        // start-time ties, so compare frame sets).
        let recs = line_records(30);
        let spec = slide_spec(SessionKind::Pdq, 10, 30.0);
        let part = build(RegionGrid::single(), &recs);
        let p = part.serve(std::slice::from_ref(&spec), &[]);

        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for r in &recs {
            tree.insert(*r, r.seg.t.lo);
        }
        let mono = crate::DqServer::new(tree).serve(std::slice::from_ref(&spec), &[]);

        let frame_sets = |s: &SessionOutput| -> Vec<Vec<(u32, u32)>> {
            let mut off = 0;
            s.frames
                .iter()
                .map(|f| {
                    let mut set = s.results[off..off + f.results].to_vec();
                    off += f.results;
                    set.sort_unstable();
                    set
                })
                .collect()
        };
        assert_eq!(frame_sets(&p.sessions[0]), frame_sets(&mono.sessions[0]));
    }

    #[test]
    fn partitioned_parallel_equals_partitioned_serial() {
        let recs = line_records(40);
        let specs = vec![
            slide_spec(SessionKind::Pdq, 20, 40.0),
            slide_spec(SessionKind::Npdq, 20, 40.0),
        ];
        let inserts: Vec<Vec<(R, f64)>> = (0..20)
            .map(|k| {
                let t = 40.0 * k as f64 / 20.0;
                vec![(
                    R::new(1000 + k, 0, Interval::new(t, 100.0), [(t + 5.0) % 39.0, 0.5], [(t + 5.0) % 39.0, 0.5]),
                    t,
                )]
            })
            .collect();
        for cuts in [vec![20.0], vec![10.0, 20.0, 30.0]] {
            let grid = RegionGrid::from_cuts(0, cuts);
            let p = build(grid.clone(), &recs).serve(&specs, &inserts);
            let s = build(grid, &recs).serve_serial(&specs, &inserts);
            for (a, b) in p.sessions.iter().zip(&s.sessions) {
                assert_eq!(a.results, b.results);
            }
            assert_eq!(p.base.inserts_applied, s.base.inserts_applied);
            assert_eq!(p.base.writer_reads, s.base.writer_reads);
            assert_eq!(p.base.writer_writes, s.base.writer_writes);
        }
    }

    #[test]
    fn seam_straddler_is_replicated_but_delivered_once() {
        // One object moving ACROSS the cut at x = 5: its segment bbox
        // touches both regions, so both trees store it — yet the PDQ
        // merge must deliver exactly one entry event.
        let straddler = R::new(9, 0, Interval::new(0.0, 10.0), [4.0, 0.5], [6.0, 0.5]);
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &[straddler]);
        assert_eq!(server.region_record_counts(), vec![1, 1], "replicated");
        let spec = slide_spec(SessionKind::Pdq, 10, 10.0);
        let report = server.serve(&[spec], &[]);
        assert_eq!(report.sessions[0].results, vec![(9, 0)], "exactly once");
    }

    #[test]
    fn insert_replication_counts_per_region() {
        // A live insert straddling the seam applies in both regions:
        // inserts_applied counts physical inserts.
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &[]);
        let batch = vec![
            (R::new(1, 0, Interval::new(0.0, 10.0), [4.5, 0.5], [5.5, 0.5]), 0.0),
            (R::new(2, 0, Interval::new(0.0, 10.0), [1.0, 0.5], [2.0, 0.5]), 0.0),
        ];
        let report = server.serve(&[], &[batch]);
        assert_eq!(report.base.inserts_applied, 3, "straddler counts twice");
        assert_eq!(report.regions[0].inserts_applied, 2);
        assert_eq!(report.regions[1].inserts_applied, 1);
    }

    #[test]
    fn per_region_reads_reconcile_with_level_counters() {
        let recs = line_records(40);
        let specs = vec![
            slide_spec(SessionKind::Pdq, 10, 40.0),
            slide_spec(SessionKind::Npdq, 10, 40.0),
        ];
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                vec![(
                    R::new(500 + k, 0, Interval::new(0.0, 100.0), [k as f64 + 0.25, 0.5], [k as f64 + 0.25, 0.5]),
                    k as f64,
                )]
            })
            .collect();
        let server = build(RegionGrid::from_cuts(0, vec![13.0, 27.0]), &recs);
        // Baseline after preload: build()'s inserts also read nodes.
        let preload: Vec<_> = (0..3)
            .map(|r| server.with_region_tree(r, |t| t.level_counters().snapshot()))
            .collect();
        let report = server.serve(&specs, &inserts);
        for r in 0..3 {
            let delta = server.with_region_tree(r, |t| t.level_counters().snapshot()) - preload[r];
            assert_eq!(
                delta.total_reads(),
                report.regions[r].session_reads + report.regions[r].writer_reads,
                "region {r} read identity"
            );
            assert_eq!(delta.total_writes(), report.regions[r].writer_writes);
        }
    }

    /// Per-frame batches that all land strictly inside region 0 of a
    /// cut-at-25 grid: writer reads+writes pile load onto that region.
    fn region0_inserts(frames: usize) -> Vec<Vec<(R, f64)>> {
        (0..frames)
            .map(|k| {
                let t = k as f64;
                vec![(
                    R::new(
                        200 + k as u32,
                        0,
                        Interval::new(t, 100.0),
                        [t + 0.25, 0.5],
                        [t + 0.25, 0.5],
                    ),
                    t,
                )]
            })
            .collect()
    }

    #[test]
    fn loads_accumulate_and_hotspot_flags_skew() {
        let recs = line_records(30);
        let server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        assert_eq!(server.hotspot(2.0), None, "no load yet");
        // Query sweeps [0, 25] and every insert lands left of the cut:
        // region 0 does nearly all the work.
        let spec = slide_spec(SessionKind::Pdq, 10, 24.0);
        server.serve(&[spec], &region0_inserts(10));
        let loads = server.region_loads();
        assert!(loads[0] > 0);
        assert!(loads[0] > 2 * loads[1].max(1), "loads {loads:?}");
        assert_eq!(server.hotspot(1.5), Some(0));
    }

    #[test]
    fn rebalance_recuts_and_preserves_results() {
        let recs = line_records(30);
        let spec = slide_spec(SessionKind::Pdq, 10, 24.0);
        let mut server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        server.serve(std::slice::from_ref(&spec), &region0_inserts(10));
        server.rebalance(2, |_| RTree::new(Pager::new(), RTreeConfig::default()));
        assert_eq!(server.grid().len(), 2);
        let cut = server.grid().cuts()[0];
        assert!(cut < 25.0, "cut moved into the hot slab, got {cut}");
        assert_eq!(server.region_loads(), vec![0, 0], "loads reset");
        // Oracle: a fresh server under the OLD grid with every record —
        // including the ones inserted live above — preloaded. Delivery
        // frames and the (start, oid, seq) merge order are both
        // layout-independent, so result sequences must match exactly.
        let mut all = recs.clone();
        for batch in region0_inserts(10) {
            for (r, _) in batch {
                all.push(r);
            }
        }
        let oracle =
            build(RegionGrid::from_cuts(0, vec![25.0]), &all).serve(std::slice::from_ref(&spec), &[]);
        let after = server.serve(std::slice::from_ref(&spec), &[]);
        assert_eq!(after.sessions[0].results, oracle.sessions[0].results);
    }

    #[test]
    fn zombie_session_does_not_stall_partitioned_serve() {
        // An empty-schedule session among healthy ones plus per-frame
        // inserts: the never-scheduled session has no window, so it
        // never attaches to any region's clock — nobody waits on it.
        let recs = line_records(10);
        let mut dead = slide_spec(SessionKind::Pdq, 10, 10.0);
        dead.frame_times = vec![0.0]; // zero steps
        let specs = vec![slide_spec(SessionKind::Pdq, 10, 10.0), dead];
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                vec![(
                    R::new(100 + k, 0, Interval::new(0.0, 100.0), [k as f64 + 0.1, 0.5], [k as f64 + 0.1, 0.5]),
                    k as f64,
                )]
            })
            .collect();
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &recs);
        let report = server.serve(&specs, &inserts);
        assert_eq!(report.base.frames, 10);
        assert!(report.sessions[0].results.len() >= 10);
        assert!(report.sessions[1].results.is_empty());
    }

    #[test]
    fn recut_mid_serve_preserves_results_and_matches_serial() {
        // A live rebalance at frame 5 of a 10-frame serve: the epoch
        // handoff must not change what the session sees (delivered-set
        // dedup absorbs the engine rebuild), must match the serial
        // reference bit-for-bit, and must leave the server on the new
        // grid.
        let recs = line_records(30);
        let spec = slide_spec(SessionKind::Pdq, 10, 24.0);
        let inserts = region0_inserts(10);
        let plans = vec![SessionPlan::new(spec.clone())];
        let recuts = [RecutPlan::new(5, 2)];
        let mut server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        let p = server.serve_plans_with_recuts(&plans, &inserts, &recuts, |_| {
            RTree::new(Pager::new(), RTreeConfig::default())
        });
        let oracle = build(RegionGrid::from_cuts(0, vec![25.0]), &recs).serve_plans(&plans, &inserts);
        assert_eq!(p.sessions[0].results, oracle.sessions[0].results);
        assert_eq!(p.sessions[0].outcome, SessionOutcome::Ok);

        let mut serial_server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        let s = serial_server.serve_serial_plans_with_recuts(&plans, &inserts, &recuts, |_| {
            RTree::new(Pager::new(), RTreeConfig::default())
        });
        assert_eq!(p.sessions[0].results, s.sessions[0].results);
        assert_eq!(p.sessions[0].stats, s.sessions[0].stats);

        // Both servers adopted the recut 2-region grid.
        assert_eq!(server.grid().len(), 2);
        assert_eq!(serial_server.grid().len(), 2);
        assert!(server.grid().cuts()[0] < 25.0);
    }
}
