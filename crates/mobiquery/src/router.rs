//! Region-partitioned serving: many trees, many writers, one answer.
//!
//! [`crate::service::DqServer`] serializes every insert behind ONE
//! tree's write lock — correct, but the writer caps throughput long
//! before millions of objects. [`PartitionedDqServer`] splits space by a
//! [`RegionGrid`] into regions that each own their own NSI tree, their
//! own writer thread, and their own buffer pool, so per-frame insert
//! batches apply in parallel (the architecture of distributed
//! continuous-range-query processors, arXiv 2206.01905, folded into one
//! process).
//!
//! The router half lives in each session: a session's moving window is
//! split across the regions its trajectory sweeps (its *lanes*), one
//! PDQ/NPDQ engine per lane, and per-frame lane results are merged back
//! into a single stream. Records whose trapezoid segments straddle a
//! region seam are replicated into every touching region (closed slabs —
//! see [`RegionGrid::route_rect`]), so the merge deduplicates by
//! `(oid, seq)`: PDQ keeps a cross-frame delivered set (entry events
//! stay exactly-once at seams), NPDQ dedups within the frame (snapshot
//! semantics re-report per frame by design). Within a frame, merged PDQ
//! results order by `(visibility start, oid, seq)` — the same keys the
//! PDQ queue itself tie-breaks on — which makes partitioned runs
//! bitwise deterministic: [`PartitionedDqServer::serve`] equals
//! [`PartitionedDqServer::serve_serial`] exactly, the same contract the
//! single-tree server keeps.
//!
//! The frame protocol is the single-tree one, generalized: a barrier of
//! `sessions + regions` participants, two waits per frame. Between the
//! waits every region's writer applies its routed slice of the batch
//! under ITS tree's write lock and broadcasts its [`rtree::InsertReport`]s
//! into per-`(session, region)` mailboxes; after the second wait each
//! session absorbs and drains each lane *latch-free* through a per-region
//! optimistic [`rtree::TreeReader`] — no read lock on the serving path.
//! Because each region has its own tree and pool, the reconciliation
//! identity holds *per region*: region tree level reads == Σ lane disk
//! accesses attributed to that region + that region's writer reads (+
//! validation-discarded reads, zero under the barrier protocol).
//!
//! Hotspot rebalancing (after Kiwano, arXiv 1211.4414): every serve
//! accumulates per-region load (writer reads+writes plus session reads);
//! [`PartitionedDqServer::hotspot`] flags a region pulling more than a
//! factor above the mean, and [`PartitionedDqServer::rebalance`] recuts
//! the grid at equal-load quantiles between serves, rebuilding region
//! trees from the deduplicated record set.

use crate::durability::DurableLog;
use crate::layout::MotionRecord;
use crate::npdq::NpdqEngine;
use crate::pdq::{PdqEngine, PdqResult};
use crate::region::RegionGrid;
use crate::service::{
    panic_message, FrameReport, NsiReport, ServeReport, SessionKind, SessionOutcome,
    SessionOutput, SessionSpec,
};
use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use parking_lot::{Mutex, RwLock};
use rtree::{EpochStats, NsiSegmentRecord, RTree, TreeReadRetry};
use std::collections::{BTreeMap, HashSet};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use stkit::Interval;
use storage::{PageStore, RetryPolicy, StorageError};

/// Per-region tallies of one partitioned run.
#[derive(Clone, Debug, Default)]
pub struct RegionReport {
    /// The region's slab on the grid axis.
    pub span: Interval,
    /// Records this region's writer applied (a record straddling a seam
    /// counts once in every region that stores a replica).
    pub inserts_applied: usize,
    /// Node reads this region's writer performed in its write sections.
    pub writer_reads: u64,
    /// Node writes this region's writer performed in its write sections.
    pub writer_writes: u64,
    /// Session-side node reads attributed to this region's lanes.
    pub session_reads: u64,
    /// Whether this region's writer applied every batch clean.
    pub writer_outcome: SessionOutcome,
}

impl RegionReport {
    /// The load figure hotspot detection and recutting run on: every
    /// node touch the region cost the run, reader- or writer-side.
    pub fn load(&self) -> u64 {
        self.writer_reads + self.writer_writes + self.session_reads
    }
}

/// Outcome of one [`PartitionedDqServer::serve`] /
/// [`PartitionedDqServer::serve_serial`] run: the familiar single-tree
/// [`ServeReport`] (writer tallies summed over regions; session outputs
/// merged across lanes) plus the per-region breakdown.
///
/// Note `base.inserts_applied` counts *physical* per-region inserts, so
/// it exceeds the batch record count when segments straddle seams.
/// `Σ frame.stats == session.stats` also does not hold here (unlike the
/// single-tree server): absorb work on frames past a session's schedule
/// is still tallied into `session.stats` so the per-region read
/// reconciliation stays exact.
#[derive(Clone, Debug, Default)]
pub struct PartitionedServeReport {
    /// The run viewed as a single server (sessions in spec order).
    pub base: ServeReport,
    /// Per-region tallies, in grid order.
    pub regions: Vec<RegionReport>,
}

impl std::ops::Deref for PartitionedServeReport {
    type Target = ServeReport;
    fn deref(&self) -> &ServeReport {
        &self.base
    }
}

/// One lane's engine: the session's algorithm instantiated against one
/// region's tree.
enum LaneEngine<const D: usize> {
    Pdq(Box<PdqEngine<D>>),
    Npdq(Box<NpdqEngine<D>>),
}

/// One session's in-flight state: an engine per swept region, plus the
/// merge/dedup state that folds lane streams back into one.
struct LaneRun<'a, const D: usize> {
    index: usize,
    spec: &'a SessionSpec<D>,
    /// Contiguous region indices this session's trajectory sweeps.
    lanes: Range<usize>,
    engines: Vec<LaneEngine<D>>,
    /// PDQ cross-frame dedup: seam replicas deliver in the same frame in
    /// every lane (frame assignment depends only on overlap start), but
    /// the set keeps exactly-once robust without leaning on that.
    delivered: HashSet<(u32, u32)>,
    out: SessionOutput,
    /// Node reads attributed per region (for the per-region identity).
    region_reads: Vec<u64>,
    scratch: Vec<PdqResult<D>>,
    merge_pdq: Vec<(f64, u32, u32)>,
    merge_npdq: Vec<(u32, u32)>,
    /// Per-attempt NPDQ emission staging: a snapshot descent aborted by
    /// a version conflict retries wholesale, so emissions only reach the
    /// merge once the attempt completes.
    npdq_scratch: Vec<(u32, u32)>,
}

impl<'a, const D: usize> LaneRun<'a, D> {
    /// `trees[r]` is the read handle for region `r`: optimistic
    /// [`rtree::TreeReader`]s on the concurrent path, the same on the
    /// serial path (validation always passes there — no concurrent
    /// writer — so the code path stays identical).
    fn start<T: TreeReadRetry<NsiSegmentRecord<D>>>(
        index: usize,
        spec: &'a SessionSpec<D>,
        grid: &RegionGrid,
        trees: &[T],
    ) -> Self {
        let lanes = grid.route_rect(&spec.trajectory.swept_bounds());
        let engines = lanes
            .clone()
            .map(|r| match spec.kind {
                SessionKind::Pdq => LaneEngine::Pdq(Box::new(PdqEngine::start(
                    &trees[r],
                    spec.trajectory.clone(),
                ))),
                SessionKind::Npdq => LaneEngine::Npdq(Box::new(NpdqEngine::new())),
            })
            .collect();
        LaneRun {
            index,
            spec,
            lanes,
            engines,
            delivered: HashSet::new(),
            out: SessionOutput::default(),
            region_reads: vec![0; trees.len()],
            scratch: Vec::new(),
            merge_pdq: Vec::new(),
            merge_npdq: Vec::new(),
            npdq_scratch: Vec::new(),
        }
    }

    /// Process global frame `k` across every lane: absorb `reports[li]`
    /// (this frame's broadcast for lane `li`), drain/execute in-schedule
    /// frames, then merge. Only the first lane error is returned (lanes
    /// process in ascending region order, so the choice is
    /// deterministic); the engines stay valid for retry next frame,
    /// exactly like the single-tree path.
    fn step_frame<T: TreeReadRetry<NsiSegmentRecord<D>>>(
        &mut self,
        trees: &[T],
        reports: &[Vec<NsiReport<D>>],
        k: usize,
    ) -> Result<Option<u64>, StorageError> {
        let in_schedule = match self.spec.kind {
            SessionKind::Pdq => k + 1 < self.spec.frame_times.len(),
            SessionKind::Npdq => k < self.spec.frame_times.len(),
        };
        if in_schedule {
            obs::trace(obs::TraceEvent::FrameStart {
                session: self.index as u32,
                frame: k as u32,
            });
        }
        let before_results = self.out.results.len();
        let started = Instant::now();
        let mut frame_stats = QueryStats::default();
        let mut first_err: Option<StorageError> = None;
        self.merge_pdq.clear();
        self.merge_npdq.clear();
        for (li, r) in self.lanes.clone().enumerate() {
            let tree = &trees[r];
            match &mut self.engines[li] {
                LaneEngine::Pdq(pdq) => {
                    for report in &reports[li] {
                        pdq.notify(tree, report);
                    }
                    if in_schedule {
                        let (t0, t1) = (self.spec.frame_times[k], self.spec.frame_times[k + 1]);
                        self.scratch.clear();
                        let res = pdq.try_drain_window_into(tree, t0, t1, &mut self.scratch);
                        for pr in &self.scratch {
                            self.merge_pdq.push((
                                pr.visibility.start().unwrap_or(f64::NEG_INFINITY),
                                pr.record.oid,
                                pr.record.seq,
                            ));
                        }
                        if let Err(e) = res {
                            first_err.get_or_insert(e);
                        }
                    }
                    // Take every frame (absorb included), even past the
                    // session's schedule: notify reads must land in the
                    // region attribution or the per-region identity
                    // under-counts.
                    let st = pdq.take_stats();
                    frame_stats += st;
                    self.region_reads[r] += st.disk_accesses;
                }
                LaneEngine::Npdq(npdq) => {
                    if in_schedule {
                        let t = self.spec.frame_times[k];
                        let q = SnapshotQuery::at_instant(self.spec.trajectory.window_at(t), t);
                        // Whole descent against one pinned version; an
                        // aborted attempt's emissions stay in the scratch.
                        let scratch = &mut self.npdq_scratch;
                        match tree.with_consistent(|view| {
                            scratch.clear();
                            npdq.try_execute(view, &q, t, |rec: &NsiSegmentRecord<D>| {
                                scratch.push(rec.ids());
                            })
                        }) {
                            Ok(st) => {
                                self.merge_npdq.extend(self.npdq_scratch.iter().copied());
                                frame_stats += st;
                                self.region_reads[r] += st.disk_accesses;
                            }
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
            }
        }
        // The seam merge. PDQ: order by the queue's own priority keys —
        // (visibility start, then object identity) — and deliver each
        // object once ever; a straddler drained by two lanes ties on the
        // full key, so which copy survives is immaterial. NPDQ: snapshot
        // per frame, ordered and deduplicated by identity within the
        // frame only.
        match self.spec.kind {
            SessionKind::Pdq => {
                self.merge_pdq.sort_unstable_by(|a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                });
                for &(_, oid, seq) in &self.merge_pdq {
                    if self.delivered.insert((oid, seq)) {
                        self.out.results.push((oid, seq));
                    }
                }
            }
            SessionKind::Npdq => {
                self.merge_npdq.sort_unstable();
                self.merge_npdq.dedup();
                self.out.results.extend(self.merge_npdq.iter().copied());
            }
        }
        let latency_ns = started.elapsed().as_nanos() as u64;
        self.out.stats += frame_stats;
        if !in_schedule {
            return match first_err {
                Some(e) => Err(e),
                None => Ok(None),
            };
        }
        let results = self.out.results.len() - before_results;
        self.out.frames.push(FrameReport {
            frame: k,
            results,
            latency_ns,
            stats: frame_stats,
        });
        obs::trace(obs::TraceEvent::FrameEnd {
            session: self.index as u32,
            frame: k as u32,
            results: results as u32,
            latency_ns,
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(Some(latency_ns)),
        }
    }

    fn finish(mut self) -> (SessionOutput, Vec<u64>) {
        for engine in &self.engines {
            match engine {
                LaneEngine::Pdq(pdq) => {
                    self.out.queue_hwm = self.out.queue_hwm.max(pdq.queue_hwm());
                }
                LaneEngine::Npdq(npdq) => {
                    self.out.discarded_subtrees += npdq.discarded_subtrees();
                }
            }
        }
        (self.out, self.region_reads)
    }
}

/// Per-region writer tallies while a run is in flight.
#[derive(Default)]
struct RegionTally {
    applied: usize,
    reads: u64,
    writes: u64,
    outcome: SessionOutcome,
}

impl RegionTally {
    /// A failed region writer (full device) stops applying; see
    /// [`crate::service::DqServer`] — the same rule, per region.
    fn failed(&self) -> bool {
        matches!(self.outcome, SessionOutcome::Failed(_))
    }
}

/// Tallies of the durability participant (WAL commits + logical
/// checkpoints) over one partitioned run.
#[derive(Clone, Copy, Default)]
struct DurabilityTally {
    appends: u64,
    commit_ns: u64,
    checkpoints: u64,
}

/// A serving instance owning one NSI tree *per region*.
///
/// ```
/// use mobiquery::{PartitionedDqServer, RegionGrid, SessionKind, SessionSpec, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let preload = vec![NsiSegmentRecord::new(
///     7, 0, Interval::new(0.0, 100.0), [5.5, 0.5], [5.5, 0.5],
/// )];
/// let server = PartitionedDqServer::build(
///     RegionGrid::from_cuts(0, vec![4.0, 8.0]),
///     &preload,
///     |_region| RTree::new(Pager::new(), RTreeConfig::default()),
/// );
/// let spec = SessionSpec {
///     kind: SessionKind::Pdq,
///     trajectory: Trajectory::linear(
///         Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///         [1.0, 0.0], Interval::new(0.0, 10.0), 2),
///     frame_times: (0..=10).map(f64::from).collect(),
/// };
/// let report = server.serve(&[spec], &[]);
/// assert_eq!(report.sessions[0].results, vec![(7, 0)]);
/// ```
pub struct PartitionedDqServer<const D: usize, S: PageStore> {
    grid: RegionGrid,
    /// One tree per region; stores are `Arc`-wrapped so each session can
    /// hold per-region optimistic readers without `S: Clone`.
    regions: Vec<RwLock<RTree<NsiSegmentRecord<D>, Arc<S>>>>,
    /// Accumulated per-region load across serves (feeds hotspot
    /// detection and recutting).
    loads: Mutex<Vec<u64>>,
    metrics: Option<Arc<obs::MetricsRegistry>>,
    writer_retry: RetryPolicy,
    /// When set, every frame's batch is group-committed to the WAL
    /// before any region applies it, and *logical* checkpoints (the
    /// deduplicated record set, not per-region page images) are
    /// installed when due. Survives [`Self::rebalance`]: the logical
    /// form is partition-independent.
    durability: Option<Arc<DurableLog>>,
}

impl<const D: usize, S: PageStore> PartitionedDqServer<D, S> {
    /// Build one tree per region (each from `make_tree`, which must
    /// return an *empty* tree — typically over its own pool slice) and
    /// route `preload` into every region its segment's spatial bbox
    /// overlaps (each inserted at its segment's start time).
    pub fn build(
        grid: RegionGrid,
        preload: &[NsiSegmentRecord<D>],
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) -> Self {
        let n = grid.len();
        let mut trees: Vec<RTree<NsiSegmentRecord<D>, S>> = (0..n)
            .map(|r| {
                let t = make_tree(r);
                assert!(t.is_empty(), "make_tree must return empty trees");
                t
            })
            .collect();
        for rec in preload {
            for r in grid.route_rect(&rec.seg.spatial_bbox()) {
                trees[r].insert(*rec, rec.seg.t.lo);
            }
        }
        let loads = Mutex::new(vec![0; n]);
        PartitionedDqServer {
            grid,
            regions: trees
                .into_iter()
                .map(|t| RwLock::new(t.map_store(Arc::new)))
                .collect(),
            loads,
            metrics: None,
            writer_retry: RetryPolicy::default(),
            durability: None,
        }
    }

    /// Record serving metrics into `registry` (builder-style): the
    /// single-tree run counters plus per-region labels
    /// `service.region{r}.{inserts,writer.reads,writer.writes,session.reads,load}`.
    pub fn with_metrics(mut self, registry: Arc<obs::MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// How each region's writer treats transient insert failures
    /// (builder-style); see [`crate::service::DqServer::with_writer_retry`].
    pub fn with_writer_retry(mut self, policy: RetryPolicy) -> Self {
        self.writer_retry = policy;
        self
    }

    /// Make the write path durable (builder-style): each frame's whole
    /// batch is appended to `log`'s WAL as one group-committed record
    /// *before* any region writer touches a tree page, and when a
    /// checkpoint falls due the deduplicated record set of every region
    /// is installed as a [`crate::durability::Checkpoint::Logical`]
    /// checkpoint. Recovery rebuilds via [`Self::build`] from the
    /// checkpoint records plus the replayed frames — result-equivalent
    /// to the crashed server, under any grid.
    ///
    /// Unlike the single-tree server no `SnapshotSource` bound is
    /// needed: logical checkpoints serialize records, not pages.
    pub fn with_durability(mut self, log: Arc<DurableLog>) -> Self {
        self.durability = Some(log);
        self
    }

    /// The current partition function.
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// Accumulated per-region loads (across every serve since the last
    /// rebalance).
    pub fn region_loads(&self) -> Vec<u64> {
        self.loads.lock().clone()
    }

    /// Records resident per region. Seam replicas count once per region,
    /// so the sum can exceed the distinct record count.
    pub fn region_record_counts(&self) -> Vec<u64> {
        self.regions.iter().map(|t| t.read().len()).collect()
    }

    /// Run a value out of region `r`'s tree under its read lock.
    pub fn with_region_tree<T>(
        &self,
        r: usize,
        f: impl FnOnce(&RTree<NsiSegmentRecord<D>, Arc<S>>) -> T,
    ) -> T {
        f(&self.regions[r].read())
    }

    /// The region (if any) whose accumulated load exceeds `factor` times
    /// the mean — the rebalance trigger. A single-region grid has no
    /// hotspot (there is nothing to shed load to).
    pub fn hotspot(&self, factor: f64) -> Option<usize> {
        let loads = self.loads.lock();
        if loads.len() < 2 {
            return None;
        }
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let (r, &max) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .expect("non-empty");
        (max as f64 > factor * mean && mean > 0.0).then_some(r)
    }

    /// Recut the grid into `target_regions` at equal-load quantiles of
    /// the accumulated per-region loads and rebuild the region trees
    /// (between serves — callers hold `&mut self`, so no writer epoch is
    /// in flight). Records are collected from every region and
    /// deduplicated by `(oid, seq)` (seam replicas collapse), then
    /// re-routed under the new cuts; load tallies reset.
    pub fn rebalance(
        &mut self,
        target_regions: usize,
        mut make_tree: impl FnMut(usize) -> RTree<NsiSegmentRecord<D>, S>,
    ) {
        let axis = self.grid.axis();
        let records = self.dedup_records();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for rec in records.values() {
            let e = rec.seg.spatial_bbox().extent(axis);
            lo = lo.min(e.lo);
            hi = hi.max(e.hi);
        }
        let bounds = if lo < hi {
            Interval::new(lo, hi)
        } else if lo.is_finite() {
            Interval::new(lo - 0.5, lo + 0.5)
        } else {
            Interval::new(0.0, 1.0)
        };
        let grid = {
            let loads = self.loads.lock();
            self.grid.recut(bounds, &loads, target_regions)
        };
        let n = grid.len();
        let mut trees: Vec<RTree<NsiSegmentRecord<D>, S>> = (0..n)
            .map(|r| {
                let t = make_tree(r);
                assert!(t.is_empty(), "make_tree must return empty trees");
                t
            })
            .collect();
        for rec in records.values() {
            for r in grid.route_rect(&rec.seg.spatial_bbox()) {
                trees[r].insert(*rec, rec.seg.t.lo);
            }
        }
        self.grid = grid;
        self.regions = trees
            .into_iter()
            .map(|t| RwLock::new(t.map_store(Arc::new)))
            .collect();
        self.loads = Mutex::new(vec![0; n]);
    }

    /// Every record resident across the regions, deduplicated by
    /// `(oid, seq)` so seam replicas collapse to one copy — the shared
    /// idiom of [`Self::rebalance`] and logical checkpoints.
    fn dedup_records(&self) -> BTreeMap<(u32, u32), NsiSegmentRecord<D>> {
        let mut records = BTreeMap::new();
        for lock in &self.regions {
            lock.read().scan(|rec| {
                records.insert(rec.ids(), *rec);
            });
        }
        records
    }

    /// Install a logical checkpoint of the current deduplicated record
    /// set. Region writers are parked at the frame barrier when this
    /// runs, so the read-locked scans see a quiescent frame boundary
    /// (concurrent sessions read latch-free and are unaffected). Note
    /// the scans count as tree reads, so durable runs trade the strict
    /// region read-reconciliation identity for recoverability.
    fn checkpoint_logical(&self, log: &DurableLog) {
        let records: Vec<NsiSegmentRecord<D>> = self.dedup_records().into_values().collect();
        log.checkpoint_logical(&records);
    }

    /// Take the base checkpoint covering the preloaded regions, so
    /// recovery always has a record set to replay onto (idempotent:
    /// skipped once the log holds any checkpoint).
    fn ensure_initial_checkpoint(&self, log: &DurableLog) {
        if !log.has_checkpoint() {
            self.checkpoint_logical(log);
        }
    }

    /// Global frame steps for a run (same rule as the single-tree
    /// server).
    fn step_count(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> usize {
        specs
            .iter()
            .map(SessionSpec::steps)
            .max()
            .unwrap_or(0)
            .max(inserts.len())
    }

    /// The slice of `batch` that routes to region `r`, in batch order.
    fn route_batch(
        &self,
        r: usize,
        batch: &[(NsiSegmentRecord<D>, f64)],
    ) -> Vec<(NsiSegmentRecord<D>, f64)> {
        batch
            .iter()
            .filter(|(rec, _)| self.grid.route_rect(&rec.seg.spatial_bbox()).contains(&r))
            .copied()
            .collect()
    }

    /// Apply one region's routed slice under that region's write lock —
    /// the single-tree writer's retry discipline, per region: transient
    /// failures back off with the lock *released*, exhausted or
    /// unrecoverable records are skipped into the tally's outcome.
    fn apply_region_batch(
        &self,
        r: usize,
        batch: &[(NsiSegmentRecord<D>, f64)],
        reports: &mut Vec<NsiReport<D>>,
        w: &mut RegionTally,
        hold_hist: Option<&Arc<obs::Histogram>>,
    ) {
        let mut idx = 0;
        let mut attempt = 0u32;
        while idx < batch.len() {
            let backoff = {
                let mut tree = self.regions[r].write();
                let held = Instant::now();
                let before = tree.level_counters().snapshot();
                let mut backoff = None;
                while idx < batch.len() {
                    let (rec, now) = &batch[idx];
                    match tree.try_insert(*rec, *now) {
                        Ok(report) => {
                            reports.push(report);
                            w.applied += 1;
                            idx += 1;
                            attempt = 0;
                        }
                        Err(e)
                            if e.is_transient()
                                && attempt + 1 < self.writer_retry.max_attempts =>
                        {
                            attempt += 1;
                            backoff = Some(self.writer_retry.backoff(attempt));
                            break;
                        }
                        // A full device fails the region's writer for the
                        // rest of the run (same rule as the single-tree
                        // server): skipping ahead would drop records
                        // silently, and retrying a full disk is futile.
                        Err(e @ StorageError::Full { .. }) => {
                            w.outcome = SessionOutcome::Failed(format!("writer stopped: {e}"));
                            idx = batch.len();
                        }
                        Err(e) => {
                            w.outcome.record_error(e);
                            idx += 1;
                            attempt = 0;
                        }
                    }
                }
                let delta = tree.level_counters().snapshot() - before;
                w.reads += delta.total_reads();
                w.writes += delta.total_writes();
                if let Some(h) = hold_hist {
                    h.record(held.elapsed().as_nanos() as u64);
                }
                backoff
            };
            if let Some(pause) = backoff {
                std::thread::sleep(pause);
            }
        }
    }

    /// Serve every session concurrently: one thread per session plus one
    /// *writer thread per region*, meeting at a shared barrier twice per
    /// frame. Deterministic: result sequences equal
    /// [`Self::serve_serial`] on an identically prepared server.
    pub fn serve(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport
    where
        S: Sync + Send,
    {
        let steps = self.step_count(specs, inserts);
        let n = self.regions.len();
        let epoch_start = self.epoch_totals();
        let is_pdq: Vec<bool> = specs.iter().map(|s| s.kind == SessionKind::Pdq).collect();
        let session_lanes: Vec<Range<usize>> = specs
            .iter()
            .map(|s| self.grid.route_rect(&s.trajectory.swept_bounds()))
            .collect();
        let durable = self.durability.as_deref();
        if let Some(log) = durable {
            self.ensure_initial_checkpoint(log);
        }
        // Set by any region writer that hits a full device; once set,
        // checkpoints stop (truncating the WAL would drop committed
        // records that never reached a tree) while WAL commits continue.
        let any_failed = AtomicBool::new(false);
        // One extra participant when durable: the durability thread,
        // which group-commits frame k's batch BEFORE its first wait —
        // the barrier then orders the commit before every region apply.
        let barrier = Barrier::new(specs.len() + n + usize::from(durable.is_some()));
        let mailboxes: Vec<Vec<Mutex<Vec<NsiReport<D>>>>> = specs
            .iter()
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let drain_hist = self.metrics.as_ref().map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));

        let (sessions, tallies, dur) = std::thread::scope(|scope| {
            let session_handles: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let barrier = &barrier;
                    let mailboxes = &mailboxes;
                    let session_lanes = &session_lanes;
                    let drain_hist = drain_hist.clone();
                    scope.spawn(move || {
                        // Same zombie discipline as the single-tree
                        // server: a failed session still takes both
                        // barrier waits and drains its mailboxes every
                        // frame, so writers and healthy sessions never
                        // stall on it.
                        // One optimistic reader per region, built before
                        // the first barrier wait (no writer is active
                        // yet): the frame loop below never takes a read
                        // lock.
                        let readers: Vec<_> =
                            self.regions.iter().map(|l| l.read().reader()).collect();
                        let mut run = catch_unwind(AssertUnwindSafe(|| {
                            LaneRun::start(i, spec, &self.grid, &readers)
                        }))
                        .map_err(|p| SessionOutcome::Failed(panic_message(p)));
                        for k in 0..steps {
                            barrier.wait(); // frame k opens; writers work
                            barrier.wait(); // frame k batches visible
                            let reports: Vec<Vec<NsiReport<D>>> = session_lanes[i]
                                .clone()
                                .map(|r| std::mem::take(&mut *mailboxes[i][r].lock()))
                                .collect();
                            let Ok(r) = &mut run else { continue };
                            if matches!(r.out.outcome, SessionOutcome::Failed(_)) {
                                continue;
                            }
                            let stepped = catch_unwind(AssertUnwindSafe(|| {
                                r.step_frame(&readers, &reports, k)
                            }));
                            match stepped {
                                Ok(Ok(Some(ns))) => {
                                    if let Some(h) = &drain_hist {
                                        h.record(ns);
                                    }
                                }
                                Ok(Ok(None)) => {}
                                Ok(Err(e)) => r.out.outcome.record_error(e),
                                Err(p) => {
                                    r.out.outcome = SessionOutcome::Failed(panic_message(p))
                                }
                            }
                        }
                        match run {
                            Ok(r) => r.finish(),
                            Err(outcome) => (
                                SessionOutput {
                                    outcome,
                                    ..SessionOutput::default()
                                },
                                vec![0; n],
                            ),
                        }
                    })
                })
                .collect();

            let writer_handles: Vec<_> = (0..n)
                .map(|r| {
                    let barrier = &barrier;
                    let mailboxes = &mailboxes;
                    let session_lanes = &session_lanes;
                    let is_pdq = &is_pdq;
                    let any_failed = &any_failed;
                    let hold_hist = hold_hist.clone();
                    scope.spawn(move || {
                        let mut w = RegionTally::default();
                        let mut reports: Vec<NsiReport<D>> = Vec::new();
                        for k in 0..steps {
                            barrier.wait();
                            if let Some(batch) = inserts.get(k) {
                                let routed = self.route_batch(r, batch);
                                if !routed.is_empty() && !w.failed() {
                                    reports.clear();
                                    self.apply_region_batch(
                                        r,
                                        &routed,
                                        &mut reports,
                                        &mut w,
                                        hold_hist.as_ref(),
                                    );
                                    if w.failed() {
                                        any_failed.store(true, Ordering::Relaxed);
                                    }
                                    for (i, lanes) in session_lanes.iter().enumerate() {
                                        if is_pdq[i] && lanes.contains(&r) {
                                            mailboxes[i][r].lock().extend(reports.iter().cloned());
                                        }
                                    }
                                    obs::trace(obs::TraceEvent::RegionRoute {
                                        region: r as u32,
                                        records: routed.len() as u32,
                                    });
                                }
                            }
                            barrier.wait();
                        }
                        w
                    })
                })
                .collect();

            // The durability participant: commit frame k's batch, then
            // take both waits — the first wait publishes the commit
            // before any region writer starts applying. A checkpoint,
            // when due, runs between the frame's second wait and the
            // next frame's first (writers parked, sessions latch-free).
            let durability_handle = durable.map(|log| {
                let barrier = &barrier;
                let any_failed = &any_failed;
                scope.spawn(move || {
                    let mut t = DurabilityTally::default();
                    for k in 0..steps {
                        if let Some(batch) = inserts.get(k) {
                            let committed = Instant::now();
                            log.commit_frame(k as u64, batch);
                            t.appends += 1;
                            t.commit_ns += committed.elapsed().as_nanos() as u64;
                        }
                        barrier.wait(); // frame k opens: batch is durable
                        barrier.wait(); // frame k applied in every region
                        if !any_failed.load(Ordering::Relaxed) && log.due_for_checkpoint() {
                            self.checkpoint_logical(log);
                            t.checkpoints += 1;
                        }
                    }
                    t
                })
            });

            let sessions: Vec<(SessionOutput, Vec<u64>)> = session_handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(p) => (
                        SessionOutput {
                            outcome: SessionOutcome::Failed(panic_message(p)),
                            ..SessionOutput::default()
                        },
                        vec![0; n],
                    ),
                })
                .collect();
            // Region writers never unwind past the barrier loop
            // (apply_region_batch absorbs storage errors); a panic here
            // would already have deadlocked the frame protocol, so a
            // plain expect is honest.
            let tallies: Vec<RegionTally> = writer_handles
                .into_iter()
                .map(|h| h.join().expect("region writer panicked"))
                .collect();
            let dur = durability_handle
                .map(|h| h.join().expect("durability thread panicked"))
                .unwrap_or_default();
            (sessions, tallies, dur)
        });

        self.assemble(steps, sessions, tallies, dur, self.epoch_totals() - epoch_start)
    }

    /// The single-threaded reference: identical protocol, identical
    /// per-region writer order (ascending region index), identical
    /// results — the oracle for the partitioned concurrency tests.
    pub fn serve_serial(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> PartitionedServeReport {
        let steps = self.step_count(specs, inserts);
        let n = self.regions.len();
        let epoch_start = self.epoch_totals();
        let is_pdq: Vec<bool> = specs.iter().map(|s| s.kind == SessionKind::Pdq).collect();
        let drain_hist = self.metrics.as_ref().map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));
        let mut tallies: Vec<RegionTally> = (0..n).map(|_| RegionTally::default()).collect();
        let durable = self.durability.as_deref();
        if let Some(log) = durable {
            self.ensure_initial_checkpoint(log);
        }
        let mut dur = DurabilityTally::default();
        // Same reader-based path as the concurrent serve: single-threaded
        // means every validation passes, so results are the oracle for it.
        let readers: Vec<_> = self.regions.iter().map(|l| l.read().reader()).collect();
        let mut runs: Vec<Result<LaneRun<'_, D>, SessionOutcome>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                catch_unwind(AssertUnwindSafe(|| {
                    LaneRun::start(i, s, &self.grid, &readers)
                }))
                .map_err(|p| SessionOutcome::Failed(panic_message(p)))
            })
            .collect();
        for k in 0..steps {
            let mut frame_reports: Vec<Vec<NsiReport<D>>> = vec![Vec::new(); n];
            if let Some(batch) = inserts.get(k) {
                // Same durable protocol as the concurrent serve: the
                // whole batch is one WAL record, committed before any
                // region apply.
                if let Some(log) = durable {
                    let committed = Instant::now();
                    log.commit_frame(k as u64, batch);
                    dur.appends += 1;
                    dur.commit_ns += committed.elapsed().as_nanos() as u64;
                }
                for (r, out) in frame_reports.iter_mut().enumerate() {
                    let routed = self.route_batch(r, batch);
                    if !routed.is_empty() && !tallies[r].failed() {
                        self.apply_region_batch(r, &routed, out, &mut tallies[r], hold_hist.as_ref());
                        obs::trace(obs::TraceEvent::RegionRoute {
                            region: r as u32,
                            records: routed.len() as u32,
                        });
                    }
                }
            }
            if let Some(log) = durable {
                let any_failed = tallies.iter().any(RegionTally::failed);
                if !any_failed && log.due_for_checkpoint() {
                    self.checkpoint_logical(log);
                    dur.checkpoints += 1;
                }
            }
            for (i, run) in runs.iter_mut().enumerate() {
                let Ok(r) = run else { continue };
                if matches!(r.out.outcome, SessionOutcome::Failed(_)) {
                    continue;
                }
                let reports: Vec<Vec<NsiReport<D>>> = r
                    .lanes
                    .clone()
                    .map(|reg| {
                        if is_pdq[i] {
                            frame_reports[reg].clone()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    r.step_frame(&readers, &reports, k)
                }));
                match stepped {
                    Ok(Ok(Some(ns))) => {
                        if let Some(h) = &drain_hist {
                            h.record(ns);
                        }
                    }
                    Ok(Ok(None)) => {}
                    Ok(Err(e)) => r.out.outcome.record_error(e),
                    Err(p) => r.out.outcome = SessionOutcome::Failed(panic_message(p)),
                }
            }
        }
        let sessions: Vec<(SessionOutput, Vec<u64>)> = runs
            .into_iter()
            .map(|run| match run {
                Ok(r) => r.finish(),
                Err(outcome) => (
                    SessionOutput {
                        outcome,
                        ..SessionOutput::default()
                    },
                    vec![0; n],
                ),
            })
            .collect();
        self.assemble(steps, sessions, tallies, dur, self.epoch_totals() - epoch_start)
    }

    /// Optimistic-read counters summed over every region's tree.
    fn epoch_totals(&self) -> EpochStats {
        let mut total = EpochStats::default();
        for lock in &self.regions {
            total += lock.read().epoch_stats();
        }
        total
    }

    /// Fold per-session and per-region tallies into the report,
    /// accumulate loads for rebalancing, and publish metrics.
    fn assemble(
        &self,
        steps: usize,
        sessions: Vec<(SessionOutput, Vec<u64>)>,
        tallies: Vec<RegionTally>,
        dur: DurabilityTally,
        retries: EpochStats,
    ) -> PartitionedServeReport {
        let mut regions: Vec<RegionReport> = tallies
            .into_iter()
            .enumerate()
            .map(|(r, t)| RegionReport {
                span: self.grid.span_of(r),
                inserts_applied: t.applied,
                writer_reads: t.reads,
                writer_writes: t.writes,
                session_reads: 0,
                writer_outcome: t.outcome,
            })
            .collect();
        let mut outputs = Vec::with_capacity(sessions.len());
        for (out, reads) in sessions {
            for (r, &count) in reads.iter().enumerate() {
                regions[r].session_reads += count;
            }
            outputs.push(out);
        }
        let mut writer_outcome = SessionOutcome::Ok;
        for rr in &regions {
            match &rr.writer_outcome {
                SessionOutcome::Ok => {}
                SessionOutcome::Degraded { errors } => {
                    for e in errors {
                        writer_outcome.record_error(e.clone());
                    }
                }
                SessionOutcome::Failed(msg) => {
                    writer_outcome = SessionOutcome::Failed(msg.clone());
                }
            }
        }
        let base = ServeReport {
            sessions: outputs,
            frames: steps,
            inserts_applied: regions.iter().map(|r| r.inserts_applied).sum(),
            writer_reads: regions.iter().map(|r| r.writer_reads).sum(),
            writer_writes: regions.iter().map(|r| r.writer_writes).sum(),
            writer_outcome,
            wal_appends: dur.appends,
            wal_commit_ns: dur.commit_ns,
            checkpoints: dur.checkpoints,
        };
        {
            let mut loads = self.loads.lock();
            for (r, rr) in regions.iter().enumerate() {
                loads[r] += rr.load();
            }
        }
        let report = PartitionedServeReport { base, regions };
        self.publish_run(&report, retries);
        report
    }

    /// Record a finished run's totals — single-tree names for the
    /// aggregate, `service.region{r}.*` labels for the breakdown.
    /// `retries` carries the run's optimistic-read counter deltas summed
    /// over regions (same names as the single-tree server).
    fn publish_run(&self, report: &PartitionedServeReport, retries: EpochStats) {
        let Some(reg) = &self.metrics else { return };
        reg.counter("tree.read_retries").add(retries.read_retries);
        reg.counter("tree.version_conflicts")
            .add(retries.version_conflicts);
        reg.counter("service.frames").add(report.base.frames as u64);
        reg.counter("service.inserts")
            .add(report.base.inserts_applied as u64);
        reg.counter("service.results")
            .add(report.base.total_results() as u64);
        reg.counter("service.writer.reads").add(report.base.writer_reads);
        reg.counter("service.writer.writes").add(report.base.writer_writes);
        reg.counter("service.session.reads")
            .add(report.base.total_stats().disk_accesses);
        if report.base.checkpoints > 0 {
            reg.counter("service.checkpoints").add(report.base.checkpoints);
        }
        for (r, rr) in report.regions.iter().enumerate() {
            reg.counter(&format!("service.region{r}.inserts"))
                .add(rr.inserts_applied as u64);
            reg.counter(&format!("service.region{r}.writer.reads"))
                .add(rr.writer_reads);
            reg.counter(&format!("service.region{r}.writer.writes"))
                .add(rr.writer_writes);
            reg.counter(&format!("service.region{r}.session.reads"))
                .add(rr.session_reads);
            reg.gauge(&format!("service.region{r}.load"))
                .set(rr.load() as i64);
        }
        for s in &report.base.sessions {
            reg.gauge("service.pdq.queue_hwm")
                .record_max(s.queue_hwm as i64);
            if s.discarded_subtrees > 0 {
                reg.counter("service.npdq.discarded").add(s.discarded_subtrees);
            }
            match &s.outcome {
                SessionOutcome::Ok => {}
                SessionOutcome::Degraded { errors } => {
                    reg.counter("service.sessions.degraded").add(1);
                    reg.counter("service.sessions.errors").add(errors.len() as u64);
                }
                SessionOutcome::Failed(_) => {
                    reg.counter("service.sessions.failed").add(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::RTreeConfig;
    use stkit::Rect;
    use storage::Pager;

    type R = NsiSegmentRecord<2>;

    fn line_records(n: u32) -> Vec<R> {
        (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect()
    }

    fn slide_spec(kind: SessionKind, frames: usize, span: f64) -> SessionSpec<2> {
        SessionSpec {
            kind,
            trajectory: crate::Trajectory::linear(
                Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
                [1.0, 0.0],
                Interval::new(0.0, span),
                2,
            ),
            frame_times: (0..=frames)
                .map(|k| span * k as f64 / frames as f64)
                .collect(),
        }
    }

    fn build(grid: RegionGrid, preload: &[R]) -> PartitionedDqServer<2, Pager> {
        PartitionedDqServer::build(grid, preload, |_| {
            RTree::new(Pager::new(), RTreeConfig::default())
        })
    }

    #[test]
    fn single_region_matches_single_tree_server_per_frame() {
        // 1-region partitioned serving delivers the same objects in the
        // same frames as DqServer (in-frame order may legally differ at
        // start-time ties, so compare frame sets).
        let recs = line_records(30);
        let spec = slide_spec(SessionKind::Pdq, 10, 30.0);
        let part = build(RegionGrid::single(), &recs);
        let p = part.serve(std::slice::from_ref(&spec), &[]);

        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for r in &recs {
            tree.insert(*r, r.seg.t.lo);
        }
        let mono = crate::DqServer::new(tree).serve(std::slice::from_ref(&spec), &[]);

        let frame_sets = |s: &SessionOutput| -> Vec<Vec<(u32, u32)>> {
            let mut off = 0;
            s.frames
                .iter()
                .map(|f| {
                    let mut set = s.results[off..off + f.results].to_vec();
                    off += f.results;
                    set.sort_unstable();
                    set
                })
                .collect()
        };
        assert_eq!(frame_sets(&p.sessions[0]), frame_sets(&mono.sessions[0]));
    }

    #[test]
    fn partitioned_parallel_equals_partitioned_serial() {
        let recs = line_records(40);
        let specs = vec![
            slide_spec(SessionKind::Pdq, 20, 40.0),
            slide_spec(SessionKind::Npdq, 20, 40.0),
        ];
        let inserts: Vec<Vec<(R, f64)>> = (0..20)
            .map(|k| {
                let t = 40.0 * k as f64 / 20.0;
                vec![(
                    R::new(1000 + k, 0, Interval::new(t, 100.0), [(t + 5.0) % 39.0, 0.5], [(t + 5.0) % 39.0, 0.5]),
                    t,
                )]
            })
            .collect();
        for cuts in [vec![20.0], vec![10.0, 20.0, 30.0]] {
            let grid = RegionGrid::from_cuts(0, cuts);
            let p = build(grid.clone(), &recs).serve(&specs, &inserts);
            let s = build(grid, &recs).serve_serial(&specs, &inserts);
            for (a, b) in p.sessions.iter().zip(&s.sessions) {
                assert_eq!(a.results, b.results);
            }
            assert_eq!(p.base.inserts_applied, s.base.inserts_applied);
            assert_eq!(p.base.writer_reads, s.base.writer_reads);
            assert_eq!(p.base.writer_writes, s.base.writer_writes);
        }
    }

    #[test]
    fn seam_straddler_is_replicated_but_delivered_once() {
        // One object moving ACROSS the cut at x = 5: its segment bbox
        // touches both regions, so both trees store it — yet the PDQ
        // merge must deliver exactly one entry event.
        let straddler = R::new(9, 0, Interval::new(0.0, 10.0), [4.0, 0.5], [6.0, 0.5]);
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &[straddler]);
        assert_eq!(server.region_record_counts(), vec![1, 1], "replicated");
        let spec = slide_spec(SessionKind::Pdq, 10, 10.0);
        let report = server.serve(&[spec], &[]);
        assert_eq!(report.sessions[0].results, vec![(9, 0)], "exactly once");
    }

    #[test]
    fn insert_replication_counts_per_region() {
        // A live insert straddling the seam applies in both regions:
        // inserts_applied counts physical inserts.
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &[]);
        let batch = vec![
            (R::new(1, 0, Interval::new(0.0, 10.0), [4.5, 0.5], [5.5, 0.5]), 0.0),
            (R::new(2, 0, Interval::new(0.0, 10.0), [1.0, 0.5], [2.0, 0.5]), 0.0),
        ];
        let report = server.serve(&[], &[batch]);
        assert_eq!(report.base.inserts_applied, 3, "straddler counts twice");
        assert_eq!(report.regions[0].inserts_applied, 2);
        assert_eq!(report.regions[1].inserts_applied, 1);
    }

    #[test]
    fn per_region_reads_reconcile_with_level_counters() {
        let recs = line_records(40);
        let specs = vec![
            slide_spec(SessionKind::Pdq, 10, 40.0),
            slide_spec(SessionKind::Npdq, 10, 40.0),
        ];
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                vec![(
                    R::new(500 + k, 0, Interval::new(0.0, 100.0), [k as f64 + 0.25, 0.5], [k as f64 + 0.25, 0.5]),
                    k as f64,
                )]
            })
            .collect();
        let server = build(RegionGrid::from_cuts(0, vec![13.0, 27.0]), &recs);
        // Baseline after preload: build()'s inserts also read nodes.
        let preload: Vec<_> = (0..3)
            .map(|r| server.with_region_tree(r, |t| t.level_counters().snapshot()))
            .collect();
        let report = server.serve(&specs, &inserts);
        for r in 0..3 {
            let delta = server.with_region_tree(r, |t| t.level_counters().snapshot()) - preload[r];
            assert_eq!(
                delta.total_reads(),
                report.regions[r].session_reads + report.regions[r].writer_reads,
                "region {r} read identity"
            );
            assert_eq!(delta.total_writes(), report.regions[r].writer_writes);
        }
    }

    /// Per-frame batches that all land strictly inside region 0 of a
    /// cut-at-25 grid: writer reads+writes pile load onto that region.
    fn region0_inserts(frames: usize) -> Vec<Vec<(R, f64)>> {
        (0..frames)
            .map(|k| {
                let t = k as f64;
                vec![(
                    R::new(
                        200 + k as u32,
                        0,
                        Interval::new(t, 100.0),
                        [t + 0.25, 0.5],
                        [t + 0.25, 0.5],
                    ),
                    t,
                )]
            })
            .collect()
    }

    #[test]
    fn loads_accumulate_and_hotspot_flags_skew() {
        let recs = line_records(30);
        let server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        assert_eq!(server.hotspot(2.0), None, "no load yet");
        // Query sweeps [0, 25] and every insert lands left of the cut:
        // region 0 does nearly all the work.
        let spec = slide_spec(SessionKind::Pdq, 10, 24.0);
        server.serve(&[spec], &region0_inserts(10));
        let loads = server.region_loads();
        assert!(loads[0] > 0);
        assert!(loads[0] > 2 * loads[1].max(1), "loads {loads:?}");
        assert_eq!(server.hotspot(1.5), Some(0));
    }

    #[test]
    fn rebalance_recuts_and_preserves_results() {
        let recs = line_records(30);
        let spec = slide_spec(SessionKind::Pdq, 10, 24.0);
        let mut server = build(RegionGrid::from_cuts(0, vec![25.0]), &recs);
        server.serve(std::slice::from_ref(&spec), &region0_inserts(10));
        server.rebalance(2, |_| RTree::new(Pager::new(), RTreeConfig::default()));
        assert_eq!(server.grid().len(), 2);
        let cut = server.grid().cuts()[0];
        assert!(cut < 25.0, "cut moved into the hot slab, got {cut}");
        assert_eq!(server.region_loads(), vec![0, 0], "loads reset");
        // Oracle: a fresh server under the OLD grid with every record —
        // including the ones inserted live above — preloaded. Delivery
        // frames and the (start, oid, seq) merge order are both
        // layout-independent, so result sequences must match exactly.
        let mut all = recs.clone();
        for batch in region0_inserts(10) {
            for (r, _) in batch {
                all.push(r);
            }
        }
        let oracle =
            build(RegionGrid::from_cuts(0, vec![25.0]), &all).serve(std::slice::from_ref(&spec), &[]);
        let after = server.serve(std::slice::from_ref(&spec), &[]);
        assert_eq!(after.sessions[0].results, oracle.sessions[0].results);
    }

    #[test]
    fn zombie_session_does_not_stall_partitioned_serve() {
        // An empty-schedule session among healthy ones plus per-frame
        // inserts: the barrier protocol must complete.
        let recs = line_records(10);
        let mut dead = slide_spec(SessionKind::Pdq, 10, 10.0);
        dead.frame_times = vec![0.0]; // zero steps
        let specs = vec![slide_spec(SessionKind::Pdq, 10, 10.0), dead];
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                vec![(
                    R::new(100 + k, 0, Interval::new(0.0, 100.0), [k as f64 + 0.1, 0.5], [k as f64 + 0.1, 0.5]),
                    k as f64,
                )]
            })
            .collect();
        let server = build(RegionGrid::from_cuts(0, vec![5.0]), &recs);
        let report = server.serve(&specs, &inserts);
        assert_eq!(report.base.frames, 10);
        assert!(report.sessions[0].results.len() >= 10);
        assert!(report.sessions[1].results.is_empty());
    }
}
