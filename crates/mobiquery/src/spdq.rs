//! Semi-Predictive Dynamic Queries (§4).
//!
//! "In SPDQ, the trajectory of the user is allowed to deviate from the
//! predicted trajectory by some δ(t) … SPDQ can be easily implemented
//! using the PDQ algorithms, but it will result in each snapshot query
//! being 'larger' than the corresponding simple PDQ one."
//!
//! The engine is literally [`crate::PdqEngine`] over the δ-inflated
//! trajectory; what this module adds is the bookkeeping that makes the
//! deviation bound *checkable*: given the observer's actual window at
//! time `t`, [`SpdqSession::covers`] verifies it is still within the
//! inflated window, i.e. the PDQ run remains a superset of the truth and
//! results can be filtered client-side rather than re-queried.

use crate::pdq::{PdqEngine, PdqResult};
use crate::trajectory::Trajectory;
use rtree::{NsiSegmentRecord, RTree};
use storage::PageStore;
use stkit::{Rect, Scalar};

/// A running semi-predictive dynamic query.
#[derive(Debug)]
pub struct SpdqSession<const D: usize> {
    /// The predicted (un-inflated) trajectory.
    predicted: Trajectory<D>,
    /// Deviation allowance δ.
    delta: Scalar,
    /// PDQ engine over the inflated trajectory.
    engine: PdqEngine<D>,
}

impl<const D: usize> SpdqSession<D> {
    /// Start an SPDQ: PDQ over `predicted.inflate(delta)`.
    pub fn start<S: PageStore>(
        tree: &RTree<NsiSegmentRecord<D>, S>,
        predicted: Trajectory<D>,
        delta: Scalar,
    ) -> Self {
        assert!(delta >= 0.0, "deviation bound must be non-negative");
        let engine = PdqEngine::start(tree, predicted.inflate(delta));
        SpdqSession {
            predicted,
            delta,
            engine,
        }
    }

    /// The deviation allowance δ.
    pub fn delta(&self) -> Scalar {
        self.delta
    }

    /// The predicted trajectory (before inflation).
    pub fn predicted(&self) -> &Trajectory<D> {
        &self.predicted
    }

    /// Access the underlying PDQ engine (stats, notify, …).
    pub fn engine_mut(&mut self) -> &mut PdqEngine<D> {
        &mut self.engine
    }

    /// True iff an observer whose *actual* window at time `t` is
    /// `actual` is still covered by this session: every point of the
    /// actual window lies in the inflated window, so the PDQ stream is a
    /// superset of the objects actually visible. When this returns false
    /// the session must be restarted (the NPDQ hand-off of §4).
    pub fn covers(&self, t: Scalar, actual: &Rect<D>) -> bool {
        self.predicted
            .window_at(t)
            .inflate(self.delta)
            .contains_rect(actual)
    }

    /// Fetch everything becoming visible in `[t_start, t_end]` under the
    /// inflated window, then filter to the observer's *actual* window at
    /// `t_end` — the client-side refinement step. Objects in the inflated
    /// margin but not currently visible are returned in the second list
    /// (the client keeps them cached; they may become visible).
    #[allow(clippy::type_complexity)]
    pub fn frame<S: PageStore>(
        &mut self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        t_start: Scalar,
        t_end: Scalar,
        actual: &Rect<D>,
    ) -> (Vec<PdqResult<D>>, Vec<PdqResult<D>>) {
        let all = self.engine.drain_window(tree, t_start, t_end);
        let mut visible = Vec::new();
        let mut margin = Vec::new();
        for r in all {
            let pos = r.record.seg.position_clamped(t_end);
            if actual.contains_point(&pos) {
                visible.push(r);
            } else {
                margin.push(r);
            }
        }
        (visible, margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn line_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    fn slide(span: f64) -> Trajectory<2> {
        Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        )
    }

    #[test]
    fn spdq_superset_of_pdq() {
        let tree = line_tree(50);
        let mut pdq = PdqEngine::start(&tree, slide(50.0));
        let mut spdq = SpdqSession::start(&tree, slide(50.0), 1.0);
        let p: Vec<u32> = pdq
            .drain_window(&tree, 0.0, 50.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        let s: Vec<u32> = spdq
            .engine_mut()
            .drain_window(&tree, 0.0, 50.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        assert!(s.len() >= p.len(), "inflated window sees at least as much");
        for oid in &p {
            assert!(s.contains(oid));
        }
    }

    #[test]
    fn covers_checks_deviation_bound() {
        let tree = line_tree(10);
        let spdq = SpdqSession::start(&tree, slide(10.0), 0.5);
        // Predicted window at t=2 is [2,3]×[0,1]; actual deviated by 0.4.
        let ok = Rect::from_corners([2.4, 0.0], [3.4, 1.0]);
        assert!(spdq.covers(2.0, &ok));
        // Deviation 0.9 > δ: not covered.
        let bad = Rect::from_corners([2.9, 0.0], [3.9, 1.0]);
        assert!(!spdq.covers(2.0, &bad));
    }

    #[test]
    fn frame_splits_visible_and_margin() {
        let tree = line_tree(50);
        let mut spdq = SpdqSession::start(&tree, slide(50.0), 2.0);
        // At t = 5 the actual window deviates by +1 from the prediction.
        let actual = Rect::from_corners([6.0, 0.0], [7.0, 1.0]);
        let (visible, margin) = spdq.frame(&tree, 0.0, 5.0, &actual);
        // Object 6 is at x = 6.5 — inside the actual window.
        assert!(visible.iter().any(|r| r.record.oid == 6));
        // Everything in visible really is inside the actual window now.
        for r in &visible {
            let p = r.record.seg.position_clamped(5.0);
            assert!(actual.contains_point(&p));
        }
        // Margin objects were fetched but are not currently visible.
        for r in &margin {
            let p = r.record.seg.position_clamped(5.0);
            assert!(!actual.contains_point(&p));
        }
        assert!(!margin.is_empty(), "inflation must fetch margin objects");
    }

    #[test]
    fn spdq_cost_grows_with_delta() {
        let tree = line_tree(200);
        let run = |delta: f64| {
            let mut s = SpdqSession::start(&tree, slide(100.0), delta);
            let _ = s.engine_mut().drain_window(&tree, 0.0, 100.0);
            s.engine_mut().stats()
        };
        let small = run(0.1);
        let big = run(10.0);
        assert!(
            big.results > small.results,
            "larger δ retrieves more objects"
        );
        assert!(big.distance_computations >= small.distance_computations);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delta_rejected() {
        let tree = line_tree(5);
        let _ = SpdqSession::start(&tree, slide(5.0), -1.0);
    }
}
