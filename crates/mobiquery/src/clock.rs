//! Per-region frame clocks: the watermark protocol that replaced the
//! global frame barrier.
//!
//! Until PR 8 every serving path — [`crate::DqServer`],
//! [`crate::PartitionedDqServer`], and the durability thread — met at
//! one `std::sync::Barrier` twice per frame. Correct, but the slowest
//! session stalled the world, a failed session had to be kept alive as
//! a barrier-parked zombie, and a grid recut needed `&mut self` between
//! serves. A [`FrameClock`] per region dissolves that rendezvous into
//! three monotonic watermarks plus per-session consumption cursors:
//!
//! * `committed` — frames whose insert batch is WAL-durable. Advanced by
//!   the durability participant; a region's writer waits on it before
//!   applying, so *commit happens-before apply* exactly as under the
//!   barrier (chaos_g–j's contract).
//! * `applied` — frames whose batch is visible in this region's tree.
//!   Advanced by the region's writer; a session reads frame `k` only
//!   after `applied` covers `k`, and only on the clocks of the regions
//!   its query touches.
//! * `acks[i]` — how far session `i` permits this region's writer to
//!   run. The writer applies batch `k` only once every *live, attached*
//!   session has acknowledged it, i.e. finished reading frame `k - 1`
//!   (or, at its join frame, finished building its engines against the
//!   pre-batch tree; a not-yet-joined session's frontier already sits
//!   at its join frame, so it never gates earlier batches).
//!
//! The ack cursors are the load-bearing subtlety: the tree readers are
//! optimistic seqlock grades with no multi-version store, so a reader
//! can never observe a *previous* tree version once the writer mutates.
//! Flow control closes that gap — within one region, the writer and the
//! attached readers alternate (writer at most one frame ahead), so
//! every optimistic validation passes, read-retry counters stay zero,
//! and the concurrent serve stays *bitwise* equal to the serial
//! reference. Isolation comes from the *per-region* scope: a stalled
//! session back-pressures only the regions its lanes touch, every other
//! region's writer and sessions run at full speed (the
//! `exp_service_straggler` figure), and a failed session [`FrameClock::detach`]es
//! instead of zombie-parking.
//!
//! Invariant, per region, whenever durability is attached:
//! `committed >= applied >= min(acks) - 1`. Watermarks count *completed
//! frames* (`applied == n` means batches `0..n` are visible), so frame
//! `k` is readable once `applied >= k + 1`.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Liveness flags shared by every clock of one serve: `false` means the
/// session has detached (failed or finished) and no writer may wait on
/// it again — on *any* region, including regions of epochs created
/// after the detach.
#[derive(Debug)]
pub struct SessionLiveness {
    flags: Vec<AtomicBool>,
}

impl SessionLiveness {
    /// All `n` sessions start live.
    pub fn new(n: usize) -> Arc<SessionLiveness> {
        Arc::new(SessionLiveness {
            flags: (0..n).map(|_| AtomicBool::new(true)).collect(),
        })
    }

    /// Whether session `i` is still attached to its clocks.
    pub fn is_live(&self, i: usize) -> bool {
        self.flags[i].load(Ordering::Acquire)
    }

    fn mark_dead(&self, i: usize) {
        self.flags[i].store(false, Ordering::Release);
    }
}

/// The clock's mutable half, guarded by one mutex per region. All waits
/// are condvar loops on this state; the hot paths (watermark already
/// past, ack already granted) return without sleeping.
#[derive(Debug)]
struct ClockInner {
    /// Frames whose batch is WAL-durable (`u64::MAX` when the serve has
    /// no durability participant, so writers never wait on it).
    committed: u64,
    /// Frames whose batch is visible in this region's tree.
    applied: u64,
    /// Per-session permit frontier: session `i` allows batches `< acks[i]`.
    acks: Vec<u64>,
}

/// One region's epoch clock. See the module docs for the protocol.
pub struct FrameClock {
    /// Static attach table: `windows[i] = Some((first, last))` is the
    /// inclusive global-frame range session `i` consumes on this region
    /// (`None`: the session never touches this region). Computed up
    /// front from the specs, so writer waits are deterministic.
    windows: Vec<Option<(u64, u64)>>,
    live: Arc<SessionLiveness>,
    inner: Mutex<ClockInner>,
    cv: Condvar,
}

impl FrameClock {
    /// A clock whose watermarks start at global frame `start` (0 for a
    /// whole serve; the recut frame for an epoch installed mid-serve —
    /// the new trees already contain every batch `< start`). `durable`
    /// arms the `committed` watermark; without it writers never wait on
    /// commit. Each attached session's ack frontier starts at its window
    /// start: the writer is blocked from the session's first frame until
    /// the session has built its engines against the pre-batch tree.
    pub fn new(windows: Vec<Option<(u64, u64)>>, live: Arc<SessionLiveness>, start: u64, durable: bool) -> FrameClock {
        assert_eq!(windows.len(), live.flags.len(), "one window per session");
        let acks = windows
            .iter()
            .map(|w| w.map_or(u64::MAX, |(first, _)| first.max(start)))
            .collect();
        FrameClock {
            windows,
            live,
            inner: Mutex::new(ClockInner {
                committed: if durable { start } else { u64::MAX },
                applied: start,
                acks,
            }),
            cv: Condvar::new(),
        }
    }

    /// `(committed, applied)` right now — for invariant checks and the
    /// `frame_lag` gauge. `committed` is `u64::MAX` without durability.
    pub fn watermarks(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.committed, inner.applied)
    }

    /// Durability participant: frames `0..n` are now WAL-durable.
    pub fn advance_committed(&self, n: u64) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.committed == u64::MAX || n >= inner.committed, "committed is monotone");
        if inner.committed != u64::MAX && n > inner.committed {
            inner.committed = n;
            self.cv.notify_all();
        }
    }

    /// Region writer: block until batch `k` is WAL-durable (no-op on a
    /// clock without durability). Returns nanoseconds spent waiting.
    pub fn wait_committed(&self, k: u64) -> u64 {
        let mut inner = self.inner.lock();
        if inner.committed > k {
            return 0;
        }
        let started = Instant::now();
        while inner.committed <= k {
            self.cv.wait(&mut inner);
        }
        started.elapsed().as_nanos() as u64
    }

    /// Region writer: frames `0..n` are now visible in this region's
    /// tree. Returns the region's *frame lag* — how many frames the tree
    /// is ahead of its slowest live attached consumer (0 when none is
    /// attached), the quantity the `frame_lag` gauge publishes.
    pub fn advance_applied(&self, n: u64) -> u64 {
        let mut inner = self.inner.lock();
        debug_assert!(n >= inner.applied, "applied is monotone");
        inner.applied = n;
        let lag = self
            .attached(&inner, |_, _| true)
            .map(|(i, _)| n.saturating_sub(inner.acks[i].saturating_sub(1)))
            .max()
            .unwrap_or(0);
        self.cv.notify_all();
        lag
    }

    /// Session: block until frame `k` is readable (`applied >= k + 1`
    /// when `k` is a frame index — callers pass the watermark value
    /// directly, i.e. `wait_applied(k + 1)` to read frame `k`, or
    /// `wait_applied(j)` to see the pre-join tree state). Returns
    /// nanoseconds spent waiting.
    pub fn wait_applied(&self, n: u64) -> u64 {
        let mut inner = self.inner.lock();
        if inner.applied >= n {
            return 0;
        }
        let started = Instant::now();
        while inner.applied < n {
            self.cv.wait(&mut inner);
        }
        started.elapsed().as_nanos() as u64
    }

    /// Session `i`: permit this region's writer to apply batches `< upto`.
    /// Called with `first + 1` once the session's engines exist, then
    /// `k + 2` after each consumed frame `k`.
    pub fn ack(&self, i: usize, upto: u64) {
        let mut inner = self.inner.lock();
        if upto > inner.acks[i] {
            inner.acks[i] = upto;
            self.cv.notify_all();
        }
    }

    /// Session `i` is done with this region (schedule finished, epoch
    /// handed off is *not* a detach — only failure or end-of-life is):
    /// writers stop waiting on it everywhere, immediately. Idempotent.
    pub fn detach(&self, i: usize) {
        self.live.mark_dead(i);
        // Take the lock so a writer mid-predicate-check cannot miss the
        // flag flip, then wake everyone.
        let _inner = self.inner.lock();
        self.cv.notify_all();
    }

    /// Region writer: block until *every* live attached session has
    /// acknowledged batch `k` — no window scoping. A session before its
    /// join frame passes vacuously (its ack frontier starts at its
    /// window's first frame), and a completed session's final
    /// `ack(last + 2)` covers every batch through `last + 1`, with
    /// `detach` following immediately for anything beyond. The predicate
    /// deliberately ignores the windows: writers skip this wait entirely
    /// for frames that route nothing to their region, so a window-scoped
    /// rule ("consult sessions whose window contains `k`") would let a
    /// writer whose next non-empty batch lies past a slow session's
    /// window apply it while that session is still reading its last
    /// frame. Returns nanoseconds spent waiting.
    pub fn wait_ready(&self, k: u64) -> u64 {
        let mut inner = self.inner.lock();
        let ready = |inner: &ClockInner| {
            self.attached(inner, |_, _| true)
                .all(|(i, _)| inner.acks[i] > k)
        };
        if ready(&inner) {
            return 0;
        }
        let started = Instant::now();
        while !ready(&inner) {
            self.cv.wait(&mut inner);
        }
        started.elapsed().as_nanos() as u64
    }

    /// Epoch-handoff coordinator: block until every live attached
    /// session has fully consumed its window on this region (acked past
    /// its last frame) — after which no reader will ever touch this
    /// region's tree again and it can be retired. Returns nanoseconds
    /// spent waiting.
    pub fn wait_drained(&self) -> u64 {
        let mut inner = self.inner.lock();
        let drained = |inner: &ClockInner| {
            self.attached(inner, |_, _| true)
                .all(|(i, (_, last))| inner.acks[i] > last + 1)
        };
        if drained(&inner) {
            return 0;
        }
        let started = Instant::now();
        while !drained(&inner) {
            self.cv.wait(&mut inner);
        }
        started.elapsed().as_nanos() as u64
    }

    /// Live attached sessions whose window passes `keep`.
    fn attached<'a>(
        &'a self,
        _inner: &'a ClockInner,
        keep: impl Fn(u64, u64) -> bool + 'a,
    ) -> impl Iterator<Item = (usize, (u64, u64))> + 'a {
        self.windows.iter().enumerate().filter_map(move |(i, w)| {
            let (first, last) = (*w)?;
            (self.live.is_live(i) && keep(first, last)).then_some((i, (first, last)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn clock(windows: Vec<Option<(u64, u64)>>, durable: bool) -> (FrameClock, Arc<SessionLiveness>) {
        let live = SessionLiveness::new(windows.len());
        (FrameClock::new(windows, Arc::clone(&live), 0, durable), live)
    }

    #[test]
    fn writer_blocks_until_session_acks_then_session_blocks_on_applied() {
        let (clock, _) = clock(vec![Some((0, 4))], false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for k in 0..5u64 {
                    clock.wait_ready(k);
                    clock.advance_applied(k + 1);
                }
            });
            // Engine creation handshake, then the frame loop.
            clock.ack(0, 1);
            for k in 0..5u64 {
                clock.wait_applied(k + 1);
                let (_, applied) = clock.watermarks();
                // Flow control: the writer is at most one frame ahead.
                assert!(applied > k && applied <= k + 2, "applied {applied} at frame {k}");
                clock.ack(0, k + 2);
            }
            writer.join().unwrap();
        });
        assert_eq!(clock.watermarks().1, 5);
    }

    #[test]
    fn detached_session_releases_the_writer() {
        let (clock, _) = clock(vec![Some((0, 9)), Some((0, 9))], false);
        clock.ack(0, 1);
        // Session 1 never acks — it "fails" instead.
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| clock.wait_ready(0));
            std::thread::sleep(Duration::from_millis(20));
            clock.detach(1);
            writer.join().unwrap();
        });
        assert!(clock.wait_ready(0) == 0, "detach is permanent");
    }

    #[test]
    fn join_frontier_scopes_the_writer_wait() {
        // Session joins at frame 3: its ack frontier starts there, so
        // batches 0..3 need no permit.
        let (clock, _) = clock(vec![Some((3, 6))], false);
        assert_eq!(clock.wait_ready(0), 0);
        assert_eq!(clock.wait_ready(2), 0);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for k in 0..3 {
                    clock.wait_ready(k);
                    clock.advance_applied(k + 1);
                }
                clock.wait_ready(3); // blocked on the joiner's handshake
                clock.advance_applied(4);
            });
            // The joiner sees exactly the pre-join state: applied == 3.
            clock.wait_applied(3);
            assert_eq!(clock.watermarks().1, 3);
            clock.ack(0, 4);
            writer.join().unwrap();
        });
    }

    #[test]
    fn committed_gates_the_writer_only_when_durable() {
        let (free, _) = clock(vec![], false);
        assert_eq!(free.wait_committed(100), 0, "no durability: never waits");
        let (durable, _) = clock(vec![], true);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| durable.wait_committed(0));
            std::thread::sleep(Duration::from_millis(10));
            durable.advance_committed(1);
            writer.join().unwrap();
        });
        assert_eq!(durable.watermarks().0, 1);
    }

    #[test]
    fn drained_means_every_window_fully_acked() {
        let (clock, _) = clock(vec![Some((0, 1)), None], false);
        clock.ack(0, 2); // consumed frame 0, still owes frame 1
        std::thread::scope(|scope| {
            let coord = scope.spawn(|| clock.wait_drained());
            std::thread::sleep(Duration::from_millis(10));
            clock.ack(0, 3); // consumed frame 1 == window end
            coord.join().unwrap();
        });
    }

    #[test]
    fn frame_lag_tracks_slowest_live_consumer() {
        let (clock, _) = clock(vec![Some((0, 9)), Some((0, 9))], false);
        clock.ack(0, 1);
        clock.ack(1, 1);
        assert_eq!(clock.advance_applied(1), 1, "one frame ahead of both");
        clock.ack(0, 3); // session 0 consumed frame 1
        assert_eq!(clock.advance_applied(2), 2, "session 1 is 2 behind");
        clock.detach(1);
        assert_eq!(clock.advance_applied(3), 1, "dead sessions don't lag");
    }
}
