//! Non-Predictive Dynamic Queries (§4.2).
//!
//! The trajectory is unknown; the engine evaluates each snapshot query as
//! it arrives but remembers the previous one (`P`). A node `R` is
//! **discardable** for the current query `Q` iff `(Q ∩ R) ⊆ P` (Lemma 1):
//! everything of `R` that `Q` could retrieve was already retrieved by `P`.
//!
//! Plain NSI makes discardability useless (consecutive snapshots never
//! overlap temporally), so the engine runs over the **double-temporal-
//! axes** index (Fig. 5(b)): motion validity start/end are independent
//! axes, data lives above the 45° line, and a snapshot query is a
//! quadrant-shaped region — consecutive quadrants genuinely contain each
//! other's overlap.
//!
//! Update management uses node timestamps (§4.2): every insertion stamps
//! its path; when a visited node's timestamp is newer than the time the
//! previous query ran, the previous query's result can no longer be
//! trusted for that subtree and the engine falls back to the plain
//! overlap test there.

use crate::layout::MotionRecord;
use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use rtree::{Key, TreeRead};
use storage::{PageId, StorageError};

/// The NPDQ query processor: one instance per dynamic query session.
///
/// ```
/// use mobiquery::{NpdqEngine, SnapshotQuery};
/// use rtree::{DtaSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// tree.insert(
///     DtaSegmentRecord::new(1, 0, Interval::new(0.0, 100.0), [3.0, 3.0], [3.0, 3.0]),
///     0.0,
/// );
/// let mut npdq = NpdqEngine::new();
/// let window = Rect::from_corners([0.0, 0.0], [5.0, 5.0]);
/// // First snapshot returns the object…
/// let mut got = Vec::new();
/// npdq.execute(&tree, &SnapshotQuery::open_from(window, 1.0), 0.5, |r| got.push(r.oid));
/// assert_eq!(got, vec![1]);
/// // …the next (unchanged) snapshot returns nothing new.
/// got.clear();
/// npdq.execute(&tree, &SnapshotQuery::open_from(window, 1.1), 0.5, |r| got.push(r.oid));
/// assert!(got.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct NpdqEngine<const D: usize> {
    /// Previous snapshot query and the logical time at which it ran.
    prev: Option<(SnapshotQuery<D>, f64)>,
    /// Disable the discardability optimization entirely (then every
    /// snapshot is evaluated naively) — lets benches measure the no-harm
    /// property at 0 % overlap.
    pub use_discard: bool,
    /// Reusable traversal stack, so per-frame executions in a serving
    /// loop don't allocate frame over frame.
    stack: Vec<PageId>,
    /// Internal entries pruned by Lemma 1 since the engine started — the
    /// whole point of NPDQ; `discard_rate` is the headline number.
    discarded_subtrees: u64,
    /// Internal entries that overlapped the query (the discard check's
    /// denominator).
    candidate_subtrees: u64,
    /// SoA staging of one node page's internal-entry keys (scratch): the
    /// overlap and Lemma-1 tests evaluate branch-free across all lanes.
    batch: KeyBatch,
}

impl<const D: usize> Default for NpdqEngine<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> NpdqEngine<D> {
    /// A fresh session: the first query runs as a plain snapshot query.
    pub fn new() -> Self {
        NpdqEngine {
            prev: None,
            use_discard: true,
            stack: Vec::new(),
            discarded_subtrees: 0,
            candidate_subtrees: 0,
            batch: KeyBatch::default(),
        }
    }

    /// Subtrees pruned by the §4.2 discardability test since the engine
    /// started.
    pub fn discarded_subtrees(&self) -> u64 {
        self.discarded_subtrees
    }

    /// Fraction of query-overlapping subtrees the discardability test
    /// pruned (0.0 when nothing has been considered yet).
    pub fn discard_rate(&self) -> f64 {
        if self.candidate_subtrees == 0 {
            0.0
        } else {
            self.discarded_subtrees as f64 / self.candidate_subtrees as f64
        }
    }

    /// Forget the previous query (e.g. after the observer teleports).
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// True iff a previous query is available for discarding.
    pub fn has_previous(&self) -> bool {
        self.prev.is_some()
    }

    /// Evaluate snapshot `q`, emitting only objects **not** returned by
    /// the previous snapshot. `now` is the logical clock used to compare
    /// against node modification timestamps (use the tree's insertion
    /// clock; any monotone scalar works).
    ///
    /// Generic over the index layout ([`MotionRecord`]): run it over the
    /// double-temporal-axes tree (the paper's choice, Fig. 5(b)) or the
    /// plain NSI tree with open-ended queries (Fig. 5(a)).
    pub fn execute<R: MotionRecord<D>, T: TreeRead<R> + ?Sized>(
        &mut self,
        tree: &T,
        q: &SnapshotQuery<D>,
        now: f64,
        emit: impl FnMut(&R),
    ) -> QueryStats {
        self.try_execute(tree, q, now, emit)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Fallible form of [`Self::execute`]: a device fault mid-descent
    /// surfaces as `Err` carrying the failing page. Objects emitted
    /// before the fault are valid answers of `q`; the previous-query
    /// state is **not** advanced (partial coverage cannot serve as the
    /// discard baseline), so re-executing a later snapshot will re-derive
    /// the delta against the last *completed* query — possibly re-emitting
    /// some of this frame's partial results, never losing any.
    pub fn try_execute<R: MotionRecord<D>, T: TreeRead<R> + ?Sized>(
        &mut self,
        tree: &T,
        q: &SnapshotQuery<D>,
        now: f64,
        mut emit: impl FnMut(&R),
    ) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::default();
        let qkey = R::query_key(q);
        let prev = if self.use_discard { self.prev } else { None };
        let pkey = prev.map(|(p, clock)| (p, R::query_key(&p), clock));

        // Depth-first traversal; the stack is engine-owned scratch, reused
        // across per-frame executions.
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        stack.push(tree.root_page());
        while let Some(page) = stack.pop() {
            // Zero-copy visit: header parsed once, entries decoded lazily.
            let node = match tree.try_read_node(page) {
                Ok(node) => node,
                Err(e) => {
                    // Abandon the traversal but return the scratch stack
                    // to the engine; `self.prev` stays at the last
                    // completed query.
                    stack.clear();
                    self.stack = stack;
                    return Err(e);
                }
            };
            stats.disk_accesses += 1;
            if node.level() == 0 {
                stats.leaf_accesses += 1;
            }
            // §4.2 timestamp check: if this node was modified after the
            // previous query ran, its children may contain unseen data —
            // the previous query cannot be used to discard them.
            let clean = match &pkey {
                Some((_, _, pclock)) => node.timestamp() <= *pclock,
                None => false,
            };
            if node.is_leaf() {
                for rec in node.leaf_records() {
                    stats.distance_computations += 1;
                    if !rec.key().overlaps(&qkey) || !q.matches_segment(rec.segment()) {
                        continue;
                    }
                    // Already returned by the previous query?
                    if clean {
                        if let Some((p, _)) = &prev {
                            if p.matches_segment(rec.segment()) {
                                continue;
                            }
                        }
                    }
                    stats.results += 1;
                    emit(&rec);
                }
            } else {
                // Stage all entry keys, then evaluate the overlap and
                // Lemma-1 masks branch-free across every lane at once;
                // the masks equal the scalar `key.overlaps(&qkey)` /
                // `discardable(pk, &qkey, &key)` tests exactly.
                self.batch.clear();
                for (key, child) in node.internal_entries() {
                    stats.distance_computations += 1;
                    self.batch.push(&key, child);
                }
                let pdiscard = if clean { pkey.as_ref().map(|(_, pk, _)| pk) } else { None };
                self.batch.solve(&qkey, pdiscard);
                for j in 0..self.batch.len() {
                    if !self.batch.overlap[j] {
                        continue;
                    }
                    self.candidate_subtrees += 1;
                    if pdiscard.is_some() && self.batch.discard[j] {
                        // Pruned without loading: the I/O the previous
                        // query paid for.
                        self.discarded_subtrees += 1;
                        obs::trace(obs::TraceEvent::QueueOp {
                            op: obs::QueueOpKind::Discard,
                            depth: stack.len() as u32,
                        });
                        continue;
                    }
                    stack.push(self.batch.children[j]);
                }
            }
        }
        self.stack = stack;
        self.prev = Some((*q, now));
        Ok(stats)
    }
}

/// Lemma 1: `R` is discardable iff `(Q ∩ R) ⊆ P`, for any key layout.
pub fn discardable<K: Key>(p: &K, q: &K, r: &K) -> bool {
    p.contains(&q.intersect(r))
}

/// Struct-of-arrays staging for one node page's internal-entry keys.
///
/// Bounds are stored axis-major (`axes_lo[a][j]` is entry `j`'s lower
/// bound on axis `a`), so the per-axis inner loops below are pure
/// compare/select lanes over contiguous `f64`s — the same layout the
/// geometry kernels in `stkit::batch` use. The masks computed by
/// [`KeyBatch::solve`] equal the scalar tests entry for entry:
/// `overlap[j] == key_j.overlaps(q)` and (given a previous query `p`)
/// `discard[j] == discardable(p, q, &key_j)`.
#[derive(Clone, Debug, Default)]
struct KeyBatch {
    axes_lo: Vec<Vec<f64>>,
    axes_hi: Vec<Vec<f64>>,
    children: Vec<PageId>,
    overlap: Vec<bool>,
    discard: Vec<bool>,
    /// Per-lane: some axis of `q ∩ r` is empty (then `q ∩ r ⊆ p` holds
    /// vacuously, matching `StBox::contains`' empty-operand early-out).
    inter_empty: Vec<bool>,
    /// Per-lane: every axis of `q ∩ r` lies inside `p`'s extent.
    contained: Vec<bool>,
}

impl KeyBatch {
    fn clear(&mut self) {
        for v in &mut self.axes_lo {
            v.clear();
        }
        for v in &mut self.axes_hi {
            v.clear();
        }
        self.children.clear();
    }

    fn len(&self) -> usize {
        self.children.len()
    }

    fn push<K: Key>(&mut self, key: &K, child: PageId) {
        if self.axes_lo.len() < K::AXES {
            self.axes_lo.resize_with(K::AXES, Vec::new);
            self.axes_hi.resize_with(K::AXES, Vec::new);
        }
        for a in 0..K::AXES {
            self.axes_lo[a].push(key.axis_lo(a));
            self.axes_hi[a].push(key.axis_hi(a));
        }
        self.children.push(child);
    }

    /// Evaluate the overlap mask against `q` and, when `p` is given, the
    /// Lemma-1 discardability mask against `(p, q)`.
    fn solve<K: Key>(&mut self, q: &K, p: Option<&K>) {
        let n = self.len();
        self.overlap.clear();
        self.overlap.resize(n, !q.is_empty());
        self.inter_empty.clear();
        self.inter_empty.resize(n, false);
        self.contained.clear();
        self.contained.resize(n, p.is_some());
        for a in 0..K::AXES {
            let (q_lo, q_hi) = (q.axis_lo(a), q.axis_hi(a));
            let (p_lo, p_hi) = match p {
                Some(p) => (p.axis_lo(a), p.axis_hi(a)),
                None => (f64::INFINITY, f64::NEG_INFINITY),
            };
            // `contains_interval` requires the container axis non-empty.
            let p_ok = p_lo <= p_hi;
            let lo = &self.axes_lo[a];
            let hi = &self.axes_hi[a];
            for j in 0..n {
                let (r_lo, r_hi) = (lo[j], hi[j]);
                let i_lo = q_lo.max(r_lo);
                let i_hi = q_hi.min(r_hi);
                let axis_hit = i_lo <= i_hi;
                self.overlap[j] &= axis_hit && r_lo <= r_hi;
                self.inter_empty[j] |= !axis_hit;
                self.contained[j] &= p_ok && p_lo <= i_lo && i_hi <= p_hi;
            }
        }
        self.discard.clear();
        self.discard.reserve(n);
        for j in 0..n {
            self.discard.push(self.inter_empty[j] || self.contained[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::{DtaSegmentRecord, RTree, RTreeConfig};
    use storage::Pager;
    use stkit::{Interval, Rect, StBox};

    type R = DtaSegmentRecord<2>;

    /// Stationary grid: object (i, j) at (i+0.5, j+0.5), alive [0, 100].
    fn grid_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n * n)
            .map(|k| {
                let x = (k % n) as f64 + 0.5;
                let y = (k / n) as f64 + 0.5;
                R::new(k, 0, Interval::new(0.0, 100.0), [x, y], [x, y])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    fn win(x: f64, y: f64, w: f64) -> Rect<2> {
        Rect::from_corners([x, y], [x + w, y + w])
    }

    #[test]
    fn discardable_lemma_basics() {
        let bx = |x0: f64, x1: f64| {
            StBox::<2, 2>::new(
                Rect::from_corners([x0, 0.0], [x1, 1.0]),
                Rect::new([Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
            )
        };
        let p = bx(0.0, 5.0);
        let q = bx(3.0, 8.0);
        // R inside Q∩P region ⇒ discardable.
        assert!(discardable(&p, &q, &bx(3.5, 4.5)));
        // R sticking beyond P ⇒ not discardable.
        assert!(!discardable(&p, &q, &bx(4.0, 7.0)));
        // R disjoint from Q ⇒ Q∩R empty ⊆ P ⇒ discardable (it wouldn't be
        // visited anyway because the overlap test fails first).
        assert!(discardable(&p, &q, &bx(20.0, 30.0)));
    }

    #[test]
    fn first_query_returns_everything() {
        let tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        let q = SnapshotQuery::at_instant(win(2.0, 2.0, 4.0), 1.0);
        let mut got = Vec::new();
        let stats = eng.execute(&tree, &q, 0.0, |r| got.push(r.oid));
        assert_eq!(got.len(), 16, "4×4 cells");
        assert_eq!(stats.results, 16);
        assert!(eng.has_previous());
    }

    #[test]
    fn second_query_returns_only_delta() {
        let tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 4.0), 1.0);
        let q2 = SnapshotQuery::at_instant(win(3.0, 2.0, 4.0), 1.1); // shifted 1 in x
        let mut first = Vec::new();
        eng.execute(&tree, &q1, 0.0, |r| first.push(r.oid));
        let mut second = Vec::new();
        let s2 = eng.execute(&tree, &q2, 0.0, |r| second.push(r.oid));
        // New column x ∈ [6, 7): 4 objects.
        assert_eq!(second.len(), 4, "only the newly visible column");
        assert!(second.iter().all(|o| !first.contains(o)));
        assert!(s2.results == 4);
    }

    #[test]
    fn high_overlap_costs_less_io() {
        let tree = grid_tree(40);
        // Large window stepping slightly (99 % overlap) vs jumping fully.
        let mut eng_hi = NpdqEngine::new();
        let mut eng_lo = NpdqEngine::new();
        let q0 = SnapshotQuery::at_instant(win(5.0, 5.0, 20.0), 1.0);
        let hi_first = eng_hi.execute(&tree, &q0, 0.0, |_| {});
        let lo_first = eng_lo.execute(&tree, &q0, 0.0, |_| {});
        assert_eq!(hi_first.disk_accesses, lo_first.disk_accesses);
        let q_hi = SnapshotQuery::at_instant(win(5.2, 5.0, 20.0), 1.1);
        let q_lo = SnapshotQuery::at_instant(win(30.0, 30.0, 8.0), 1.1);
        let hi = eng_hi.execute(&tree, &q_hi, 0.0, |_| {});
        let lo = eng_lo.execute(&tree, &q_lo, 0.0, |_| {});
        assert!(
            hi.leaf_accesses < lo_first.leaf_accesses,
            "99% overlap must prune leaf I/O: {} vs first {}",
            hi.leaf_accesses,
            lo_first.leaf_accesses
        );
        assert!(lo.disk_accesses > 0);
    }

    #[test]
    fn no_overlap_same_as_naive() {
        let tree = grid_tree(40);
        let q1 = SnapshotQuery::at_instant(win(0.0, 0.0, 8.0), 1.0);
        let q2 = SnapshotQuery::at_instant(win(25.0, 25.0, 8.0), 1.1);
        // NPDQ with a useless previous query…
        let mut eng = NpdqEngine::new();
        eng.execute(&tree, &q1, 0.0, |_| {});
        let mut with_prev = Vec::new();
        let npdq_stats = eng.execute(&tree, &q2, 0.0, |r| with_prev.push(r.oid));
        // …vs a fresh evaluation of q2.
        let mut fresh_eng = NpdqEngine::new();
        let mut fresh = Vec::new();
        let fresh_stats = fresh_eng.execute(&tree, &q2, 0.0, |r| fresh.push(r.oid));
        with_prev.sort_unstable();
        fresh.sort_unstable();
        assert_eq!(with_prev, fresh, "no overlap ⇒ identical results");
        // "Neither does it cause harm": leaf I/O identical. (Internal
        // nodes whose region spans both windows may still be pruned or
        // kept identically.)
        assert_eq!(npdq_stats.disk_accesses, fresh_stats.disk_accesses);
    }

    #[test]
    fn union_over_session_equals_naive_per_frame() {
        // Sliding window: union of NPDQ deltas == union of naive results.
        let tree = grid_tree(30);
        let mut eng = NpdqEngine::new();
        let mut npdq_all = std::collections::HashSet::new();
        let mut naive_all = std::collections::HashSet::new();
        let naive = crate::naive::NaiveEngine::new();
        for k in 0..40 {
            let t = 1.0 + k as f64 * 0.1;
            let q = SnapshotQuery::at_instant(win(2.0 + k as f64 * 0.5, 10.0, 6.0), t);
            eng.execute(&tree, &q, 0.0, |r| {
                npdq_all.insert(r.oid);
            });
            naive.query_dta(&tree, &q, |r| {
                naive_all.insert(r.oid);
            });
        }
        assert_eq!(npdq_all, naive_all);
    }

    #[test]
    fn updates_invalidate_previous_query() {
        // Insert an object inside the overlap region after P ran: the
        // timestamp mechanism must prevent discarding it.
        let mut tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.0);
        eng.execute(&tree, &q1, /*now=*/ 0.0, |_| {});
        // New object in the middle of the already-covered region, with a
        // validity that starts after q1's instant so q1 never saw it.
        let rec = R::new(9999, 0, Interval::new(1.05, 100.0), [4.0, 4.0], [4.0, 4.0]);
        tree.insert(rec, /*timestamp=*/ 1.0);
        let q2 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.2);
        let mut got = Vec::new();
        eng.execute(&tree, &q2, 1.0, |r| got.push(r.oid));
        assert!(
            got.contains(&9999),
            "timestamped update must defeat discardability: {got:?}"
        );
    }

    #[test]
    fn without_updates_identical_region_returns_nothing() {
        let tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.0);
        let q2 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.1);
        eng.execute(&tree, &q1, 0.0, |_| {});
        let mut got = Vec::new();
        let stats = eng.execute(&tree, &q2, 0.0, |r| got.push(r.oid));
        assert!(got.is_empty(), "fully covered query returns nothing new");
        // And it touches almost nothing below the root.
        assert!(stats.leaf_accesses == 0, "leaf I/O should be fully pruned");
        // The prunes are visible on the engine's discard counters: every
        // overlapping subtree of q2 was discarded, none loaded.
        assert!(eng.discarded_subtrees() > 0, "prunes must be counted");
        assert!(eng.discard_rate() > 0.0 && eng.discard_rate() <= 1.0);
    }

    #[test]
    fn reset_forgets_previous_query() {
        let tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.0);
        eng.execute(&tree, &q1, 0.0, |_| {});
        assert!(eng.has_previous());
        eng.reset();
        assert!(!eng.has_previous());
        // After reset the same window returns everything again (like a
        // first query) — the teleport semantics.
        let mut got = 0;
        eng.execute(&tree, &q1, 0.0, |_| got += 1);
        assert_eq!(got, 36, "6×6 grid cells re-delivered after reset");
    }

    #[test]
    fn failed_execute_leaves_previous_query_untouched() {
        use storage::{FaultPlan, FaultyStore};
        // Small pages ⇒ deep tree ⇒ plenty of fallible reads.
        let recs: Vec<R> = (0..400)
            .map(|k| {
                let x = (k % 20) as f64 + 0.5;
                let y = (k / 20) as f64 + 0.5;
                R::new(k, 0, Interval::new(0.0, 100.0), [x, y], [x, y])
            })
            .collect();
        // NPDQ restarts its whole descent per attempt (unlike PDQ's
        // incremental queue), so the rate must leave a full fault-free
        // traversal likely; the seeded stream keeps the run deterministic.
        let faulty = FaultyStore::new(
            Pager::with_page_size(256),
            FaultPlan::transient(17, 0.15),
        );
        faulty.set_enabled(false);
        let tree = bulk_load(faulty, RTreeConfig::default(), recs);

        let mut eng = NpdqEngine::new();
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.0);
        let mut baseline = std::collections::HashSet::new();
        eng.execute(&tree, &q1, 0.0, |r| {
            baseline.insert(r.oid);
        });
        assert!(eng.has_previous());

        tree.store().set_enabled(true);
        let q2 = SnapshotQuery::at_instant(win(3.0, 2.0, 6.0), 1.1);
        let mut emitted = std::collections::HashSet::new();
        let mut errors = 0u32;
        let stats = loop {
            match eng.try_execute(&tree, &q2, 0.0, |r| {
                emitted.insert(r.oid);
            }) {
                Ok(stats) => break stats,
                Err(e) => {
                    assert!(e.is_transient());
                    // Failure must not advance the discard baseline to the
                    // partially-covered q2 — else the retry would prune
                    // subtrees q2 never actually finished reading.
                    assert!(eng.has_previous());
                    errors += 1;
                    assert!(errors < 10_000, "engine never converged");
                }
            }
        };
        assert!(errors > 0, "a 15% fault rate must surface errors");
        assert!(stats.disk_accesses > 0);
        // Oracle: the delta a fault-free engine computes for q1 → q2.
        let expected: std::collections::HashSet<u32> = {
            let clean_recs: Vec<R> = (0..400)
                .map(|k| {
                    let x = (k % 20) as f64 + 0.5;
                    let y = (k / 20) as f64 + 0.5;
                    R::new(k, 0, Interval::new(0.0, 100.0), [x, y], [x, y])
                })
                .collect();
            let clean = bulk_load(
                Pager::with_page_size(256),
                RTreeConfig::default(),
                clean_recs,
            );
            let mut oracle = NpdqEngine::new();
            oracle.execute(&clean, &q1, 0.0, |_| {});
            let mut out = std::collections::HashSet::new();
            oracle.execute(&clean, &q2, 0.0, |r| {
                out.insert(r.oid);
            });
            out
        };
        // Retries may re-emit partial results of failed attempts, but the
        // union must cover the oracle delta exactly (no losses, and no
        // stray objects from outside q2 ∖ q1 ∪ partials of q2 ∩ q1).
        assert!(
            emitted.is_superset(&expected),
            "healing lost results: missing {:?}",
            expected.difference(&emitted).collect::<Vec<_>>()
        );
        for oid in &emitted {
            assert!(
                expected.contains(oid) || baseline.contains(oid),
                "object {oid} matches neither the delta nor the overlap"
            );
        }
    }

    #[test]
    fn disabling_discard_reverts_to_naive() {
        let tree = grid_tree(20);
        let mut eng = NpdqEngine::new();
        eng.use_discard = false;
        let q1 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.0);
        let q2 = SnapshotQuery::at_instant(win(2.0, 2.0, 6.0), 1.1);
        let s1 = eng.execute(&tree, &q1, 0.0, |_| {});
        let s2 = eng.execute(&tree, &q2, 0.0, |_| {});
        assert_eq!(s1.results, s2.results, "same window, same objects");
        assert_eq!(s1.disk_accesses, s2.disk_accesses);
    }
}
