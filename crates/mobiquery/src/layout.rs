//! The bridge between snapshot queries and index layouts.
//!
//! The paper's two index layouts — native space indexing (§3.2) and
//! double temporal axes (§4.2 Fig. 5(b)) — differ only in how a motion
//! segment and a snapshot query map to the R-tree's key space.
//! [`MotionRecord`] captures that mapping, letting the NPDQ engine (and
//! any future engine) run over either layout, which is exactly what the
//! Fig. 5(a)-vs-5(b) ablation compares.

use crate::snapshot::SnapshotQuery;
use rtree::{DtaSegmentRecord, NsiSegmentRecord, Record};
use stkit::MotionSegment;

/// A leaf record carrying a motion segment, whose index layout knows how
/// to express a [`SnapshotQuery`] as a key-space probe.
pub trait MotionRecord<const D: usize>: Record {
    /// The underlying motion segment.
    fn segment(&self) -> &MotionSegment<D>;

    /// `(object id, update sequence)` identity.
    fn ids(&self) -> (u32, u32);

    /// The key-space region a snapshot query probes in this layout.
    fn query_key(q: &SnapshotQuery<D>) -> Self::Key;
}

impl<const D: usize> MotionRecord<D> for NsiSegmentRecord<D> {
    fn segment(&self) -> &MotionSegment<D> {
        &self.seg
    }

    fn ids(&self) -> (u32, u32) {
        (self.oid, self.seq)
    }

    fn query_key(q: &SnapshotQuery<D>) -> Self::Key {
        q.nsi_key()
    }
}

impl<const D: usize> MotionRecord<D> for DtaSegmentRecord<D> {
    fn segment(&self) -> &MotionSegment<D> {
        &self.seg
    }

    fn ids(&self) -> (u32, u32) {
        (self.oid, self.seq)
    }

    fn query_key(q: &SnapshotQuery<D>) -> Self::Key {
        q.dta_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::{Interval, Rect};

    #[test]
    fn layouts_agree_on_matching_segments() {
        let q = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [10.0, 10.0]), 5.0);
        let nsi = NsiSegmentRecord::<2>::new(1, 0, Interval::new(4.0, 6.0), [5.0, 5.0], [6.0, 6.0]);
        let dta = DtaSegmentRecord::<2>::new(1, 0, Interval::new(4.0, 6.0), [5.0, 5.0], [6.0, 6.0]);
        assert!(NsiSegmentRecord::query_key(&q).overlaps(&nsi.key()));
        assert!(DtaSegmentRecord::query_key(&q).overlaps(&dta.key()));
        assert_eq!(nsi.ids(), dta.ids());
        assert_eq!(nsi.segment(), dta.segment());
    }

    #[test]
    fn layouts_agree_on_non_matching_segments() {
        let q = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [10.0, 10.0]), 9.0);
        // Expired before the query instant.
        let nsi = NsiSegmentRecord::<2>::new(1, 0, Interval::new(4.0, 6.0), [5.0, 5.0], [6.0, 6.0]);
        let dta = DtaSegmentRecord::<2>::new(1, 0, Interval::new(4.0, 6.0), [5.0, 5.0], [6.0, 6.0]);
        assert!(!NsiSegmentRecord::query_key(&q).overlaps(&nsi.key()));
        assert!(!DtaSegmentRecord::query_key(&q).overlaps(&dta.key()));
    }
}
