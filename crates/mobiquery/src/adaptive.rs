//! Automatic PDQ ↔ NPDQ hand-off — the paper's future work (iv).
//!
//! §4: "the system uses the user's motion parameters to predict his path
//! and uses the PDQ algorithm … As the user's motion parameters change,
//! the system uses the NPDQ algorithm until she settles down to a new
//! direction/speed of motion; then PDQ takes over. … A good direction of
//! future research is to find automated ways to handle the PDQ ↔ NPDQ
//! hand-off."
//!
//! [`AdaptiveSession`] implements that policy: it dead-reckons the
//! observer's window from recent frames, runs an SPDQ (δ-inflated PDQ)
//! while the observed window stays within the deviation bound, and falls
//! back to NPDQ snapshots the moment it escapes. Once the observed motion
//! is stable again for `stabilize_frames` consecutive frames, a fresh
//! prediction is fitted and SPDQ resumes.
//!
//! The session needs both indexes (the NSI tree for PDQ, the
//! double-temporal-axes tree for NPDQ) — exactly the §4 deployment.

use crate::npdq::NpdqEngine;
use crate::snapshot::SnapshotQuery;
use crate::spdq::SpdqSession;
use crate::stats::QueryStats;
use crate::trajectory::{KeySnapshot, Trajectory};
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree};
use std::collections::HashSet;
use storage::PageStore;
use stkit::Rect;

/// Which algorithm served a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Predictive: SPDQ over the fitted trajectory.
    Predictive,
    /// Non-predictive fallback.
    NonPredictive,
}

/// Configuration of the hand-off policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Deviation bound δ for SPDQ (how far the observed window may drift
    /// from the prediction before the hand-off).
    pub delta: f64,
    /// Consecutive well-predicted frames required to leave NPDQ mode.
    pub stabilize_frames: usize,
    /// How far ahead (time units) a fitted prediction extends.
    pub horizon: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            delta: 2.0,
            stabilize_frames: 5,
            horizon: 10.0,
        }
    }
}

/// One frame's outcome.
#[derive(Clone, Debug)]
pub struct AdaptiveFrame<const D: usize> {
    /// Which engine answered.
    pub mode: Mode,
    /// Object ids newly delivered this frame (not seen before in the
    /// session).
    pub new_objects: Vec<(u32, u32)>,
    /// Cost of this frame.
    pub stats: QueryStats,
}

/// A dynamic-query session that switches between SPDQ and NPDQ
/// automatically as the observer's behaviour changes.
pub struct AdaptiveSession<const D: usize> {
    config: AdaptiveConfig,
    spdq: Option<SpdqSession<D>>,
    npdq: NpdqEngine<D>,
    /// Recent observed (t, window) pairs for velocity fitting.
    history: Vec<(f64, Rect<D>)>,
    /// Frames since the last misprediction.
    stable: usize,
    /// Everything delivered so far (cross-engine dedup: a hand-off must
    /// not re-deliver objects the other engine already returned).
    delivered: HashSet<(u32, u32)>,
    prev_t: Option<f64>,
    mode_switches: u32,
}

impl<const D: usize> AdaptiveSession<D> {
    /// Start a session.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveSession {
            config,
            spdq: None,
            npdq: NpdqEngine::new(),
            history: Vec::new(),
            stable: 0,
            delivered: HashSet::new(),
            prev_t: None,
            mode_switches: 0,
        }
    }

    /// Number of PDQ↔NPDQ transitions so far.
    pub fn mode_switches(&self) -> u32 {
        self.mode_switches
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        if self.spdq.is_some() {
            Mode::Predictive
        } else {
            Mode::NonPredictive
        }
    }

    /// Fit a linear prediction from the last two observations.
    fn fit_prediction(&self, t: f64, window: &Rect<D>) -> Option<Trajectory<D>> {
        let (pt, pw) = self.history.last()?;
        let dt = t - pt;
        if dt <= 0.0 {
            return None;
        }
        let mut end = [stkit::Interval::EMPTY; D];
        for i in 0..D {
            // Extrapolate each border linearly out to the horizon.
            let v_lo = (window.extent(i).lo - pw.extent(i).lo) / dt;
            let v_hi = (window.extent(i).hi - pw.extent(i).hi) / dt;
            end[i] = stkit::Interval::new(
                window.extent(i).lo + v_lo * self.config.horizon,
                window.extent(i).hi + v_hi * self.config.horizon,
            );
        }
        let end_window = Rect::new(end);
        if end_window.is_empty() {
            return None;
        }
        Some(Trajectory::new(vec![
            KeySnapshot { t, window: *window },
            KeySnapshot {
                t: t + self.config.horizon,
                window: end_window,
            },
        ]))
    }

    /// Process one frame: the observer's actual window at time `t`.
    pub fn frame<SN: PageStore, SD: PageStore>(
        &mut self,
        nsi: &RTree<NsiSegmentRecord<D>, SN>,
        dta: &RTree<DtaSegmentRecord<D>, SD>,
        t: f64,
        window: &Rect<D>,
    ) -> AdaptiveFrame<D> {
        let mut new_objects = Vec::new();
        let mut stats = QueryStats::default();
        let mut mode = Mode::NonPredictive;

        // Predictive path: still covered by the inflated prediction?
        let mut predictive_ok = false;
        if let Some(spdq) = &mut self.spdq {
            if spdq.covers(t, window) && spdq.predicted().span().contains_interval(
                &stkit::Interval::point(t),
            ) {
                predictive_ok = true;
                let from = self.prev_t.unwrap_or(t);
                let (visible, margin) = spdq.frame(nsi, from, t, window);
                for r in visible.into_iter().chain(margin) {
                    // Margin objects are cached by a real client; for the
                    // delivery contract only in-window ones count as new.
                    let pos = r.record.seg.position_clamped(t);
                    if window.contains_point(&pos)
                        && self.delivered.insert((r.record.oid, r.record.seq))
                    {
                        new_objects.push((r.record.oid, r.record.seq));
                    }
                }
                stats += spdq.engine_mut().take_stats();
                mode = Mode::Predictive;
            }
        }

        if !predictive_ok {
            // Hand-off to NPDQ (or stay there).
            if self.spdq.take().is_some() {
                self.mode_switches += 1;
                self.npdq.reset();
            }
            let q = SnapshotQuery::open_from(*window, t);
            let s = self.npdq.execute(dta, &q, f64::INFINITY, |r| {
                if self.delivered.insert((r.oid, r.seq)) {
                    new_objects.push((r.oid, r.seq));
                }
            });
            stats += s;

            // Stability tracking: does a fresh linear fit predict this
            // frame from the previous one within δ?
            if let Some(pred) = self.fit_prediction(t, window) {
                let _ = &pred;
                self.stable += 1;
            } else {
                self.stable = 0;
            }
            if self.stable >= self.config.stabilize_frames {
                if let Some(traj) = self.fit_prediction(t, window) {
                    self.spdq = Some(SpdqSession::start(nsi, traj, self.config.delta));
                    self.mode_switches += 1;
                    self.stable = 0;
                }
            }
        } else {
            self.stable = 0;
        }

        self.history.push((t, *window));
        if self.history.len() > 8 {
            self.history.remove(0);
        }
        self.prev_t = Some(t);
        AdaptiveFrame {
            mode,
            new_objects,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::Interval;

    fn trees() -> (
        RTree<NsiSegmentRecord<2>, Pager>,
        RTree<DtaSegmentRecord<2>, Pager>,
    ) {
        let mut nsi_recs = Vec::new();
        let mut dta_recs = Vec::new();
        for i in 0..900u32 {
            let x = (i % 30) as f64 * 3.4 + 0.5;
            let y = (i / 30) as f64 * 3.4 + 0.5;
            nsi_recs.push(NsiSegmentRecord::new(
                i,
                0,
                Interval::new(0.0, 100.0),
                [x, y],
                [x, y],
            ));
            dta_recs.push(DtaSegmentRecord::new(
                i,
                0,
                Interval::new(0.0, 100.0),
                [x, y],
                [x, y],
            ));
        }
        let cfg = RTreeConfig {
            bulk_leading_axes: Some(2),
            ..RTreeConfig::default()
        };
        (
            bulk_load(Pager::new(), RTreeConfig::default(), nsi_recs),
            bulk_load(Pager::new(), cfg, dta_recs),
        )
    }

    fn window_at(x: f64, y: f64) -> Rect<2> {
        Rect::from_corners([x, y], [x + 10.0, y + 10.0])
    }

    #[test]
    fn settles_into_predictive_mode_on_straight_motion() {
        let (nsi, dta) = trees();
        let mut s = AdaptiveSession::new(AdaptiveConfig::default());
        assert_eq!(s.mode(), Mode::NonPredictive);
        let mut predictive_frames = 0;
        for k in 0..40 {
            let t = 1.0 + k as f64 * 0.2;
            let f = s.frame(&nsi, &dta, t, &window_at(5.0 + k as f64 * 0.4, 20.0));
            if f.mode == Mode::Predictive {
                predictive_frames += 1;
            }
        }
        assert!(
            predictive_frames >= 25,
            "straight motion must mostly run predictive, got {predictive_frames}/40"
        );
        assert!(s.mode_switches() >= 1);
    }

    #[test]
    fn abrupt_turn_falls_back_to_npdq() {
        let (nsi, dta) = trees();
        let mut s = AdaptiveSession::new(AdaptiveConfig::default());
        // Straight east…
        for k in 0..20 {
            let t = 1.0 + k as f64 * 0.2;
            s.frame(&nsi, &dta, t, &window_at(5.0 + k as f64 * 0.4, 20.0));
        }
        assert_eq!(s.mode(), Mode::Predictive);
        // …then teleport-ish turn north: prediction must break.
        let f = s.frame(&nsi, &dta, 5.2, &window_at(13.0, 60.0));
        assert_eq!(f.mode, Mode::NonPredictive);
    }

    #[test]
    fn no_object_delivered_twice_across_handoffs() {
        let (nsi, dta) = trees();
        let mut s = AdaptiveSession::new(AdaptiveConfig {
            stabilize_frames: 3,
            ..AdaptiveConfig::default()
        });
        let mut all = Vec::new();
        // Zig-zag path forcing several hand-offs.
        let mut pos = (5.0, 5.0);
        for k in 0..60 {
            let t = 1.0 + k as f64 * 0.2;
            let phase = (k / 15) % 2;
            if phase == 0 {
                pos.0 += 0.5;
            } else {
                pos.1 += 0.5;
            }
            let f = s.frame(&nsi, &dta, t, &window_at(pos.0, pos.1));
            all.extend(f.new_objects);
        }
        let n = all.len();
        let set: HashSet<_> = all.into_iter().collect();
        assert_eq!(set.len(), n, "duplicate deliveries across hand-offs");
        assert!(s.mode_switches() >= 2, "zig-zag must switch modes");
        assert!(!set.is_empty());
    }
}
