//! Concurrent query service: many dynamic-query sessions over one tree.
//!
//! The paper's system picture (§2, Fig. 1) is a *server* evaluating many
//! clients' dynamic queries against one shared index while updates keep
//! arriving. [`DqServer`] realises that picture: it owns a single NSI
//! tree behind a [`parking_lot::RwLock`], runs N PDQ/NPDQ sessions on a
//! scoped thread pool with per-frame batching, and broadcasts every
//! [`rtree::InsertReport`] produced by the writer to all live PDQ
//! engines (the §4.1 update-management protocol), while NPDQ sessions
//! pick updates up through node timestamps (§4.2).
//!
//! Frames are ordered by a [`crate::clock::FrameClock`] instead of a
//! global barrier: the writer advances the `applied` watermark after
//! each frame's insert batch (and, when durable, the `committed`
//! watermark after the batch's WAL group commit, which happens first);
//! a session reads frame `k` by waiting for `applied` to cover `k`, and
//! permits batch `k + 1` only once it has finished frame `k` (the
//! clock's ack cursor). That flow control means the writer and the
//! attached readers alternate — every session observes exactly the tree
//! state the serial protocol would show it, every optimistic validation
//! passes, and sessions join ([`SessionPlan::join_at`]) or leave
//! ([`crate::clock::FrameClock::detach`] — including mid-run failures,
//! which no longer zombie-park) at any frame without perturbing anyone
//! else's results. Each frame's processing is *latch-free* through an
//! optimistic [`rtree::TreeReader`] (per-visit version validation for
//! PDQ, a pinned snapshot via [`rtree::TreeReadRetry::with_consistent`]
//! for NPDQ) — no read lock is taken on the serving path, and the
//! concurrent run stays *bitwise deterministic*: its per-session result
//! sequences equal [`DqServer::serve_serial`]'s (the single-threaded
//! reference executing the same protocol over `&RTree`, where
//! validation is statically unnecessary), which the `service` and
//! `clock` integration tests check.

use crate::clock::{FrameClock, SessionLiveness};
use crate::durability::{DurabilityHook, DurableLog};
use crate::layout::MotionRecord;
use crate::npdq::NpdqEngine;
use crate::pdq::{PdqEngine, PdqResult};
use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use crate::trajectory::Trajectory;
use parking_lot::{Mutex, RwLock};
use rtree::{EpochStats, InsertReport, NsiSegmentRecord, RTree, Record, TreeRead, TreeReadRetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{PageStore, RetryPolicy, SnapshotSource, StorageError};

/// The insert report the writer broadcasts to PDQ sessions.
pub type NsiReport<const D: usize> =
    InsertReport<<NsiSegmentRecord<D> as Record>::Key, NsiSegmentRecord<D>>;

/// Which §4 algorithm a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// Predictive: trajectory known ahead, one tree traversal (§4.1).
    Pdq,
    /// Non-predictive: per-frame snapshot queries with previous-query
    /// discarding (§4.2), here over the shared NSI layout.
    Npdq,
}

/// One client's dynamic query: the trajectory it follows and the frame
/// times at which it asks for results.
#[derive(Clone, Debug)]
pub struct SessionSpec<const D: usize> {
    /// Algorithm to serve this session with.
    pub kind: SessionKind,
    /// The moving window.
    pub trajectory: Trajectory<D>,
    /// Monotone frame schedule. A PDQ session drains the window between
    /// consecutive times; an NPDQ session evaluates a snapshot at each.
    pub frame_times: Vec<f64>,
}

impl<const D: usize> SessionSpec<D> {
    /// Frame steps this session needs.
    pub(crate) fn steps(&self) -> usize {
        match self.kind {
            SessionKind::Pdq => self.frame_times.len().saturating_sub(1),
            SessionKind::Npdq => self.frame_times.len(),
        }
    }
}

/// One session's lifecycle over a run: the query itself plus *when* it
/// runs — independent frame clocks let sessions join mid-run and pace
/// themselves, so those knobs live here rather than on [`SessionSpec`].
#[derive(Clone, Debug)]
pub struct SessionPlan<const D: usize> {
    /// The query and frame schedule.
    pub spec: SessionSpec<D>,
    /// First global frame this session processes. A joiner sees the tree
    /// exactly as of its join frame (all earlier batches applied, its
    /// join frame's batch not yet) and consumes frames `join_frame..`
    /// of its schedule — `frame_times` stay globally indexed.
    pub join_frame: usize,
    /// Artificial per-frame consumption delay — a deliberately slow
    /// client. The session back-pressures only the regions its query
    /// touches (the straggler experiment); results are unaffected, and
    /// the serial reference ignores the delay entirely.
    pub frame_delay: Duration,
}

impl<const D: usize> From<SessionSpec<D>> for SessionPlan<D> {
    fn from(spec: SessionSpec<D>) -> Self {
        SessionPlan::new(spec)
    }
}

impl<const D: usize> SessionPlan<D> {
    /// A plan that joins at frame 0 with no artificial delay — exactly
    /// the pre-clock serving behavior.
    pub fn new(spec: SessionSpec<D>) -> Self {
        SessionPlan {
            spec,
            join_frame: 0,
            frame_delay: Duration::ZERO,
        }
    }

    /// Join mid-run at global frame `frame` (builder-style).
    pub fn join_at(mut self, frame: usize) -> Self {
        self.join_frame = frame;
        self
    }

    /// Sleep `delay` after each processed frame (builder-style).
    pub fn with_frame_delay(mut self, delay: Duration) -> Self {
        self.frame_delay = delay;
        self
    }

    /// The inclusive global-frame window this plan consumes, or `None`
    /// when it never runs (empty schedule, or joined after its schedule
    /// already ended).
    pub(crate) fn window(&self) -> Option<(u64, u64)> {
        let steps = self.spec.steps();
        (self.join_frame < steps).then(|| (self.join_frame as u64, steps as u64 - 1))
    }
}

/// One frame of one session, as observed while serving: what arrived and
/// what it cost. The per-run stream of these is the serving path's
/// flight recorder — `Σ frames.stats == session.stats` by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrameReport {
    /// Global frame step index.
    pub frame: usize,
    /// Objects delivered this frame.
    pub results: usize,
    /// Wall-clock time this session spent processing the frame.
    pub latency_ns: u64,
    /// Query cost incurred this frame alone.
    pub stats: QueryStats,
}

/// How one session (or the writer) fared over a run.
///
/// A serving process must not let one flaky device read — or one corrupt
/// page — take down every client. The outcome records, per participant,
/// whether the run was clean, merely degraded (storage errors surfaced
/// but the engine's self-healing kept it serving), or failed outright
/// (the session's engine panicked and was contained).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SessionOutcome {
    /// Every frame completed without a storage error.
    #[default]
    Ok,
    /// Storage errors surfaced but the session kept serving; `errors`
    /// holds them in occurrence order.
    Degraded {
        /// Every storage error this participant observed.
        errors: Vec<StorageError>,
    },
    /// The session died mid-run; the payload is the panic message. Its
    /// results up to the failure are retained, it detaches from its
    /// frame clocks (no writer ever waits on it again), and the rest of
    /// the run proceeds normally.
    Failed(String),
}

impl SessionOutcome {
    /// True iff the run was entirely clean.
    pub fn is_ok(&self) -> bool {
        matches!(self, SessionOutcome::Ok)
    }

    /// Errors observed (empty for `Ok` and `Failed`).
    pub fn errors(&self) -> &[StorageError] {
        match self {
            SessionOutcome::Degraded { errors } => errors,
            _ => &[],
        }
    }

    pub(crate) fn record_error(&mut self, e: StorageError) {
        match self {
            SessionOutcome::Ok => *self = SessionOutcome::Degraded { errors: vec![e] },
            SessionOutcome::Degraded { errors } => errors.push(e),
            SessionOutcome::Failed(_) => {}
        }
    }
}

/// Extract a printable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one session produced over the whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionOutput {
    /// `(oid, seq)` of every delivered object, in delivery order —
    /// deterministic for both engines, so runs are comparable exactly.
    pub results: Vec<(u32, u32)>,
    /// Accumulated query cost.
    pub stats: QueryStats,
    /// Per-frame reports, one per frame this session's schedule covered
    /// (sessions with short schedules stop reporting when they finish).
    pub frames: Vec<FrameReport>,
    /// PDQ only: deepest the priority queue ever got (0 for NPDQ).
    pub queue_hwm: usize,
    /// NPDQ only: subtrees pruned by discardability (0 for PDQ).
    pub discarded_subtrees: u64,
    /// Wall-clock nanoseconds from this session's engine start to its
    /// last frame — under independent clocks, sessions finish at their
    /// own pace, and this is the per-session figure the straggler
    /// experiment compares (0 when the session never ran).
    pub wall_ns: u64,
    /// Whether the session finished clean, degraded, or failed.
    pub outcome: SessionOutcome,
}

/// Outcome of one [`DqServer::serve`] / [`DqServer::serve_serial`] run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Per-session outputs, in spec order.
    pub sessions: Vec<SessionOutput>,
    /// Global frame steps executed.
    pub frames: usize,
    /// Records the writer inserted.
    pub inserts_applied: usize,
    /// Node reads the writer performed inside its write sections. Exact:
    /// the clock's flow control keeps every attached session out of the
    /// tree while the writer holds the lock (a session reading frame `k`
    /// withholds the permit for batch `k + 1`), so the tree's
    /// level-counter delta over the write section is attributable to the
    /// writer alone.
    pub writer_reads: u64,
    /// Node writes the writer performed inside its write sections.
    pub writer_writes: u64,
    /// Whether the writer applied every batch clean. Degraded means some
    /// records were dropped after their storage errors exhausted the
    /// retry budget (or were unrecoverable, e.g. a corrupt page on the
    /// descent path). Failed means the device filled up
    /// ([`StorageError::Full`]): the writer stopped applying — a full
    /// disk stays full — though with durability enabled every batch is
    /// still WAL-committed and recoverable onto a larger device.
    pub writer_outcome: SessionOutcome,
    /// Frame batches group-committed to the WAL (0 without durability).
    pub wal_appends: u64,
    /// Wall-clock nanoseconds the writer spent in WAL group commits.
    pub wal_commit_ns: u64,
    /// Checkpoints the writer installed during the run (not counting the
    /// initial checkpoint taken before the first frame).
    pub checkpoints: u64,
}

impl ServeReport {
    /// Aggregate cost over all sessions.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for s in &self.sessions {
            total += s.stats;
        }
        total
    }

    /// Total objects delivered across sessions.
    pub fn total_results(&self) -> usize {
        self.sessions.iter().map(|s| s.results.len()).sum()
    }

    /// The run's frame timeline: every session's [`FrameReport`]s merged
    /// and ordered by `(frame, session)` — what happened, frame by frame,
    /// across the whole server. Each entry is `(session index, report)`.
    pub fn timeline(&self) -> Vec<(usize, &FrameReport)> {
        let mut out: Vec<(usize, &FrameReport)> = self
            .sessions
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.frames.iter().map(move |f| (i, f)))
            .collect();
        out.sort_by_key(|&(i, f)| (f.frame, i));
        out
    }

    /// Total node reads the run performed (sessions plus writer) — the
    /// quantity that must reconcile with the tree's level counters and
    /// the buffer pool's hit+miss total.
    pub fn total_reads(&self) -> u64 {
        self.total_stats().disk_accesses + self.writer_reads
    }
}

/// One frame's freshly delivered results for one session, handed to a
/// [`FrameSink`] the moment the session finishes the frame — before the
/// session acks the frame to its clocks, so a sink that says
/// [`SinkVerdict::Detach`] stops the session without it ever granting
/// the next batch's permit.
///
/// `results` is the suffix of the session's result stream this frame
/// appended (deterministic, so streamed deltas concatenate to exactly
/// the [`SessionOutput::results`] a non-streamed run reports). Frames a
/// degraded step produced are delivered too: results emitted before a
/// storage fault are valid and final.
#[derive(Clone, Copy, Debug)]
pub struct FrameDelta<'a> {
    /// Session index within the run (spec/plan order).
    pub session: usize,
    /// Global frame step index.
    pub frame: usize,
    /// `(oid, seq)` of the objects this frame delivered, in order.
    pub results: &'a [(u32, u32)],
    /// Wall-clock time the session spent processing the frame.
    pub latency_ns: u64,
}

/// What a [`FrameSink`] wants done with its session after a delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkVerdict {
    /// Keep serving the session.
    Continue,
    /// Stop the session now: it records
    /// [`SessionOutcome::Failed`]`("detached by frame sink")`, keeps its
    /// results so far, and detaches from its frame clocks exactly like a
    /// mid-run failure — no writer ever waits on it again.
    Detach,
}

/// Per-frame consumer of one session's results, called from that
/// session's serving thread (hence `Sync`): the hook a network front
/// door uses to stream deltas to a remote client, and to evict the
/// session (slow reader, dead socket) without touching the serving core.
pub trait FrameSink: Sync {
    /// Consume one frame's delta; the verdict decides whether the
    /// session keeps running.
    fn on_frame(&self, delta: &FrameDelta<'_>) -> SinkVerdict;
}

/// A bounded per-session mailbox of broadcast insert reports.
///
/// The clock's flow control keeps the writer at most one frame ahead of
/// every attached reader, so a mailbox never holds more than one
/// frame's broadcast — the bound is a protocol invariant, not a drop
/// policy (dropping would break determinism). Overflow is therefore a
/// bug and asserts; the observed high-water mark is published as the
/// `service.mailbox_hwm` gauge and re-checked by the `exp_service`
/// reconciliation pass.
pub(crate) struct Mailbox<T> {
    inner: Mutex<Vec<T>>,
    hwm: AtomicUsize,
}

impl<T: Clone> Mailbox<T> {
    pub(crate) fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Vec::new()),
            hwm: AtomicUsize::new(0),
        }
    }

    /// Append a frame's broadcast, asserting the one-batch bound `cap`
    /// (the largest batch the run can broadcast).
    pub(crate) fn push_all(&self, items: &[T], cap: usize) {
        let mut q = self.inner.lock();
        q.extend(items.iter().cloned());
        assert!(
            q.len() <= cap,
            "mailbox overflow: {} queued reports exceed the one-batch bound {cap}",
            q.len(),
        );
        self.hwm.fetch_max(q.len(), Ordering::Relaxed);
    }

    /// Drain everything queued.
    pub(crate) fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Deepest the mailbox ever got.
    pub(crate) fn hwm(&self) -> usize {
        self.hwm.load(Ordering::Relaxed)
    }
}

/// The one-batch mailbox bound for a run: no broadcast can exceed the
/// largest insert batch (partitioned servers broadcast routed slices,
/// which only shrink).
pub(crate) fn mailbox_bound<const D: usize>(inserts: &[Vec<(NsiSegmentRecord<D>, f64)>]) -> usize {
    inserts.iter().map(Vec::len).max().unwrap_or(0)
}

/// Publish the deepest mailbox high-water mark of a run.
pub(crate) fn publish_mailbox_hwm(metrics: &Option<Arc<obs::MetricsRegistry>>, hwm: usize) {
    if let Some(reg) = metrics {
        reg.gauge("service.mailbox_hwm").record_max(hwm as i64);
    }
}

/// One session's engine state while the run is in flight.
enum Engine<const D: usize> {
    // Boxed: a PdqEngine (queue + trajectory) is an order of magnitude
    // bigger than an NpdqEngine, and there is one Engine per session.
    Pdq(Box<PdqEngine<D>>),
    Npdq(Box<NpdqEngine<D>>),
}

struct SessionRun<'a, const D: usize> {
    /// Position in the spec slice (frame trace / report attribution).
    index: usize,
    spec: &'a SessionSpec<D>,
    engine: Engine<D>,
    out: SessionOutput,
    /// Per-frame result scratch (PDQ), reused across frames so the
    /// per-frame loop doesn't allocate a fresh Vec every step.
    scratch: Vec<PdqResult<D>>,
    /// Per-attempt emission staging (NPDQ): a snapshot descent aborted
    /// by a version conflict is retried wholesale, so emissions must not
    /// reach the results until the attempt completes.
    npdq_scratch: Vec<(u32, u32)>,
}

impl<'a, const D: usize> SessionRun<'a, D> {
    fn start<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        index: usize,
        spec: &'a SessionSpec<D>,
        tree: &T,
    ) -> Self {
        let engine = match spec.kind {
            SessionKind::Pdq => Engine::Pdq(Box::new(PdqEngine::start(tree, spec.trajectory.clone()))),
            SessionKind::Npdq => Engine::Npdq(Box::new(NpdqEngine::new())),
        };
        SessionRun {
            index,
            spec,
            engine,
            out: SessionOutput::default(),
            scratch: Vec::new(),
            npdq_scratch: Vec::new(),
        }
    }

    /// Apply this frame's broadcast insert reports (PDQ only — NPDQ
    /// sessions learn about updates from node timestamps instead).
    fn absorb<T: TreeRead<NsiSegmentRecord<D>> + ?Sized>(
        &mut self,
        tree: &T,
        reports: &[NsiReport<D>],
    ) {
        if let Engine::Pdq(pdq) = &mut self.engine {
            for report in reports {
                pdq.notify(tree, report);
            }
        }
    }

    /// Process global frame step `k` (no-op once this session's own
    /// schedule is exhausted). Returns the drain latency when the frame
    /// was in-schedule.
    ///
    /// On `Err` the frame is still reported (with whatever results and
    /// stats it produced before the fault) and the engine stays valid:
    /// PDQ keeps the failed node queued for the next drain, NPDQ keeps
    /// its discard baseline at the last *completed* query. A later frame
    /// therefore re-derives anything the failed one missed — degraded
    /// sessions lose latency, not results.
    fn try_step<T: TreeReadRetry<NsiSegmentRecord<D>>>(
        &mut self,
        tree: &T,
        k: usize,
    ) -> Result<Option<u64>, StorageError> {
        let in_schedule = match self.engine {
            Engine::Pdq(_) => k + 1 < self.spec.frame_times.len(),
            Engine::Npdq(_) => k < self.spec.frame_times.len(),
        };
        if !in_schedule {
            return Ok(None);
        }
        let before_results = self.out.results.len();
        obs::trace(obs::TraceEvent::FrameStart {
            session: self.index as u32,
            frame: k as u32,
        });
        let started = Instant::now();
        let (frame_stats, frame_err) = match &mut self.engine {
            Engine::Pdq(pdq) => {
                let (t0, t1) = (self.spec.frame_times[k], self.spec.frame_times[k + 1]);
                self.scratch.clear();
                let res = pdq.try_drain_window_into(tree, t0, t1, &mut self.scratch);
                // Results delivered before the fault are valid and final
                // (the queue popped them); keep them either way.
                for r in &self.scratch {
                    self.out.results.push((r.record.oid, r.record.seq));
                }
                (pdq.take_stats(), res.err())
            }
            Engine::Npdq(npdq) => {
                let t = self.spec.frame_times[k];
                let q = SnapshotQuery::at_instant(self.spec.trajectory.window_at(t), t);
                // The whole descent runs against one pinned tree version;
                // a conflicting attempt is abandoned (its emissions stay
                // in the scratch) and retried against a fresh pin.
                let scratch = &mut self.npdq_scratch;
                match tree.with_consistent(|view| {
                    scratch.clear();
                    npdq.try_execute(view, &q, t, |r: &NsiSegmentRecord<D>| {
                        scratch.push(r.ids());
                    })
                }) {
                    Ok(stats) => {
                        self.out.results.extend(self.npdq_scratch.iter().copied());
                        (stats, None)
                    }
                    Err(e) => (QueryStats::default(), Some(e)),
                }
            }
        };
        let latency_ns = started.elapsed().as_nanos() as u64;
        let results = self.out.results.len() - before_results;
        self.out.stats += frame_stats;
        self.out.frames.push(FrameReport {
            frame: k,
            results,
            latency_ns,
            stats: frame_stats,
        });
        obs::trace(obs::TraceEvent::FrameEnd {
            session: self.index as u32,
            frame: k as u32,
            results: results as u32,
            latency_ns,
        });
        match frame_err {
            Some(e) => Err(e),
            None => Ok(Some(latency_ns)),
        }
    }

    fn finish(mut self) -> SessionOutput {
        match &self.engine {
            Engine::Pdq(pdq) => self.out.queue_hwm = pdq.queue_hwm(),
            Engine::Npdq(npdq) => self.out.discarded_subtrees = npdq.discarded_subtrees(),
        }
        self.out
    }
}

/// A serving instance owning one shared NSI tree.
///
/// ```
/// use mobiquery::{DqServer, SessionKind, SessionSpec, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// tree.insert(
///     NsiSegmentRecord::new(7, 0, Interval::new(0.0, 100.0), [5.5, 0.5], [5.5, 0.5]),
///     0.0,
/// );
/// let server = DqServer::new(tree);
/// let spec = SessionSpec {
///     kind: SessionKind::Pdq,
///     trajectory: Trajectory::linear(
///         Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///         [1.0, 0.0], Interval::new(0.0, 10.0), 2),
///     frame_times: (0..=10).map(f64::from).collect(),
/// };
/// let report = server.serve(&[spec], &[]);
/// assert_eq!(report.sessions[0].results, vec![(7, 0)]);
/// ```
pub struct DqServer<const D: usize, S: PageStore> {
    /// The shared store is `Arc`-wrapped so optimistic [`rtree::TreeReader`]s
    /// can clone a handle per session thread without `S: Clone`.
    tree: RwLock<RTree<NsiSegmentRecord<D>, Arc<S>>>,
    /// Optional metrics sink: when set, serving runs record drain and
    /// write-lock-hold latency histograms plus run totals into it.
    metrics: Option<Arc<obs::MetricsRegistry>>,
    /// How the writer handles transient insert failures (see
    /// [`Self::with_writer_retry`]).
    writer_retry: RetryPolicy,
    /// When set, the writer group-commits every frame batch to the WAL
    /// before applying it and checkpoints periodically (see
    /// [`Self::with_durability`]).
    durability: Option<DurabilityHook<D, S>>,
}

/// The writer's running tallies over one serve.
#[derive(Default)]
struct WriterState {
    applied: usize,
    reads: u64,
    writes: u64,
    outcome: SessionOutcome,
    wal_appends: u64,
    wal_commit_ns: u64,
    checkpoints: u64,
}

impl WriterState {
    /// A failed writer (full device) stops applying; checkpoints must
    /// also stop, or truncation would drop WAL records that never reached
    /// the tree.
    fn failed(&self) -> bool {
        matches!(self.outcome, SessionOutcome::Failed(_))
    }
}

/// Record a clock wait into the `service.clock_wait_ns` histogram —
/// only real waits; the fast path (watermark already past) is not a
/// sample, it is the common case.
pub(crate) fn record_wait(hist: &Option<Arc<obs::Histogram>>, ns: u64) {
    if ns > 0 {
        if let Some(h) = hist {
            h.record(ns);
        }
    }
}

impl<const D: usize, S: PageStore> DqServer<D, S> {
    /// Take ownership of a (possibly pre-loaded) tree.
    pub fn new(tree: RTree<NsiSegmentRecord<D>, S>) -> Self {
        DqServer {
            tree: RwLock::new(tree.map_store(Arc::new)),
            metrics: None,
            writer_retry: RetryPolicy::default(),
            durability: None,
        }
    }

    /// Record serving metrics into `registry` (builder-style).
    ///
    /// Metric names: `service.drain_ns` (per-session-frame drain latency
    /// histogram), `service.writer.lock_hold_ns` (write-lock hold-time
    /// histogram), `service.clock_wait_ns` (time any participant spent
    /// blocked on a frame-clock watermark), `service.frame_lag` (gauge:
    /// deepest applied-watermark lead over the slowest attached session),
    /// `service.frames` / `service.inserts` / `service.results` /
    /// `service.writer.reads` (run counters), and
    /// `service.pdq.queue_hwm` / `service.npdq.discarded` (gauges).
    pub fn with_metrics(mut self, registry: Arc<obs::MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// How the writer treats transient insert failures (builder-style).
    ///
    /// A failed [`rtree::RTree::try_insert`] descent leaves the tree
    /// unchanged, so the writer can retry the same record. Backoff sleeps
    /// happen with the write lock *released* — the clock's flow control
    /// keeps sessions out of the tree during the write section anyway,
    /// but a held-across-sleep lock would serialize recovery behind the
    /// slowest retry. Default: [`RetryPolicy::default`].
    pub fn with_writer_retry(mut self, policy: RetryPolicy) -> Self {
        self.writer_retry = policy;
        self
    }

    /// Make the write path durable (builder-style): before applying any
    /// frame's batch the writer group-commits it as one WAL record in
    /// `log` (then advances the clock's `committed` watermark), takes an
    /// initial checkpoint of the (possibly preloaded) tree before the
    /// first frame, and checkpoints again every `checkpoint_every`
    /// commits — so [`DurableLog::durable_image`] recovers a tree
    /// bit-identical to this one at every committed-frame prefix.
    ///
    /// The [`SnapshotSource`] bound lives only here: the checkpoint path
    /// is captured as a plain function pointer, so `serve` stays generic
    /// over any [`PageStore`].
    pub fn with_durability(mut self, log: Arc<DurableLog>) -> Self
    where
        S: SnapshotSource,
    {
        self.durability = Some(DurabilityHook::for_tree(log));
        self
    }

    /// Tear the server down, returning the tree (store still `Arc`-wrapped).
    pub fn into_tree(self) -> RTree<NsiSegmentRecord<D>, Arc<S>> {
        self.tree.into_inner()
    }

    /// Records currently indexed.
    pub fn len(&self) -> u64 {
        self.tree.read().len()
    }

    /// True iff the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run a value out of the shared tree under the read lock (e.g. I/O
    /// counters or buffer statistics of the backing store).
    pub fn with_tree<T>(&self, f: impl FnOnce(&RTree<NsiSegmentRecord<D>, Arc<S>>) -> T) -> T {
        f(&self.tree.read())
    }

    /// Global frame steps for a run: enough for every plan's window and
    /// every insert batch.
    fn step_count(&self, plans: &[SessionPlan<D>], inserts: &[Vec<(NsiSegmentRecord<D>, f64)>]) -> usize {
        plans
            .iter()
            .filter_map(|p| p.window().map(|(_, last)| last as usize + 1))
            .max()
            .unwrap_or(0)
            .max(inserts.len())
    }

    /// Apply one frame's insert batch, collecting reports and tallies
    /// into `w`. Transient failures are retried per [`Self::with_writer_retry`];
    /// each backoff sleep happens *after* the write guard drops, and the
    /// resume re-acquires the lock and continues from the failed record.
    /// Records whose errors are unrecoverable (corrupt page) or whose
    /// retry budget is exhausted are skipped and logged in `w.outcome`.
    fn apply_batch(
        &self,
        batch: &[(NsiSegmentRecord<D>, f64)],
        reports: &mut Vec<NsiReport<D>>,
        w: &mut WriterState,
        hold_hist: Option<&Arc<obs::Histogram>>,
    ) {
        let mut idx = 0;
        let mut attempt = 0u32;
        while idx < batch.len() {
            let backoff = {
                let mut tree = self.tree.write();
                let held = Instant::now();
                let before = tree.level_counters().snapshot();
                let mut backoff = None;
                while idx < batch.len() {
                    let (rec, now) = &batch[idx];
                    match tree.try_insert(*rec, *now) {
                        Ok(report) => {
                            reports.push(report);
                            w.applied += 1;
                            idx += 1;
                            attempt = 0;
                        }
                        Err(e) if e.is_transient() && attempt + 1 < self.writer_retry.max_attempts => {
                            attempt += 1;
                            backoff = Some(self.writer_retry.backoff(attempt));
                            break;
                        }
                        Err(e @ StorageError::Full { .. }) => {
                            // A full device stays full: retrying or
                            // skipping to the next record would just fail
                            // again, so the writer fails for the run and
                            // stops applying. With durability on, the
                            // batch is already WAL-committed — nothing is
                            // lost, it replays onto a larger device.
                            w.outcome = SessionOutcome::Failed(format!("writer stopped: {e}"));
                            idx = batch.len();
                        }
                        Err(e) => {
                            w.outcome.record_error(e);
                            idx += 1;
                            attempt = 0;
                        }
                    }
                }
                let delta = tree.level_counters().snapshot() - before;
                w.reads += delta.total_reads();
                w.writes += delta.total_writes();
                if let Some(h) = hold_hist {
                    h.record(held.elapsed().as_nanos() as u64);
                }
                backoff
            };
            if let Some(pause) = backoff {
                std::thread::sleep(pause);
            }
        }
    }

    /// Serve every session concurrently — one scoped thread per session
    /// plus a writer thread — frames ordered by the frame clock.
    ///
    /// `inserts[k]` is the batch of `(record, timestamp)` the writer
    /// applies at the start of frame `k`, before any session processes
    /// that frame; its [`rtree::InsertReport`]s are broadcast to the PDQ
    /// sessions whose window covers frame `k`. Result sequences are
    /// deterministic and equal to [`Self::serve_serial`] on an
    /// identically prepared server.
    pub fn serve(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport
    where
        S: Sync + Send,
    {
        let plans: Vec<SessionPlan<D>> = specs.iter().cloned().map(SessionPlan::new).collect();
        self.serve_plans(&plans, inserts)
    }

    /// [`Self::serve`] with full per-session lifecycle control: join
    /// frames and consumption pacing. The clock protocol in one page:
    ///
    /// * The writer, per frame `k`: group-commit the batch when durable
    ///   (advancing `committed`), wait for every attached session's
    ///   permit ([`FrameClock::wait_ready`]), apply under the write
    ///   lock, broadcast reports to in-window PDQ mailboxes, advance
    ///   `applied`, checkpoint when due.
    /// * A session, per frame `k` of its window: wait for `applied` to
    ///   cover `k`, drain its mailbox, absorb + step its engine, then
    ///   ack `k + 2` — the permit for batch `k + 1`.
    /// * Joiners wait for `applied == join_frame` before building their
    ///   engines (the writer holds batch `join_frame` back until they
    ///   ack); finished or failed sessions detach, so nobody ever waits
    ///   on them again.
    pub fn serve_plans(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport
    where
        S: Sync + Send,
    {
        self.serve_plans_streamed(plans, inserts, &[])
    }

    /// [`Self::serve_plans`] with per-frame streaming: `sinks[i]` (when
    /// present) receives session `i`'s [`FrameDelta`] the moment each
    /// frame finishes, from the session's own thread, *before* the
    /// session acks the frame — a [`SinkVerdict::Detach`] therefore
    /// stops the session without it ever granting the next batch's
    /// permit, exactly the mid-run-failure path. Result sequences are
    /// unaffected by sinks: streamed deltas concatenate to precisely the
    /// results a plain run reports.
    pub fn serve_plans_streamed(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
        sinks: &[Option<&dyn FrameSink>],
    ) -> ServeReport
    where
        S: Sync + Send,
    {
        let steps = self.step_count(plans, inserts);
        let epoch_start = self.tree.read().epoch_stats();
        let is_pdq: Vec<bool> = plans.iter().map(|p| p.spec.kind == SessionKind::Pdq).collect();
        let windows: Vec<Option<(u64, u64)>> = plans.iter().map(SessionPlan::window).collect();
        let live = SessionLiveness::new(plans.len());
        let clock = FrameClock::new(windows.clone(), Arc::clone(&live), 0, self.durability.is_some());
        let mailbox_cap = mailbox_bound(inserts);
        let mailboxes: Vec<Mailbox<NsiReport<D>>> =
            plans.iter().map(|_| Mailbox::new()).collect();
        let mut writer = WriterState::default();
        // Histogram handles resolve once, up front: session threads then
        // record through lock-free atomics only.
        let drain_hist = self.metrics.as_ref().map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));
        let wait_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.clock_wait_ns"));
        let lag_gauge = self.metrics.as_ref().map(|m| m.gauge("service.frame_lag"));
        if let Some(d) = &self.durability {
            // The base checkpoint covers the preloaded tree, so recovery
            // always has a snapshot to replay onto. A failure here is
            // counted in the log's stats and the run proceeds: commits
            // still accumulate, and the next successful checkpoint
            // restores a full recovery story.
            let _ = d.ensure_initial(&self.tree.read());
        }

        let sessions = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    let clock = &clock;
                    let mailboxes = &mailboxes;
                    let tree = &self.tree;
                    let drain_hist = drain_hist.clone();
                    let wait_hist = wait_hist.clone();
                    let sink = sinks.get(i).copied().flatten();
                    scope.spawn(move || {
                        let Some((first, last)) = plan.window() else {
                            // Never scheduled: no engine, no clock
                            // attachment (the window table has `None`).
                            return SessionOutput::default();
                        };
                        let started = Instant::now();
                        // Joiners see the tree exactly as of their join
                        // frame: batches `< first` applied, batch `first`
                        // held back by our un-acked permit.
                        record_wait(&wait_hist, clock.wait_applied(first));
                        // Latch-free read path: every frame descends through
                        // this optimistic reader, never a read lock. Flow
                        // control keeps the writer out of the tree while we
                        // read, so validation always passes; the reader
                        // still validates every visit, making torn reads
                        // impossible even if the protocol drifts.
                        let reader = tree.read().reader();
                        let mut run =
                            catch_unwind(AssertUnwindSafe(|| SessionRun::start(i, &plan.spec, &reader)))
                                .map_err(|p| SessionOutcome::Failed(panic_message(p)));
                        if run.is_ok() {
                            clock.ack(i, first + 1);
                        }
                        if let Ok(r) = &mut run {
                            for k in first..=last {
                                record_wait(&wait_hist, clock.wait_applied(k + 1));
                                let reports = mailboxes[i].take();
                                let results_before = r.out.results.len();
                                let frames_before = r.out.frames.len();
                                // Contain panics to the engine work alone;
                                // the clock calls stay outside so a caught
                                // panic can't corrupt the frame protocol.
                                let stepped = catch_unwind(AssertUnwindSafe(|| {
                                    r.absorb(&reader, &reports);
                                    r.try_step(&reader, k as usize)
                                }));
                                match stepped {
                                    Ok(Ok(Some(ns))) => {
                                        if let Some(h) = &drain_hist {
                                            h.record(ns);
                                        }
                                    }
                                    Ok(Ok(None)) => {}
                                    Ok(Err(e)) => r.out.outcome.record_error(e),
                                    Err(p) => {
                                        // Dead engine: keep the results so
                                        // far, stop consuming frames. The
                                        // detach below releases the writer.
                                        r.out.outcome = SessionOutcome::Failed(panic_message(p));
                                        break;
                                    }
                                }
                                if r.out.frames.len() > frames_before {
                                    if let Some(sink) = sink {
                                        let f = r.out.frames.last().expect("frame just reported");
                                        let delta = FrameDelta {
                                            session: i,
                                            frame: f.frame,
                                            results: &r.out.results[results_before..],
                                            latency_ns: f.latency_ns,
                                        };
                                        if sink.on_frame(&delta) == SinkVerdict::Detach {
                                            // Evicted by its consumer: the
                                            // un-acked permit is released by
                                            // the detach below, like any
                                            // mid-run failure.
                                            r.out.outcome = SessionOutcome::Failed(
                                                "detached by frame sink".into(),
                                            );
                                            break;
                                        }
                                    }
                                }
                                if !plan.frame_delay.is_zero() {
                                    std::thread::sleep(plan.frame_delay);
                                }
                                clock.ack(i, k + 2);
                            }
                        }
                        // End of life — finished, failed, or the engine
                        // never started: detach so the writer stops
                        // waiting on this slot, permanently.
                        clock.detach(i);
                        let mut out = match run {
                            Ok(r) => r.finish(),
                            Err(outcome) => SessionOutput {
                                outcome,
                                ..SessionOutput::default()
                            },
                        };
                        out.wall_ns = started.elapsed().as_nanos() as u64;
                        out
                    })
                })
                .collect();

            // This thread is the writer.
            for k in 0..steps {
                let ku = k as u64;
                if let Some(batch) = inserts.get(k) {
                    // Durability first: the frame's whole batch becomes
                    // durable as ONE group-committed WAL record before
                    // any tree page is written — the `committed`
                    // watermark publishes exactly that fact. A failed
                    // (full-device) writer keeps committing — recovery
                    // replays the backlog onto a larger device.
                    if let Some(d) = &self.durability {
                        let committed = Instant::now();
                        d.log.commit_frame(ku, batch);
                        writer.wal_appends += 1;
                        writer.wal_commit_ns += committed.elapsed().as_nanos() as u64;
                        clock.advance_committed(ku + 1);
                        obs::trace(obs::TraceEvent::FrameAdvance {
                            region: 0,
                            frame: k as u32,
                            watermark: obs::Watermark::Committed,
                        });
                    }
                    let mut reports: Vec<NsiReport<D>> = Vec::with_capacity(batch.len());
                    if !writer.failed() {
                        // Flow control: every live attached session has
                        // acked past `k` (finished frame `k - 1`, or —
                        // at its join frame — built its engines) before
                        // the write lock is taken.
                        record_wait(&wait_hist, clock.wait_ready(ku));
                        self.apply_batch(batch, &mut reports, &mut writer, hold_hist.as_ref());
                    }
                    // Broadcast outside the write lock: mailbox pushes
                    // clone reports and take per-session locks, none of
                    // which needs the tree. Only in-window live PDQ
                    // sessions receive the batch — finished sessions have
                    // nobody left to drain their mailbox.
                    let mut fanout = 0u32;
                    for (i, mb) in mailboxes.iter().enumerate() {
                        let in_window = windows[i].is_some_and(|(f, l)| f <= ku && ku <= l);
                        if is_pdq[i] && in_window && live.is_live(i) {
                            mb.push_all(&reports, mailbox_cap);
                            fanout += 1;
                        }
                    }
                    obs::trace(obs::TraceEvent::InsertBroadcast {
                        reports: reports.len() as u32,
                        sessions: fanout,
                    });
                }
                let lag = clock.advance_applied(ku + 1);
                if let Some(g) = &lag_gauge {
                    g.record_max(lag as i64);
                }
                obs::trace(obs::TraceEvent::FrameAdvance {
                    region: 0,
                    frame: k as u32,
                    watermark: obs::Watermark::Applied,
                });
                // Checkpoint at the frame boundary: the tree is exactly
                // `state_k` (this thread is the only mutator) and
                // concurrent sessions read latch-free, so the read lock
                // is immediately available. Never checkpoint once the
                // writer has failed: truncation would drop committed
                // records the tree never absorbed.
                if let Some(d) = &self.durability {
                    if !writer.failed()
                        && d.log.due_for_checkpoint()
                        && d.checkpoint(&self.tree.read()).is_ok()
                    {
                        writer.checkpoints += 1;
                    }
                }
            }

            // Joining can only fail for panics *outside* the contained
            // region (they already unwound through the frame loop and the
            // detach, so this run's results are forfeit anyway);
            // synthesize a Failed output rather than poisoning the whole
            // serve. The writer's loop above has finished by this point,
            // so its tallies are complete no matter which sessions died.
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(p) => SessionOutput {
                        outcome: SessionOutcome::Failed(panic_message(p)),
                        ..SessionOutput::default()
                    },
                })
                .collect()
        });

        let deepest = mailboxes.iter().map(Mailbox::hwm).max().unwrap_or(0);
        publish_mailbox_hwm(&self.metrics, deepest);
        let report = ServeReport {
            sessions,
            frames: steps,
            inserts_applied: writer.applied,
            writer_reads: writer.reads,
            writer_writes: writer.writes,
            writer_outcome: writer.outcome,
            wal_appends: writer.wal_appends,
            wal_commit_ns: writer.wal_commit_ns,
            checkpoints: writer.checkpoints,
        };
        self.publish_run(&report, self.tree.read().epoch_stats() - epoch_start);
        report
    }

    /// The single-threaded reference: identical protocol, identical
    /// results, no threads — the oracle for the concurrency tests and a
    /// baseline for the serving bench. Sessions read through `&RTree`
    /// directly (the validation-free [`rtree::TreeRead`] impl), so the
    /// optimistic path's results must match these bit-for-bit.
    pub fn serve_serial(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport {
        let plans: Vec<SessionPlan<D>> = specs.iter().cloned().map(SessionPlan::new).collect();
        self.serve_serial_plans(&plans, inserts)
    }

    /// [`Self::serve_plans`]'s single-threaded reference: the same frame
    /// order the clock enforces, executed inline (joiners build their
    /// engines right before their join frame's batch applies; frame
    /// delays are ignored — pacing never changes results).
    pub fn serve_serial_plans(
        &self,
        plans: &[SessionPlan<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport {
        let steps = self.step_count(plans, inserts);
        let epoch_start = self.tree.read().epoch_stats();
        let windows: Vec<Option<(u64, u64)>> = plans.iter().map(SessionPlan::window).collect();
        let mut writer = WriterState::default();
        let drain_hist = self.metrics.as_ref().map(|m| m.histogram("service.drain_ns"));
        let hold_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("service.writer.lock_hold_ns"));
        if let Some(d) = &self.durability {
            let _ = d.ensure_initial(&self.tree.read());
        }
        // Engines are built lazily at each plan's join frame, against the
        // pre-batch tree — the same state the concurrent joiner pins via
        // the clock.
        let mut runs: Vec<Option<Result<SessionRun<'_, D>, SessionOutcome>>> =
            plans.iter().map(|_| None).collect();
        let mut started: Vec<Option<Instant>> = vec![None; plans.len()];
        for k in 0..steps {
            {
                let tree = self.tree.read();
                for (i, plan) in plans.iter().enumerate() {
                    if windows[i].is_some_and(|(f, _)| f == k as u64) {
                        started[i] = Some(Instant::now());
                        runs[i] = Some(
                            catch_unwind(AssertUnwindSafe(|| SessionRun::start(i, &plan.spec, &*tree)))
                                .map_err(|p| SessionOutcome::Failed(panic_message(p))),
                        );
                    }
                }
            }
            let mut reports = Vec::new();
            if let Some(batch) = inserts.get(k) {
                // Same durable protocol as the concurrent serve: group
                // commit first, then apply (never after a full device).
                if let Some(d) = &self.durability {
                    let committed = Instant::now();
                    d.log.commit_frame(k as u64, batch);
                    writer.wal_appends += 1;
                    writer.wal_commit_ns += committed.elapsed().as_nanos() as u64;
                }
                if !writer.failed() {
                    self.apply_batch(batch, &mut reports, &mut writer, hold_hist.as_ref());
                }
            }
            if let Some(d) = &self.durability {
                if !writer.failed()
                    && d.log.due_for_checkpoint()
                    && d.checkpoint(&self.tree.read()).is_ok()
                {
                    writer.checkpoints += 1;
                }
            }
            let tree = self.tree.read();
            for (i, run) in runs.iter_mut().enumerate() {
                let Some(Ok(r)) = run.as_mut() else { continue };
                if matches!(r.out.outcome, SessionOutcome::Failed(_)) {
                    continue;
                }
                if !windows[i].is_some_and(|(f, l)| f <= k as u64 && k as u64 <= l) {
                    continue;
                }
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    r.absorb(&*tree, &reports);
                    r.try_step(&*tree, k)
                }));
                match stepped {
                    Ok(Ok(Some(ns))) => {
                        if let Some(h) = &drain_hist {
                            h.record(ns);
                        }
                    }
                    Ok(Ok(None)) => {}
                    Ok(Err(e)) => r.out.outcome.record_error(e),
                    Err(p) => r.out.outcome = SessionOutcome::Failed(panic_message(p)),
                }
            }
        }
        let report = ServeReport {
            sessions: runs
                .into_iter()
                .enumerate()
                .map(|(i, run)| {
                    let mut out = match run {
                        Some(Ok(r)) => r.finish(),
                        Some(Err(outcome)) => SessionOutput {
                            outcome,
                            ..SessionOutput::default()
                        },
                        None => SessionOutput::default(),
                    };
                    if let Some(s) = started[i] {
                        out.wall_ns = s.elapsed().as_nanos() as u64;
                    }
                    out
                })
                .collect(),
            frames: steps,
            inserts_applied: writer.applied,
            writer_reads: writer.reads,
            writer_writes: writer.writes,
            writer_outcome: writer.outcome,
            wal_appends: writer.wal_appends,
            wal_commit_ns: writer.wal_commit_ns,
            checkpoints: writer.checkpoints,
        };
        self.publish_run(&report, self.tree.read().epoch_stats() - epoch_start);
        report
    }

    /// Record a finished run's totals into the attached registry.
    ///
    /// `retries` is the run's delta of the tree's optimistic-read
    /// counters: `tree.read_retries` (node reads performed but discarded
    /// by version validation — these *are* counted in the level read
    /// counters, so `levels.total_reads == attributed reads + retried
    /// reads`) and `tree.version_conflicts` (conflicts surfaced to a
    /// session as a transient error after retry exhaustion).
    fn publish_run(&self, report: &ServeReport, retries: EpochStats) {
        let Some(reg) = &self.metrics else { return };
        reg.counter("tree.read_retries").add(retries.read_retries);
        reg.counter("tree.version_conflicts")
            .add(retries.version_conflicts);
        reg.counter("service.frames").add(report.frames as u64);
        reg.counter("service.inserts").add(report.inserts_applied as u64);
        reg.counter("service.results").add(report.total_results() as u64);
        reg.counter("service.writer.reads").add(report.writer_reads);
        reg.counter("service.writer.writes").add(report.writer_writes);
        reg.counter("service.session.reads")
            .add(report.total_stats().disk_accesses);
        if report.checkpoints > 0 {
            reg.counter("service.checkpoints").add(report.checkpoints);
        }
        for s in &report.sessions {
            reg.gauge("service.pdq.queue_hwm")
                .record_max(s.queue_hwm as i64);
            if s.discarded_subtrees > 0 {
                reg.counter("service.npdq.discarded").add(s.discarded_subtrees);
            }
            match &s.outcome {
                SessionOutcome::Ok => {}
                SessionOutcome::Degraded { errors } => {
                    reg.counter("service.sessions.degraded").add(1);
                    reg.counter("service.sessions.errors").add(errors.len() as u64);
                }
                SessionOutcome::Failed(_) => {
                    reg.counter("service.sessions.failed").add(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use stkit::{Interval, Rect};
    use storage::Pager;

    type R = NsiSegmentRecord<2>;

    fn line_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    fn slide_spec(kind: SessionKind, frames: usize, span: f64) -> SessionSpec<2> {
        SessionSpec {
            kind,
            trajectory: Trajectory::linear(
                Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
                [1.0, 0.0],
                Interval::new(0.0, span),
                2,
            ),
            frame_times: (0..=frames).map(|k| span * k as f64 / frames as f64).collect(),
        }
    }

    #[test]
    fn single_pdq_session_matches_direct_engine() {
        let server = DqServer::new(line_tree(30));
        let spec = slide_spec(SessionKind::Pdq, 10, 30.0);
        let report = server.serve(std::slice::from_ref(&spec), &[]);
        let tree = server.into_tree();
        let mut direct = PdqEngine::start(&tree, spec.trajectory.clone());
        let expect: Vec<(u32, u32)> = spec
            .frame_times
            .windows(2)
            .flat_map(|w| direct.drain_window(&tree, w[0], w[1]))
            .map(|r| (r.record.oid, r.record.seq))
            .collect();
        assert_eq!(report.sessions[0].results, expect);
        assert!(report.sessions[0].stats.disk_accesses > 0);
    }

    #[test]
    fn parallel_equals_serial_with_writer() {
        let specs: Vec<SessionSpec<2>> = vec![
            slide_spec(SessionKind::Pdq, 20, 40.0),
            slide_spec(SessionKind::Npdq, 20, 40.0),
            slide_spec(SessionKind::Pdq, 10, 40.0),
            slide_spec(SessionKind::Npdq, 10, 40.0),
        ];
        // Writer: two objects per frame dropped ahead of the window.
        let inserts: Vec<Vec<(R, f64)>> = (0..20)
            .map(|k| {
                let t = 40.0 * k as f64 / 20.0;
                (0..2)
                    .map(|j| {
                        let x = (t + 5.0 + j as f64) % 39.0;
                        (
                            R::new(1000 + 2 * k + j, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        let parallel = DqServer::new(line_tree(40)).serve(&specs, &inserts);
        let serial = DqServer::new(line_tree(40)).serve_serial(&specs, &inserts);
        assert_eq!(parallel.inserts_applied, 40);
        assert_eq!(serial.inserts_applied, 40);
        for (p, s) in parallel.sessions.iter().zip(&serial.sessions) {
            assert_eq!(p.results, s.results, "concurrent run must be deterministic");
        }
        assert!(parallel.total_results() > 0);
    }

    #[test]
    fn empty_run_is_empty() {
        let server: DqServer<2, Pager> = DqServer::new(line_tree(5));
        assert!(!server.is_empty());
        assert_eq!(server.len(), 5);
        let report = server.serve(&[], &[]);
        assert_eq!(report.frames, 0);
        assert_eq!(report.sessions.len(), 0);
    }

    #[test]
    fn writer_only_serve_applies_every_batch() {
        // No sessions at all: the clock has no attached windows, so the
        // writer never waits and must still apply every frame's batch.
        let server: DqServer<2, Pager> = DqServer::new(line_tree(5));
        let inserts: Vec<Vec<(R, f64)>> = (0..7)
            .map(|k| {
                vec![(
                    R::new(
                        500 + k,
                        0,
                        Interval::new(0.0, 100.0),
                        [k as f64, 3.5],
                        [k as f64, 3.5],
                    ),
                    k as f64,
                )]
            })
            .collect();
        let report = server.serve(&[], &inserts);
        assert_eq!(report.frames, 7);
        assert_eq!(report.inserts_applied, 7);
        assert_eq!(report.sessions.len(), 0);
        assert!(report.writer_reads > 0, "insert descents read nodes");
        assert!(report.writer_writes > 0, "inserts write nodes");
        assert_eq!(server.len(), 12);
    }

    #[test]
    fn short_schedule_session_stops_while_writer_continues() {
        // A session whose frame schedule (3 steps) is much shorter than
        // the insert schedule (10 batches): the run spans 10 frames, the
        // session reports only its own 3, detaches, and the writer
        // finishes the remaining batches without waiting on it.
        let server = DqServer::new(line_tree(30));
        let spec = slide_spec(SessionKind::Pdq, 3, 3.0);
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                vec![(
                    R::new(
                        700 + k,
                        0,
                        Interval::new(0.0, 100.0),
                        [1.5 + k as f64, 0.5],
                        [1.5 + k as f64, 0.5],
                    ),
                    k as f64,
                )]
            })
            .collect();
        let report = server.serve(std::slice::from_ref(&spec), &inserts);
        assert_eq!(report.frames, 10);
        assert_eq!(report.inserts_applied, 10);
        assert_eq!(report.sessions[0].frames.len(), 3, "only scheduled frames report");
        // Still deterministic against the serial oracle.
        let serial = DqServer::new(line_tree(30)).serve_serial(std::slice::from_ref(&spec), &inserts);
        assert_eq!(report.sessions[0].results, serial.sessions[0].results);
    }

    #[test]
    fn broadcast_after_lock_drop_keeps_parallel_equal_to_serial() {
        // Heavier regression for the mailbox protocol: many PDQ sessions,
        // multi-record batches every frame (every batch forces an
        // InsertBroadcast after the write guard drops).
        let specs: Vec<SessionSpec<2>> = (0..6)
            .map(|i| slide_spec(SessionKind::Pdq, 15 + i, 30.0))
            .collect();
        let inserts: Vec<Vec<(R, f64)>> = (0..21)
            .map(|k| {
                let t = 30.0 * k as f64 / 21.0;
                (0..3)
                    .map(|j| {
                        let x = (t + 3.0 + j as f64) % 29.0;
                        (
                            R::new(2000 + 3 * k + j, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        let parallel = DqServer::new(line_tree(30)).serve(&specs, &inserts);
        let serial = DqServer::new(line_tree(30)).serve_serial(&specs, &inserts);
        assert_eq!(parallel.inserts_applied, 63);
        for (p, s) in parallel.sessions.iter().zip(&serial.sessions) {
            assert_eq!(p.results, s.results);
        }
        assert_eq!(parallel.writer_reads, serial.writer_reads);
        assert_eq!(parallel.writer_writes, serial.writer_writes);
    }

    #[test]
    fn frame_reports_reconcile_and_timeline_is_ordered() {
        let specs: Vec<SessionSpec<2>> = vec![
            slide_spec(SessionKind::Pdq, 8, 20.0),
            slide_spec(SessionKind::Npdq, 5, 20.0),
        ];
        let registry = Arc::new(obs::MetricsRegistry::new());
        let server = DqServer::new(line_tree(20)).with_metrics(Arc::clone(&registry));
        let report = server.serve(&specs, &[]);

        for s in &report.sessions {
            let mut sum = QueryStats::default();
            let mut results = 0;
            for f in &s.frames {
                sum += f.stats;
                results += f.results;
            }
            assert_eq!(sum, s.stats, "frame stats must sum to session stats");
            assert_eq!(results, s.results.len());
        }
        assert_eq!(report.sessions[0].frames.len(), 8);
        assert_eq!(report.sessions[1].frames.len(), 6); // NPDQ: one step per frame time
        assert!(report.sessions[0].queue_hwm > 0);
        assert!(report.sessions[0].wall_ns > 0, "session wall time recorded");

        let timeline = report.timeline();
        assert_eq!(timeline.len(), 14);
        let keys: Vec<(usize, usize)> = timeline.iter().map(|&(i, f)| (f.frame, i)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "timeline ordered by (frame, session)");

        // The registry saw one drain sample per in-schedule frame and the
        // run totals.
        match registry.get("service.drain_ns") {
            Some(obs::MetricValue::Histogram { count, .. }) => assert_eq!(count, 14),
            other => panic!("missing drain histogram: {other:?}"),
        }
        assert_eq!(registry.counter_value("service.frames"), 8);
        assert_eq!(
            registry.counter_value("service.session.reads"),
            report.total_stats().disk_accesses
        );
    }

    #[test]
    fn join_mid_run_sees_exactly_the_tail_and_matches_serial() {
        // A joiner at frame 4 of a 10-step schedule: reports exactly
        // frames 4..=9, delivers no duplicates, and the concurrent run
        // equals the serial reference bit-for-bit.
        let spec = slide_spec(SessionKind::Pdq, 10, 30.0);
        let plans = vec![
            SessionPlan::new(spec.clone()),
            SessionPlan::new(spec).join_at(4),
        ];
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                let t = 3.0 * k as f64;
                vec![(
                    R::new(4000 + k as u32, 0, Interval::new(t, 100.0), [(t + 4.0) % 29.0, 0.5], [(t + 4.0) % 29.0, 0.5]),
                    t,
                )]
            })
            .collect();
        let parallel = DqServer::new(line_tree(30)).serve_plans(&plans, &inserts);
        let serial = DqServer::new(line_tree(30)).serve_serial_plans(&plans, &inserts);
        let joiner = &parallel.sessions[1];
        assert_eq!(joiner.frames.len(), 6, "frames >= join watermark only");
        assert_eq!(joiner.frames[0].frame, 4);
        let mut seen = std::collections::HashSet::new();
        assert!(joiner.results.iter().all(|id| seen.insert(*id)), "every object once");
        for (p, s) in parallel.sessions.iter().zip(&serial.sessions) {
            assert_eq!(p.results, s.results);
        }
    }

    /// One recorded delta: `(frame, results)`.
    type RecordedDelta = (usize, Vec<(u32, u32)>);

    /// A sink that accumulates every delta it is offered, optionally
    /// detaching after a fixed number of frames.
    struct RecordingSink {
        got: Mutex<Vec<RecordedDelta>>,
        detach_after: usize,
    }

    impl FrameSink for RecordingSink {
        fn on_frame(&self, delta: &FrameDelta<'_>) -> SinkVerdict {
            let mut got = self.got.lock();
            got.push((delta.frame, delta.results.to_vec()));
            if got.len() >= self.detach_after {
                SinkVerdict::Detach
            } else {
                SinkVerdict::Continue
            }
        }
    }

    #[test]
    fn streamed_deltas_reassemble_the_serial_results() {
        let specs: Vec<SessionSpec<2>> = vec![
            slide_spec(SessionKind::Pdq, 12, 30.0),
            slide_spec(SessionKind::Npdq, 12, 30.0),
        ];
        let plans: Vec<SessionPlan<2>> = specs.iter().cloned().map(SessionPlan::new).collect();
        let inserts: Vec<Vec<(R, f64)>> = (0..12)
            .map(|k| {
                let t = 30.0 * k as f64 / 12.0;
                vec![(
                    R::new(6000 + k as u32, 0, Interval::new(t, 100.0), [(t + 4.0) % 29.0, 0.5], [(t + 4.0) % 29.0, 0.5]),
                    t,
                )]
            })
            .collect();
        let sinks: Vec<RecordingSink> = (0..2)
            .map(|_| RecordingSink {
                got: Mutex::new(Vec::new()),
                detach_after: usize::MAX,
            })
            .collect();
        let refs: Vec<Option<&dyn FrameSink>> =
            sinks.iter().map(|s| Some(s as &dyn FrameSink)).collect();
        let report = DqServer::new(line_tree(30)).serve_plans_streamed(&plans, &inserts, &refs);
        let serial = DqServer::new(line_tree(30)).serve_serial_plans(&plans, &inserts);
        for (i, sink) in sinks.iter().enumerate() {
            let got = sink.got.lock();
            let frames: Vec<usize> = got.iter().map(|(f, _)| *f).collect();
            let expect_frames: Vec<usize> =
                report.sessions[i].frames.iter().map(|f| f.frame).collect();
            assert_eq!(frames, expect_frames, "one delta per reported frame");
            let streamed: Vec<(u32, u32)> =
                got.iter().flat_map(|(_, r)| r.iter().copied()).collect();
            assert_eq!(streamed, serial.sessions[i].results, "deltas reassemble serial");
        }
    }

    #[test]
    fn sink_detach_frees_the_writer_and_fails_only_that_session() {
        let specs: Vec<SessionSpec<2>> = vec![
            slide_spec(SessionKind::Pdq, 10, 30.0),
            slide_spec(SessionKind::Pdq, 10, 30.0),
        ];
        let plans: Vec<SessionPlan<2>> = specs.iter().cloned().map(SessionPlan::new).collect();
        let inserts: Vec<Vec<(R, f64)>> = (0..10)
            .map(|k| {
                let t = 3.0 * k as f64;
                vec![(
                    R::new(7000 + k as u32, 0, Interval::new(t, 100.0), [(t + 4.0) % 29.0, 0.5], [(t + 4.0) % 29.0, 0.5]),
                    t,
                )]
            })
            .collect();
        let slow = RecordingSink {
            got: Mutex::new(Vec::new()),
            detach_after: 3,
        };
        let refs: Vec<Option<&dyn FrameSink>> = vec![Some(&slow as &dyn FrameSink), None];
        let report = DqServer::new(line_tree(30)).serve_plans_streamed(&plans, &inserts, &refs);
        assert_eq!(report.frames, 10, "detach must not stall the run");
        assert_eq!(report.inserts_applied, 10);
        assert_eq!(slow.got.lock().len(), 3);
        assert!(
            matches!(&report.sessions[0].outcome, SessionOutcome::Failed(m) if m.contains("detached")),
            "evicted session fails: {:?}",
            report.sessions[0].outcome
        );
        let serial = DqServer::new(line_tree(30)).serve_serial_plans(&plans, &inserts);
        assert_eq!(report.sessions[1].results, serial.sessions[1].results, "healthy session unaffected");
    }

    #[test]
    fn mailbox_hwm_gauge_stays_within_one_batch() {
        let specs: Vec<SessionSpec<2>> = (0..4)
            .map(|_| slide_spec(SessionKind::Pdq, 15, 30.0))
            .collect();
        let inserts: Vec<Vec<(R, f64)>> = (0..15)
            .map(|k| {
                let t = 2.0 * k as f64;
                (0..3)
                    .map(|j| {
                        let x = (t + 3.0 + j as f64) % 29.0;
                        (
                            R::new(8000 + 3 * k + j, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        let registry = Arc::new(obs::MetricsRegistry::new());
        let server = DqServer::new(line_tree(30)).with_metrics(Arc::clone(&registry));
        server.serve(&specs, &inserts);
        let hwm = registry.gauge_value("service.mailbox_hwm");
        let bound = inserts.iter().map(Vec::len).max().unwrap_or(0) as i64;
        assert!(hwm > 0, "PDQ broadcasts must land in mailboxes");
        assert!(hwm <= bound, "mailbox hwm {hwm} exceeds one-batch bound {bound}");
    }
}
