//! Concurrent query service: many dynamic-query sessions over one tree.
//!
//! The paper's system picture (§2, Fig. 1) is a *server* evaluating many
//! clients' dynamic queries against one shared index while updates keep
//! arriving. [`DqServer`] realises that picture: it owns a single NSI
//! tree behind a [`parking_lot::RwLock`], runs N PDQ/NPDQ sessions on a
//! scoped thread pool with per-frame batching, and broadcasts every
//! [`rtree::InsertReport`] produced by the writer to all live PDQ
//! engines (the §4.1 update-management protocol), while NPDQ sessions
//! pick updates up through node timestamps (§4.2).
//!
//! Frames are synchronised with a [`std::sync::Barrier`]: each frame,
//! the writer applies that frame's insert batch under the write lock and
//! broadcasts the reports, then every session processes the frame under
//! a read lock. All sessions therefore observe identical tree states,
//! which makes the concurrent run *bitwise deterministic*: its
//! per-session result sequences equal [`DqServer::serve_serial`]'s (the
//! single-threaded reference executing the same protocol), which the
//! `service` integration test checks.

use crate::layout::MotionRecord;
use crate::npdq::NpdqEngine;
use crate::pdq::{PdqEngine, PdqResult};
use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use crate::trajectory::Trajectory;
use parking_lot::{Mutex, RwLock};
use rtree::{InsertReport, NsiSegmentRecord, RTree, Record};
use std::sync::Barrier;
use storage::PageStore;

/// The insert report the writer broadcasts to PDQ sessions.
pub type NsiReport<const D: usize> =
    InsertReport<<NsiSegmentRecord<D> as Record>::Key, NsiSegmentRecord<D>>;

/// Which §4 algorithm a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// Predictive: trajectory known ahead, one tree traversal (§4.1).
    Pdq,
    /// Non-predictive: per-frame snapshot queries with previous-query
    /// discarding (§4.2), here over the shared NSI layout.
    Npdq,
}

/// One client's dynamic query: the trajectory it follows and the frame
/// times at which it asks for results.
#[derive(Clone, Debug)]
pub struct SessionSpec<const D: usize> {
    /// Algorithm to serve this session with.
    pub kind: SessionKind,
    /// The moving window.
    pub trajectory: Trajectory<D>,
    /// Monotone frame schedule. A PDQ session drains the window between
    /// consecutive times; an NPDQ session evaluates a snapshot at each.
    pub frame_times: Vec<f64>,
}

impl<const D: usize> SessionSpec<D> {
    /// Frame steps this session needs.
    fn steps(&self) -> usize {
        match self.kind {
            SessionKind::Pdq => self.frame_times.len().saturating_sub(1),
            SessionKind::Npdq => self.frame_times.len(),
        }
    }
}

/// What one session produced over the whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionOutput {
    /// `(oid, seq)` of every delivered object, in delivery order —
    /// deterministic for both engines, so runs are comparable exactly.
    pub results: Vec<(u32, u32)>,
    /// Accumulated query cost.
    pub stats: QueryStats,
}

/// Outcome of one [`DqServer::serve`] / [`DqServer::serve_serial`] run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Per-session outputs, in spec order.
    pub sessions: Vec<SessionOutput>,
    /// Global frame steps executed.
    pub frames: usize,
    /// Records the writer inserted.
    pub inserts_applied: usize,
}

impl ServeReport {
    /// Aggregate cost over all sessions.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for s in &self.sessions {
            total += s.stats;
        }
        total
    }

    /// Total objects delivered across sessions.
    pub fn total_results(&self) -> usize {
        self.sessions.iter().map(|s| s.results.len()).sum()
    }
}

/// One session's engine state while the run is in flight.
enum Engine<const D: usize> {
    // Boxed: a PdqEngine (queue + trajectory) is an order of magnitude
    // bigger than an NpdqEngine, and there is one Engine per session.
    Pdq(Box<PdqEngine<D>>),
    Npdq(NpdqEngine<D>),
}

struct SessionRun<'a, const D: usize> {
    spec: &'a SessionSpec<D>,
    engine: Engine<D>,
    out: SessionOutput,
    /// Per-frame result scratch (PDQ), reused across frames so the
    /// per-frame loop doesn't allocate a fresh Vec every step.
    scratch: Vec<PdqResult<D>>,
}

impl<'a, const D: usize> SessionRun<'a, D> {
    fn start<S: PageStore>(spec: &'a SessionSpec<D>, tree: &RTree<NsiSegmentRecord<D>, S>) -> Self {
        let engine = match spec.kind {
            SessionKind::Pdq => Engine::Pdq(Box::new(PdqEngine::start(tree, spec.trajectory.clone()))),
            SessionKind::Npdq => Engine::Npdq(NpdqEngine::new()),
        };
        SessionRun {
            spec,
            engine,
            out: SessionOutput::default(),
            scratch: Vec::new(),
        }
    }

    /// Apply this frame's broadcast insert reports (PDQ only — NPDQ
    /// sessions learn about updates from node timestamps instead).
    fn absorb<S: PageStore>(
        &mut self,
        tree: &RTree<NsiSegmentRecord<D>, S>,
        reports: &[NsiReport<D>],
    ) {
        if let Engine::Pdq(pdq) = &mut self.engine {
            for report in reports {
                pdq.notify(tree, report);
            }
        }
    }

    /// Process global frame step `k` (no-op once this session's own
    /// schedule is exhausted).
    fn step<S: PageStore>(&mut self, tree: &RTree<NsiSegmentRecord<D>, S>, k: usize) {
        match &mut self.engine {
            Engine::Pdq(pdq) => {
                if k + 1 < self.spec.frame_times.len() {
                    let (t0, t1) = (self.spec.frame_times[k], self.spec.frame_times[k + 1]);
                    self.scratch.clear();
                    pdq.drain_window_into(tree, t0, t1, &mut self.scratch);
                    for r in &self.scratch {
                        self.out.results.push((r.record.oid, r.record.seq));
                    }
                    self.out.stats += pdq.take_stats();
                }
            }
            Engine::Npdq(npdq) => {
                if k < self.spec.frame_times.len() {
                    let t = self.spec.frame_times[k];
                    let q = SnapshotQuery::at_instant(self.spec.trajectory.window_at(t), t);
                    let results = &mut self.out.results;
                    self.out.stats += npdq.execute(tree, &q, t, |r: &NsiSegmentRecord<D>| {
                        results.push(r.ids());
                    });
                }
            }
        }
    }

    fn finish(self) -> SessionOutput {
        self.out
    }
}

/// A serving instance owning one shared NSI tree.
///
/// ```
/// use mobiquery::{DqServer, SessionKind, SessionSpec, Trajectory};
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect};
///
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// tree.insert(
///     NsiSegmentRecord::new(7, 0, Interval::new(0.0, 100.0), [5.5, 0.5], [5.5, 0.5]),
///     0.0,
/// );
/// let server = DqServer::new(tree);
/// let spec = SessionSpec {
///     kind: SessionKind::Pdq,
///     trajectory: Trajectory::linear(
///         Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
///         [1.0, 0.0], Interval::new(0.0, 10.0), 2),
///     frame_times: (0..=10).map(f64::from).collect(),
/// };
/// let report = server.serve(&[spec], &[]);
/// assert_eq!(report.sessions[0].results, vec![(7, 0)]);
/// ```
pub struct DqServer<const D: usize, S: PageStore> {
    tree: RwLock<RTree<NsiSegmentRecord<D>, S>>,
}

impl<const D: usize, S: PageStore> DqServer<D, S> {
    /// Take ownership of a (possibly pre-loaded) tree.
    pub fn new(tree: RTree<NsiSegmentRecord<D>, S>) -> Self {
        DqServer {
            tree: RwLock::new(tree),
        }
    }

    /// Tear the server down, returning the tree.
    pub fn into_tree(self) -> RTree<NsiSegmentRecord<D>, S> {
        self.tree.into_inner()
    }

    /// Records currently indexed.
    pub fn len(&self) -> u64 {
        self.tree.read().len()
    }

    /// True iff the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run a value out of the shared tree under the read lock (e.g. I/O
    /// counters or buffer statistics of the backing store).
    pub fn with_tree<T>(&self, f: impl FnOnce(&RTree<NsiSegmentRecord<D>, S>) -> T) -> T {
        f(&self.tree.read())
    }

    /// Global frame steps for a run: enough for every session's schedule
    /// and every insert batch.
    fn step_count(&self, specs: &[SessionSpec<D>], inserts: &[Vec<(NsiSegmentRecord<D>, f64)>]) -> usize {
        specs
            .iter()
            .map(SessionSpec::steps)
            .max()
            .unwrap_or(0)
            .max(inserts.len())
    }

    /// Serve every session concurrently — one scoped thread per session
    /// plus a writer thread — with per-frame batching.
    ///
    /// `inserts[k]` is the batch of `(record, timestamp)` the writer
    /// applies at the start of frame `k`, before any session processes
    /// that frame; its [`rtree::InsertReport`]s are broadcast to all PDQ
    /// sessions. Result sequences are deterministic and equal to
    /// [`Self::serve_serial`] on an identically prepared server.
    pub fn serve(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport
    where
        S: Sync + Send,
    {
        let steps = self.step_count(specs, inserts);
        let is_pdq: Vec<bool> = specs.iter().map(|s| s.kind == SessionKind::Pdq).collect();
        // Writer + one thread per session meet at the barrier twice per
        // frame: once before the batch is applied, once after.
        let barrier = Barrier::new(specs.len() + 1);
        let mailboxes: Vec<Mutex<Vec<NsiReport<D>>>> =
            specs.iter().map(|_| Mutex::new(Vec::new())).collect();
        let mut inserts_applied = 0;

        let sessions = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let barrier = &barrier;
                    let mailboxes = &mailboxes;
                    let tree = &self.tree;
                    scope.spawn(move || {
                        let mut run = SessionRun::start(spec, &tree.read());
                        for k in 0..steps {
                            barrier.wait(); // frame k opens; writer works
                            barrier.wait(); // frame k batch is visible
                            let guard = tree.read();
                            let reports = std::mem::take(&mut *mailboxes[i].lock());
                            run.absorb(&guard, &reports);
                            run.step(&guard, k);
                        }
                        run.finish()
                    })
                })
                .collect();

            // This thread is the writer.
            for k in 0..steps {
                barrier.wait();
                if let Some(batch) = inserts.get(k) {
                    let mut tree = self.tree.write();
                    for (rec, now) in batch {
                        let report = tree.insert(*rec, *now);
                        inserts_applied += 1;
                        for (mb, &pdq) in mailboxes.iter().zip(&is_pdq) {
                            if pdq {
                                mb.lock().push(report.clone());
                            }
                        }
                    }
                }
                barrier.wait();
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("session thread panicked"))
                .collect()
        });

        ServeReport {
            sessions,
            frames: steps,
            inserts_applied,
        }
    }

    /// The single-threaded reference: identical protocol, identical
    /// results, no threads — the oracle for the concurrency tests and a
    /// baseline for the serving bench.
    pub fn serve_serial(
        &self,
        specs: &[SessionSpec<D>],
        inserts: &[Vec<(NsiSegmentRecord<D>, f64)>],
    ) -> ServeReport {
        let steps = self.step_count(specs, inserts);
        let mut inserts_applied = 0;
        let mut runs: Vec<SessionRun<'_, D>> = {
            let tree = self.tree.read();
            specs.iter().map(|s| SessionRun::start(s, &tree)).collect()
        };
        for k in 0..steps {
            let mut reports = Vec::new();
            if let Some(batch) = inserts.get(k) {
                let mut tree = self.tree.write();
                for (rec, now) in batch {
                    reports.push(tree.insert(*rec, *now));
                    inserts_applied += 1;
                }
            }
            let tree = self.tree.read();
            for run in &mut runs {
                run.absorb(&tree, &reports);
                run.step(&tree, k);
            }
        }
        ServeReport {
            sessions: runs.into_iter().map(SessionRun::finish).collect(),
            frames: steps,
            inserts_applied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use stkit::{Interval, Rect};
    use storage::Pager;

    type R = NsiSegmentRecord<2>;

    fn line_tree(n: u32) -> RTree<R, Pager> {
        let recs: Vec<R> = (0..n)
            .map(|i| {
                let x = i as f64 + 0.5;
                R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
            })
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    fn slide_spec(kind: SessionKind, frames: usize, span: f64) -> SessionSpec<2> {
        SessionSpec {
            kind,
            trajectory: Trajectory::linear(
                Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
                [1.0, 0.0],
                Interval::new(0.0, span),
                2,
            ),
            frame_times: (0..=frames).map(|k| span * k as f64 / frames as f64).collect(),
        }
    }

    #[test]
    fn single_pdq_session_matches_direct_engine() {
        let server = DqServer::new(line_tree(30));
        let spec = slide_spec(SessionKind::Pdq, 10, 30.0);
        let report = server.serve(std::slice::from_ref(&spec), &[]);
        let tree = server.into_tree();
        let mut direct = PdqEngine::start(&tree, spec.trajectory.clone());
        let expect: Vec<(u32, u32)> = spec
            .frame_times
            .windows(2)
            .flat_map(|w| direct.drain_window(&tree, w[0], w[1]))
            .map(|r| (r.record.oid, r.record.seq))
            .collect();
        assert_eq!(report.sessions[0].results, expect);
        assert!(report.sessions[0].stats.disk_accesses > 0);
    }

    #[test]
    fn parallel_equals_serial_with_writer() {
        let specs: Vec<SessionSpec<2>> = vec![
            slide_spec(SessionKind::Pdq, 20, 40.0),
            slide_spec(SessionKind::Npdq, 20, 40.0),
            slide_spec(SessionKind::Pdq, 10, 40.0),
            slide_spec(SessionKind::Npdq, 10, 40.0),
        ];
        // Writer: two objects per frame dropped ahead of the window.
        let inserts: Vec<Vec<(R, f64)>> = (0..20)
            .map(|k| {
                let t = 40.0 * k as f64 / 20.0;
                (0..2)
                    .map(|j| {
                        let x = (t + 5.0 + j as f64) % 39.0;
                        (
                            R::new(1000 + 2 * k + j, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]),
                            t,
                        )
                    })
                    .collect()
            })
            .collect();
        let parallel = DqServer::new(line_tree(40)).serve(&specs, &inserts);
        let serial = DqServer::new(line_tree(40)).serve_serial(&specs, &inserts);
        assert_eq!(parallel.inserts_applied, 40);
        assert_eq!(serial.inserts_applied, 40);
        for (p, s) in parallel.sessions.iter().zip(&serial.sessions) {
            assert_eq!(p.results, s.results, "concurrent run must be deterministic");
        }
        assert!(parallel.total_results() > 0);
    }

    #[test]
    fn empty_run_is_empty() {
        let server: DqServer<2, Pager> = DqServer::new(line_tree(5));
        assert!(!server.is_empty());
        assert_eq!(server.len(), 5);
        let report = server.serve(&[], &[]);
        assert_eq!(report.frames, 0);
        assert_eq!(report.sessions.len(), 0);
    }
}
