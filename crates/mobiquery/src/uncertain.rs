//! Location imprecision (§3.1): bounded-error query semantics.
//!
//! With threshold-based updates the database position of an object is
//! only accurate to the dead-reckoning threshold ε: the object's true
//! location lies within an ε-ball of the stored linear motion. §3.1:
//! "allowing for imprecision entails retrieving objects that in reality
//! do not fall within the query region. However, no objects will be
//! missed."
//!
//! This module makes that contract explicit with three-valued answers:
//!
//! * [`Containment::Must`] — inside the window even in the worst case
//!   (the stored position is ≥ ε interior to the window);
//! * [`Containment::May`] — possibly inside (within ε of the window);
//! * (not reported) — definitely outside even inflated by ε.
//!
//! [`uncertain_query`] evaluates a snapshot query under these semantics
//! over the NSI tree, using ε-inflated bounding boxes for the index probe
//! so no possibly-matching object is missed.

use crate::snapshot::SnapshotQuery;
use crate::stats::QueryStats;
use rtree::{NsiSegmentRecord, RTree};
use storage::PageStore;
use stkit::{Rect, StBox};

/// Three-valued membership under ε-bounded location error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Containment {
    /// Inside the window for *every* admissible true location.
    Must,
    /// Inside for *some* admissible true location.
    May,
}

/// One uncertain answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertainHit<const D: usize> {
    /// The record.
    pub record: NsiSegmentRecord<D>,
    /// Whether the object is certainly or only possibly in the window.
    pub containment: Containment,
}

/// Evaluate `q` when every stored location may err by up to `epsilon`
/// (L∞, per axis — the box form of the dead-reckoning bound).
///
/// Guarantee (the §3.1 contract): every object whose true position could
/// be inside the window is reported (as `May` at least); every object
/// reported `Must` is inside regardless of the error realization.
pub fn uncertain_query<const D: usize, S: PageStore>(
    tree: &RTree<NsiSegmentRecord<D>, S>,
    q: &SnapshotQuery<D>,
    epsilon: f64,
    mut emit: impl FnMut(UncertainHit<D>),
) -> QueryStats {
    assert!(epsilon >= 0.0, "error bound must be non-negative");
    // Probe with the ε-inflated window so no candidate is missed even
    // though stored keys are built from the imprecise positions.
    let probe: StBox<D, 1> = StBox::new(
        q.window.inflate(epsilon),
        stkit::Rect::new([q.time]),
    );
    let may_window: Rect<D> = q.window.inflate(epsilon);
    let must_window: Rect<D> = q.window.inflate(-epsilon);
    tree.range_search(
        &probe,
        |r| !r.seg.intersect_query(&may_window, &q.time).is_empty(),
        |r| {
            let must = !must_window.is_empty()
                && !r.seg.intersect_query(&must_window, &q.time).is_empty();
            emit(UncertainHit {
                record: *r,
                containment: if must {
                    Containment::Must
                } else {
                    Containment::May
                },
            });
        },
    )
    .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::bulk::bulk_load;
    use rtree::RTreeConfig;
    use storage::Pager;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn tree_with(points: &[(u32, f64, f64)]) -> RTree<R, Pager> {
        let recs: Vec<R> = points
            .iter()
            .map(|&(oid, x, y)| R::new(oid, 0, Interval::new(0.0, 10.0), [x, y], [x, y]))
            .collect();
        bulk_load(Pager::new(), RTreeConfig::default(), recs)
    }

    #[test]
    fn classification_matches_distance_to_border() {
        // Window [10, 20]²; ε = 1.
        let tree = tree_with(&[
            (1, 15.0, 15.0), // deep inside  → Must
            (2, 10.5, 15.0), // 0.5 from the border → May
            (3, 20.8, 15.0), // 0.8 outside → May (could truly be inside)
            (4, 22.0, 15.0), // 2.0 outside → not reported
        ]);
        let q = SnapshotQuery::at_instant(Rect::from_corners([10.0, 10.0], [20.0, 20.0]), 5.0);
        let mut hits = std::collections::HashMap::new();
        uncertain_query(&tree, &q, 1.0, |h| {
            hits.insert(h.record.oid, h.containment);
        });
        assert_eq!(hits.get(&1), Some(&Containment::Must));
        assert_eq!(hits.get(&2), Some(&Containment::May));
        assert_eq!(hits.get(&3), Some(&Containment::May));
        assert_eq!(hits.get(&4), None);
    }

    #[test]
    fn zero_epsilon_is_exact() {
        let tree = tree_with(&[(1, 15.0, 15.0), (2, 25.0, 15.0)]);
        let q = SnapshotQuery::at_instant(Rect::from_corners([10.0, 10.0], [20.0, 20.0]), 5.0);
        let mut hits = Vec::new();
        uncertain_query(&tree, &q, 0.0, |h| hits.push(h));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record.oid, 1);
        assert_eq!(hits[0].containment, Containment::Must);
    }

    #[test]
    fn no_possible_match_is_missed() {
        // Ground truth: the true position deviates from the stored one by
        // exactly ε towards the window — the contract says we must still
        // report the object.
        let eps = 2.0;
        let stored = [22.0, 15.0]; // stored 2.0 outside the window
        let tree = tree_with(&[(7, stored[0], stored[1])]);
        let q = SnapshotQuery::at_instant(Rect::from_corners([10.0, 10.0], [20.0, 20.0]), 5.0);
        let mut found = false;
        uncertain_query(&tree, &q, eps, |h| found |= h.record.oid == 7);
        assert!(found, "object at the ε boundary must be reported");
    }

    #[test]
    fn large_epsilon_degrades_everything_to_may() {
        let tree = tree_with(&[(1, 15.0, 15.0)]);
        let q = SnapshotQuery::at_instant(Rect::from_corners([10.0, 10.0], [20.0, 20.0]), 5.0);
        let mut hits = Vec::new();
        // ε bigger than half the window: nothing can be certain.
        uncertain_query(&tree, &q, 6.0, |h| hits.push(h));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].containment, Containment::May);
    }
}
