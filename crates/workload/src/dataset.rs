//! The paper's data set and index buildup (§5).

use motion::{MotionUpdate, RandomWalk, RandomWalkConfig};
use rtree::bulk::bulk_load;
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use storage::{PageStore, Pager};
use stkit::Rect;

/// Scalable version of the paper's data configuration. The paper's full
/// scale is [`DatasetConfig::paper`]; tests use smaller instances.
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    /// Number of mobile objects (paper: 5000).
    pub objects: u32,
    /// Duration in time units (paper: 100).
    pub duration: f64,
    /// Side length of the square space (paper: 100).
    pub space_side: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// The paper's §5 configuration: ≈ 502 504 segments.
    pub fn paper() -> Self {
        DatasetConfig {
            objects: 5000,
            duration: 100.0,
            space_side: 100.0,
            seed: 0xED87_2002,
        }
    }

    /// A scaled-down configuration for tests and quick runs: same object
    /// density per area-time, smaller totals.
    pub fn quick() -> Self {
        DatasetConfig {
            objects: 1000,
            duration: 20.0,
            space_side: 100.0,
            seed: 0xED87_2002,
        }
    }
}

/// The generated motion data plus everything needed to build indexes.
pub struct Dataset {
    config: DatasetConfig,
    updates: Vec<MotionUpdate<2>>,
}

impl Dataset {
    /// Generate the data set (deterministic per config).
    pub fn generate(config: DatasetConfig) -> Self {
        let walk = RandomWalk::new(RandomWalkConfig {
            objects: config.objects,
            space: Rect::from_corners([0.0, 0.0], [config.space_side, config.space_side]),
            duration: config.duration,
            seed: config.seed,
            ..RandomWalkConfig::default()
        });
        let updates =
            motion::update::interleave_by_time(walk.generate().into_iter().map(|t| t.updates));
        Dataset { config, updates }
    }

    /// The configuration this data set was generated from.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// All motion updates, sorted by start time.
    pub fn updates(&self) -> &[MotionUpdate<2>] {
        &self.updates
    }

    /// Number of motion segments (the paper reports 502 504 at full
    /// scale).
    pub fn segment_count(&self) -> usize {
        self.updates.len()
    }

    /// The data space.
    pub fn space(&self) -> Rect<2> {
        Rect::from_corners(
            [0.0, 0.0],
            [self.config.space_side, self.config.space_side],
        )
    }

    /// NSI leaf records for every update.
    pub fn nsi_records(&self) -> Vec<NsiSegmentRecord<2>> {
        self.updates
            .iter()
            .map(|u| {
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position())
            })
            .collect()
    }

    /// Double-temporal-axes leaf records for every update.
    pub fn dta_records(&self) -> Vec<DtaSegmentRecord<2>> {
        self.updates
            .iter()
            .map(|u| {
                DtaSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position())
            })
            .collect()
    }

    /// Build the NSI tree the way a live moving-objects database does —
    /// by inserting updates in time order (each insert stamped with the
    /// motion's start time). This is the paper's index buildup: splits at
    /// the 0.5 minimum fill, and leaves strongly clustered in start time,
    /// which is what makes NPDQ discardability effective.
    pub fn build_nsi_tree(&self) -> RTree<NsiSegmentRecord<2>, Pager> {
        self.build_nsi_tree_on(Pager::new())
    }

    /// Build the double-temporal-axes tree for NPDQ: STR bulk load with
    /// *spatial-only* tiling (`bulk_leading_axes = 2`).
    ///
    /// NPDQ's discardability for open-ended queries (§4.2) prunes nodes
    /// spatially interior to the previous query window; that requires
    /// leaf spatial extents smaller than the window, which at the paper's
    /// data density is only achievable when leaves are clustered purely
    /// by space (fine spatial tiles, wide temporal extents). See the
    /// `ablation_npdq_clustering` bench for the quantified comparison.
    pub fn build_dta_tree(&self) -> RTree<DtaSegmentRecord<2>, Pager> {
        let cfg = RTreeConfig {
            bulk_leading_axes: Some(2),
            ..RTreeConfig::default()
        };
        bulk_load(Pager::new(), cfg, self.dta_records())
    }

    /// Double-temporal-axes tree built by time-ordered insertion — the
    /// live-database build, used by the update-management experiments and
    /// the clustering ablation.
    pub fn build_dta_tree_inserted(&self) -> RTree<DtaSegmentRecord<2>, Pager> {
        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for r in self.dta_records() {
            tree.insert(r, r.seg.t.lo);
        }
        tree
    }

    /// Time-ordered insertion build over a caller-supplied store (e.g. a
    /// buffer pool for the buffering ablation).
    pub fn build_nsi_tree_on<S: PageStore>(&self, store: S) -> RTree<NsiSegmentRecord<2>, S> {
        let mut tree = RTree::new(store, RTreeConfig::default());
        for r in self.nsi_records() {
            tree.insert(r, r.seg.t.lo);
        }
        tree
    }

    /// STR bulk-loaded NSI tree (space-first clustering) — kept for the
    /// build-method ablation: bulk loading at 0.5 fill produces the same
    /// size index but coarse temporal clustering, which defeats NPDQ
    /// discardability.
    pub fn build_nsi_tree_bulk(&self) -> RTree<NsiSegmentRecord<2>, Pager> {
        bulk_load(Pager::new(), RTreeConfig::default(), self.nsi_records())
    }

    /// STR bulk-loaded double-temporal-axes tree (ablation twin of
    /// [`Self::build_dta_tree`]).
    pub fn build_dta_tree_bulk(&self) -> RTree<DtaSegmentRecord<2>, Pager> {
        bulk_load(Pager::new(), RTreeConfig::default(), self.dta_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_shape() {
        let ds = Dataset::generate(DatasetConfig::quick());
        // 1000 objects × 20 tu / ≈1 per tu ⇒ ≈ 20 000 segments.
        let n = ds.segment_count();
        assert!((19_000..24_000).contains(&n), "{n} segments");
        // Sorted by start time.
        assert!(ds
            .updates()
            .windows(2)
            .all(|w| w[0].seg.t.lo <= w[1].seg.t.lo));
    }

    #[test]
    fn trees_build_and_validate() {
        let ds = Dataset::generate(DatasetConfig {
            objects: 200,
            duration: 10.0,
            ..DatasetConfig::quick()
        });
        let nsi = ds.build_nsi_tree();
        let inv = nsi.validate().unwrap();
        assert_eq!(inv.records as usize, ds.segment_count());
        let dta = ds.build_dta_tree();
        assert_eq!(dta.len() as usize, ds.segment_count());
        dta.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = Dataset::generate(DatasetConfig::quick());
        let b = Dataset::generate(DatasetConfig::quick());
        assert_eq!(a.updates(), b.updates());
    }
}

#[cfg(test)]
mod clustering_tests {
    use super::*;
    use rtree::Record;

    /// Regression guard for the NPDQ reproduction finding: the DTA tree's
    /// leaves must be spatially fine (≪ the 8-unit query window), which
    /// only the spatial-only STR build provides. If a refactor silently
    /// changes the build, NPDQ discardability quietly stops pruning; this
    /// test fails loudly instead.
    #[test]
    fn dta_tree_leaves_are_spatially_fine() {
        let ds = Dataset::generate(DatasetConfig {
            objects: 2000,
            duration: 20.0,
            ..DatasetConfig::quick()
        });
        let measure = |tree: &RTree<DtaSegmentRecord<2>, storage::Pager>| {
            let (mut n, mut sx) = (0u32, 0.0f64);
            let mut stack = vec![tree.root_page()];
            while let Some(pg) = stack.pop() {
                let node = tree.read_node(pg);
                if node.is_leaf() {
                    let k = node.leaf_records().fold(
                        rtree::Key::empty(),
                        |acc: <DtaSegmentRecord<2> as Record>::Key, r| {
                            rtree::Key::cover(&acc, &r.key())
                        },
                    );
                    n += 1;
                    sx += k.space.extent(0).length().max(k.space.extent(1).length());
                } else {
                    for (_, c) in node.internal_entries() {
                        stack.push(c);
                    }
                }
            }
            sx / n as f64
        };
        let spatial = measure(&ds.build_dta_tree());
        let inserted = measure(&ds.build_dta_tree_inserted());
        assert!(
            spatial < 8.0,
            "spatial STR leaves must be finer than the 8-unit window: {spatial:.1}"
        );
        assert!(
            spatial < inserted / 4.0,
            "spatial build ({spatial:.1}) must be much finer than insertion build ({inserted:.1})"
        );
    }
}
