//! Dynamic-query trajectory generation at controlled overlap levels (§5).
//!
//! "Query performance is measured at various speeds of the query
//! trajectory. For each DQ, a snapshot query is generated every 0.1 time
//! unit. For a high speed query, the overlap between consecutive snapshot
//! queries is low … We measure the query performance at overlap levels of
//! 0, 25, 50, 80, 90, and 99.99 %."
//!
//! For a `w × w` window moving at speed `v` with frame period `p`, the
//! area overlap of consecutive snapshots is `1 − v·p/w` (axis-aligned
//! motion), so the speed realizing a target overlap is
//! `v = (1 − overlap)·w/p`. Fast trajectories cover hundreds of length
//! units, far more than the 100-wide data space, so the window *bounces*
//! off the space borders; every reflection becomes a key snapshot of the
//! piecewise-linear [`Trajectory`].

use mobiquery::{KeySnapshot, SnapshotQuery, Trajectory};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stkit::Rect;

/// Parameters for one experiment point's query workload.
#[derive(Clone, Copy, Debug)]
pub struct QueryWorkloadConfig {
    /// Target overlap between consecutive snapshots, in `[0, 1)` plus the
    /// special value `0.9999` the paper uses.
    pub overlap: f64,
    /// Window side length `w` (paper: 8, 14, 20).
    pub window_side: f64,
    /// Snapshot (frame) period (paper: 0.1).
    pub frame_period: f64,
    /// Number of subsequent snapshots after the first (paper: 50).
    pub subsequent_frames: usize,
    /// Number of dynamic queries to generate (paper: 1000 per point).
    pub count: usize,
    /// Side length of the data space.
    pub space_side: f64,
    /// Data duration — trajectories are placed to fit inside it.
    pub data_duration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QueryWorkloadConfig {
    /// The paper's defaults for a given overlap level (small 8×8 window,
    /// 0.1 frame period, 50 subsequent snapshots).
    pub fn paper(overlap: f64) -> Self {
        QueryWorkloadConfig {
            overlap,
            window_side: 8.0,
            frame_period: 0.1,
            subsequent_frames: 50,
            count: 1000,
            space_side: 100.0,
            data_duration: 100.0,
            seed: 0x0517_ED87,
        }
    }

    /// Trajectory speed realizing the configured overlap.
    pub fn speed(&self) -> f64 {
        (1.0 - self.overlap) * self.window_side / self.frame_period
    }

    /// Total trajectory duration (first frame to last).
    pub fn query_duration(&self) -> f64 {
        self.subsequent_frames as f64 * self.frame_period
    }
}

/// One generated dynamic query: its trajectory and frame times.
#[derive(Clone, Debug)]
pub struct DynamicQuerySpec {
    /// The observer's (piecewise-linear, bouncing) trajectory.
    pub trajectory: Trajectory<2>,
    /// The times at which the renderer poses snapshot queries; the first
    /// entry is the "first query" of the paper's figures.
    pub frame_times: Vec<f64>,
}

impl DynamicQuerySpec {
    /// The snapshot query a naive/NPDQ client poses at frame `i`.
    pub fn snapshot(&self, i: usize) -> SnapshotQuery<2> {
        self.trajectory.snapshot_at(self.frame_times[i])
    }

    /// All frame snapshots in order.
    pub fn snapshots(&self) -> impl Iterator<Item = SnapshotQuery<2>> + '_ {
        self.frame_times
            .iter()
            .map(|&t| self.trajectory.snapshot_at(t))
    }

    /// The open-ended snapshot (§4.2 Fig. 5(a)) at frame `i`: current
    /// window, time `[tᵢ, ∞)` — the query shape NPDQ sessions use.
    pub fn open_snapshot(&self, i: usize) -> SnapshotQuery<2> {
        let t = self.frame_times[i];
        SnapshotQuery::open_from(self.trajectory.window_at(t), t)
    }

    /// All open-ended frame snapshots in order.
    pub fn open_snapshots(&self) -> impl Iterator<Item = SnapshotQuery<2>> + '_ {
        self.frame_times
            .iter()
            .map(|&t| SnapshotQuery::open_from(self.trajectory.window_at(t), t))
    }
}

/// Deterministic generator of [`DynamicQuerySpec`]s for one config.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    config: QueryWorkloadConfig,
}

impl QueryWorkload {
    /// Create a workload generator.
    pub fn new(config: QueryWorkloadConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.overlap),
            "overlap must be in [0, 1)"
        );
        assert!(config.window_side < config.space_side, "window too large");
        assert!(config.frame_period > 0.0 && config.subsequent_frames > 0);
        assert!(
            config.query_duration() < config.data_duration,
            "query outlives the data"
        );
        QueryWorkload { config }
    }

    /// The workload's configuration.
    pub fn config(&self) -> &QueryWorkloadConfig {
        &self.config
    }

    /// Generate all dynamic queries of this point.
    pub fn generate(&self) -> Vec<DynamicQuerySpec> {
        (0..self.config.count).map(|i| self.generate_one(i)).collect()
    }

    /// Generate the `i`-th dynamic query (deterministic per index).
    pub fn generate_one(&self, i: usize) -> DynamicQuerySpec {
        let c = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(c.seed ^ ((i as u64) << 16 | 0xD9));
        let half = c.window_side / 2.0;
        let lo = half;
        let hi = c.space_side - half;
        let duration = c.query_duration();
        let t0 = rng.gen_range(0.0..(c.data_duration - duration));
        // Random center start and direction; bounce the center inside
        // [half, side − half]².
        let mut center = [rng.gen_range(lo..hi), rng.gen_range(lo..hi)];
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let speed = c.speed();
        let mut vel = [speed * angle.cos(), speed * angle.sin()];

        let mut keys = vec![KeySnapshot {
            t: t0,
            window: window_around(center, half),
        }];
        let mut t = t0;
        let t_end = t0 + duration;
        while t < t_end && speed > 0.0 {
            // Time until the center hits a wall along each axis.
            let mut hit = f64::INFINITY;
            for d in 0..2 {
                if vel[d] > 0.0 {
                    hit = hit.min((hi - center[d]) / vel[d]);
                } else if vel[d] < 0.0 {
                    hit = hit.min((lo - center[d]) / vel[d]);
                }
            }
            let step = hit.min(t_end - t);
            t += step;
            for d in 0..2 {
                center[d] += vel[d] * step;
            }
            if t < t_end {
                // Reflect every axis that is at (or numerically past) a wall.
                for d in 0..2 {
                    if (center[d] - lo).abs() < 1e-9 && vel[d] < 0.0 {
                        vel[d] = -vel[d];
                    }
                    if (center[d] - hi).abs() < 1e-9 && vel[d] > 0.0 {
                        vel[d] = -vel[d];
                    }
                    center[d] = center[d].clamp(lo, hi);
                }
            }
            keys.push(KeySnapshot {
                t,
                window: window_around(center, half),
            });
        }
        if keys.len() < 2 {
            // Stationary query (overlap → 1): still needs two keys.
            keys.push(KeySnapshot {
                t: t_end,
                window: keys[0].window,
            });
        }
        let trajectory = Trajectory::new(keys);
        let frame_times = (0..=c.subsequent_frames)
            .map(|k| t0 + k as f64 * c.frame_period)
            .collect();
        DynamicQuerySpec {
            trajectory,
            frame_times,
        }
    }
}

fn window_around(center: [f64; 2], half: f64) -> Rect<2> {
    Rect::from_corners(
        [center[0] - half, center[1] - half],
        [center[0] + half, center[1] + half],
    )
}

/// Measured overlap fraction between two consecutive axis-aligned window
/// positions (area of intersection / area of window) — used by tests to
/// confirm the generator hits its target.
pub fn snapshot_overlap(a: &Rect<2>, b: &Rect<2>) -> f64 {
    let inter = a.intersect(b);
    if inter.is_empty() {
        0.0
    } else {
        inter.volume() / a.volume()
    }
}

/// The paper's six overlap levels.
pub const PAPER_OVERLAPS: [f64; 6] = [0.0, 0.25, 0.50, 0.80, 0.90, 0.9999];

/// The paper's three window sizes (small / medium / big).
pub const PAPER_WINDOW_SIDES: [f64; 3] = [8.0, 14.0, 20.0];

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(overlap: f64) -> QueryWorkloadConfig {
        QueryWorkloadConfig {
            count: 20,
            ..QueryWorkloadConfig::paper(overlap)
        }
    }

    #[test]
    fn speed_formula() {
        let c = cfg(0.0);
        assert_eq!(c.speed(), 80.0);
        let c = cfg(0.9);
        assert!((c.speed() - 8.0).abs() < 1e-12);
        let c = cfg(0.9999);
        assert!((c.speed() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn windows_stay_inside_space() {
        for overlap in PAPER_OVERLAPS {
            let wl = QueryWorkload::new(cfg(overlap));
            for spec in wl.generate() {
                for q in spec.snapshots() {
                    assert!(
                        q.window.extent(0).lo >= -1e-9
                            && q.window.extent(0).hi <= 100.0 + 1e-9
                            && q.window.extent(1).lo >= -1e-9
                            && q.window.extent(1).hi <= 100.0 + 1e-9,
                        "window {:?} escapes at overlap {overlap}",
                        q.window
                    );
                }
            }
        }
    }

    #[test]
    fn achieved_overlap_matches_target() {
        // Diagonal motion gives a slightly different *area* overlap than
        // the axis-aligned 1 − v·p/w; accept a tolerance band.
        for target in [0.25, 0.5, 0.8, 0.9] {
            let wl = QueryWorkload::new(cfg(target));
            let mut total = 0.0;
            let mut n = 0;
            for spec in wl.generate() {
                let snaps: Vec<_> = spec.snapshots().collect();
                for w in snaps.windows(2) {
                    total += snapshot_overlap(&w[0].window, &w[1].window);
                    n += 1;
                }
            }
            let mean = total / n as f64;
            assert!(
                (mean - target).abs() < 0.15,
                "target {target}, achieved {mean}"
            );
        }
    }

    #[test]
    fn zero_overlap_truly_disjoint_on_average() {
        let wl = QueryWorkload::new(cfg(0.0));
        let (mut total, mut n) = (0.0, 0);
        for spec in wl.generate() {
            let snaps: Vec<_> = spec.snapshots().collect();
            for w in snaps.windows(2) {
                total += snapshot_overlap(&w[0].window, &w[1].window);
                n += 1;
            }
        }
        // Frames straddling a wall bounce retrace briefly and may overlap;
        // the mean stays near zero.
        let mean = total / n as f64;
        assert!(mean < 0.15, "mean consecutive overlap {mean}");
    }

    #[test]
    fn frame_times_match_config() {
        let wl = QueryWorkload::new(cfg(0.5));
        let spec = wl.generate_one(0);
        assert_eq!(spec.frame_times.len(), 51);
        let d = spec.frame_times[50] - spec.frame_times[0];
        assert!((d - 5.0).abs() < 1e-9);
        // Trajectory covers every frame.
        let span = spec.trajectory.span();
        assert!(span.lo <= spec.frame_times[0] + 1e-12);
        assert!(span.hi >= spec.frame_times[50] - 1e-12);
    }

    #[test]
    fn deterministic_generation() {
        let a = QueryWorkload::new(cfg(0.5)).generate_one(7);
        let b = QueryWorkload::new(cfg(0.5)).generate_one(7);
        assert_eq!(a.trajectory.keys(), b.trajectory.keys());
        assert_eq!(a.frame_times, b.frame_times);
    }

    #[test]
    fn near_total_overlap_nearly_stationary() {
        let wl = QueryWorkload::new(cfg(0.9999));
        let spec = wl.generate_one(0);
        let first = spec.snapshot(0).window;
        let last = spec.snapshot(50).window;
        assert!(snapshot_overlap(&first, &last) > 0.99);
    }

    #[test]
    fn fits_inside_data_duration() {
        let wl = QueryWorkload::new(cfg(0.0));
        for spec in wl.generate() {
            assert!(spec.frame_times[0] >= 0.0);
            assert!(*spec.frame_times.last().unwrap() <= 100.0);
        }
    }
}

/// Build a dynamic-query trajectory that *follows a mobile object*: the
/// window stays centred on the object's (piecewise-linear) path — the
/// "monitor the vicinity of vehicle X" query of the paper's §1 military
/// scenario. Each motion update of the object becomes a key snapshot, so
/// the trajectory is exactly as predictable as the object's own motion.
pub fn follow_object(
    trace: &motion::ObjectTrace<2>,
    half_extent: f64,
    clip: Option<stkit::Interval>,
) -> Option<Trajectory<2>> {
    assert!(half_extent > 0.0, "window half-extent must be positive");
    let span = clip.unwrap_or(stkit::Interval::new(
        trace.start_time(),
        trace.end_time(),
    ));
    let mut keys = Vec::new();
    // Key snapshot at every motion-update boundary inside the span…
    for u in &trace.updates {
        for t in [u.seg.t.lo, u.seg.t.hi] {
            if span.contains(t) && keys.last().is_none_or(|k: &KeySnapshot<2>| k.t < t) {
                if let Some(p) = trace.position_at(t) {
                    keys.push(KeySnapshot {
                        t,
                        window: window_around(p, half_extent),
                    });
                }
            }
        }
    }
    // …and exactly at the span borders.
    for t in [span.lo, span.hi] {
        if let Some(p) = trace.position_at(t) {
            if !keys.iter().any(|k| k.t == t) {
                keys.push(KeySnapshot {
                    t,
                    window: window_around(p, half_extent),
                });
            }
        }
    }
    keys.sort_by(|a, b| a.t.total_cmp(&b.t));
    keys.dedup_by(|a, b| a.t == b.t);
    (keys.len() >= 2).then(|| Trajectory::new(keys))
}

#[cfg(test)]
mod follow_tests {
    use super::*;
    use motion::{RandomWalk, RandomWalkConfig};

    #[test]
    fn follow_trajectory_tracks_the_object() {
        let walk = RandomWalk::new(RandomWalkConfig {
            objects: 3,
            duration: 10.0,
            ..RandomWalkConfig::default()
        });
        let traces = walk.generate();
        let traj = follow_object(&traces[1], 4.0, None).expect("trajectory");
        // At any sampled instant, the window is centred on the object.
        for k in 0..=50 {
            let t = 10.0 * k as f64 / 50.0;
            let p = traces[1].position_at(t).unwrap();
            let w = traj.window_at(t);
            let c = w.center();
            assert!((c[0] - p[0]).abs() < 1e-6, "t={t}");
            assert!((c[1] - p[1]).abs() < 1e-6, "t={t}");
            assert!((w.extent(0).length() - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn follow_respects_clip() {
        let walk = RandomWalk::new(RandomWalkConfig {
            objects: 1,
            duration: 10.0,
            ..RandomWalkConfig::default()
        });
        let tr = &walk.generate()[0];
        let traj = follow_object(tr, 2.0, Some(stkit::Interval::new(2.0, 5.0))).unwrap();
        assert_eq!(traj.span(), stkit::Interval::new(2.0, 5.0));
    }

    #[test]
    fn follow_self_finds_neighbours() {
        // Following object 0's own path with PDQ must deliver exactly the
        // segments passing near it — including its own.
        use mobiquery::PdqEngine;
        use rtree::bulk::bulk_load;
        let walk = RandomWalk::new(RandomWalkConfig {
            objects: 50,
            duration: 10.0,
            ..RandomWalkConfig::default()
        });
        let traces = walk.generate();
        let recs: Vec<rtree::NsiSegmentRecord<2>> = traces
            .iter()
            .flat_map(|t| &t.updates)
            .map(|u| {
                rtree::NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position())
            })
            .collect();
        let tree = bulk_load(storage::Pager::new(), rtree::RTreeConfig::default(), recs);
        let traj = follow_object(&traces[0], 3.0, None).unwrap();
        let mut pdq = PdqEngine::start(&tree, traj);
        let results = pdq.drain_window(&tree, 0.0, 10.0);
        // The followed object itself is always in view: all of its own
        // segments must be delivered.
        let own = results.iter().filter(|r| r.record.oid == 0).count();
        assert_eq!(own, traces[0].updates.len());
    }
}
