//! # workload — the paper's evaluation workload (§5), reproducible
//!
//! Data side: [`Dataset`] wraps the `motion` crate's random walk with the
//! paper's parameters (5000 objects, 100×100 space, ≈1 update/time-unit,
//! 100 time units ⇒ ≈500 k segments) and builds the NSI / double-temporal-
//! axes R-trees at the paper's page size and fill factor.
//!
//! Query side: [`QueryWorkload`] generates dynamic-query trajectories at a
//! given *overlap level* — the paper's x-axis. Consecutive snapshots
//! 0.1 time units apart overlap by `1 − v·0.1/w`, so the trajectory speed
//! for a target overlap is `v = (1 − overlap)·w/0.1`. Fast trajectories
//! bounce off the space borders (each reflection becomes a key snapshot),
//! keeping every query inside the data space.
//!
//! Experiment side: [`experiments`] contains the measurement loops shared
//! by every figure harness: evaluate a dynamic query with the naive /
//! PDQ / NPDQ engines and report first-query and average-subsequent-query
//! cost.

pub mod dataset;
pub mod experiments;
pub mod queries;

pub use dataset::{Dataset, DatasetConfig};
pub use experiments::{measure_naive_dta, measure_naive_nsi, measure_npdq, measure_pdq, PointSummary};
pub use queries::{follow_object, DynamicQuerySpec, QueryWorkload, QueryWorkloadConfig};
