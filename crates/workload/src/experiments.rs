//! Measurement loops shared by every figure harness.
//!
//! Each function evaluates a set of dynamic queries with one engine and
//! reports the paper's two rows per histogram group: cost of the *first*
//! snapshot query and mean cost of the *subsequent* snapshot queries
//! (§5: "results of subsequent queries are averaged over 50 consecutive
//! queries of each dynamic query").

use crate::queries::DynamicQuerySpec;
use mobiquery::stats::StatsAccumulator;
use mobiquery::{NaiveEngine, NpdqEngine, PdqEngine};
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree};
use storage::PageStore;

/// Mean first-query and subsequent-query costs over a set of dynamic
/// queries — one histogram group of Figs. 6–13.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointSummary {
    /// Mean disk accesses of the first snapshot query.
    pub first_disk: f64,
    /// Mean leaf-level disk accesses of the first snapshot query.
    pub first_leaf: f64,
    /// Mean distance computations of the first snapshot query.
    pub first_cpu: f64,
    /// Mean disk accesses per subsequent snapshot query.
    pub sub_disk: f64,
    /// Mean leaf-level disk accesses per subsequent snapshot query.
    pub sub_leaf: f64,
    /// Mean distance computations per subsequent snapshot query.
    pub sub_cpu: f64,
    /// Mean objects delivered per dynamic query (naive: per-frame result
    /// sets summed; PDQ/NPDQ: distinct deliveries).
    pub results_per_dq: f64,
}

fn summarize(
    first: StatsAccumulator,
    subsequent: StatsAccumulator,
    results_total: u64,
    dq_count: usize,
) -> PointSummary {
    PointSummary {
        first_disk: first.mean_disk(),
        first_leaf: first.mean_leaf(),
        first_cpu: first.mean_cpu(),
        sub_disk: subsequent.mean_disk(),
        sub_leaf: subsequent.mean_leaf(),
        sub_cpu: subsequent.mean_cpu(),
        results_per_dq: results_total as f64 / dq_count.max(1) as f64,
    }
}

/// Naive baseline over the NSI tree: every frame is an independent
/// snapshot query (the paper's comparison for PDQ, Figs. 6–9).
pub fn measure_naive_nsi<S: PageStore>(
    tree: &RTree<NsiSegmentRecord<2>, S>,
    specs: &[DynamicQuerySpec],
) -> PointSummary {
    let engine = NaiveEngine::new();
    let mut first = StatsAccumulator::default();
    let mut subsequent = StatsAccumulator::default();
    let mut results = 0;
    for spec in specs {
        for (i, q) in spec.snapshots().enumerate() {
            let s = engine.query_nsi(tree, &q, |_| {});
            results += s.results;
            if i == 0 {
                first.push(s);
            } else {
                subsequent.push(s);
            }
        }
    }
    summarize(first, subsequent, results, specs.len())
}

/// Naive baseline over the double-temporal-axes tree (the comparison for
/// NPDQ, Figs. 10–13 — same index, no result reuse).
pub fn measure_naive_dta<S: PageStore>(
    tree: &RTree<DtaSegmentRecord<2>, S>,
    specs: &[DynamicQuerySpec],
) -> PointSummary {
    let engine = NaiveEngine::new();
    let mut first = StatsAccumulator::default();
    let mut subsequent = StatsAccumulator::default();
    let mut results = 0;
    for spec in specs {
        for (i, q) in spec.open_snapshots().enumerate() {
            let s = engine.query_dta(tree, &q, |_| {});
            results += s.results;
            if i == 0 {
                first.push(s);
            } else {
                subsequent.push(s);
            }
        }
    }
    summarize(first, subsequent, results, specs.len())
}

/// PDQ (§4.1): one engine per dynamic query; the first frame's cost is
/// the initial drain, subsequent frames drain incrementally.
pub fn measure_pdq<S: PageStore>(
    tree: &RTree<NsiSegmentRecord<2>, S>,
    specs: &[DynamicQuerySpec],
) -> PointSummary {
    let mut first = StatsAccumulator::default();
    let mut subsequent = StatsAccumulator::default();
    let mut results = 0;
    for spec in specs {
        let mut engine = PdqEngine::start(tree, spec.trajectory.clone());
        let t0 = spec.frame_times[0];
        let n = engine.drain_window(tree, t0, t0).len();
        results += n as u64;
        first.push(engine.take_stats());
        for w in spec.frame_times.windows(2) {
            let n = engine.drain_window(tree, w[0], w[1]).len();
            results += n as u64;
            subsequent.push(engine.take_stats());
        }
    }
    summarize(first, subsequent, results, specs.len())
}

/// NPDQ (§4.2) over the double-temporal-axes tree: consecutive snapshots
/// with discardability against the previous one.
pub fn measure_npdq<S: PageStore>(
    tree: &RTree<DtaSegmentRecord<2>, S>,
    specs: &[DynamicQuerySpec],
) -> PointSummary {
    let mut first = StatsAccumulator::default();
    let mut subsequent = StatsAccumulator::default();
    let mut results = 0;
    for spec in specs {
        let mut engine = NpdqEngine::new();
        for (i, q) in spec.open_snapshots().enumerate() {
            // Static pre-built tree: queries run after every insertion,
            // so the logical "now" is later than any node timestamp.
            let s = engine.execute(tree, &q, f64::INFINITY, |_| {});
            results += s.results;
            if i == 0 {
                first.push(s);
            } else {
                subsequent.push(s);
            }
        }
    }
    summarize(first, subsequent, results, specs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::queries::{QueryWorkload, QueryWorkloadConfig};

    fn small_setup(overlap: f64) -> (Dataset, Vec<DynamicQuerySpec>) {
        let ds = Dataset::generate(DatasetConfig {
            objects: 500,
            duration: 20.0,
            ..DatasetConfig::quick()
        });
        let wl = QueryWorkload::new(QueryWorkloadConfig {
            count: 10,
            data_duration: 20.0,
            ..QueryWorkloadConfig::paper(overlap)
        });
        (ds, wl.generate())
    }

    #[test]
    fn pdq_beats_naive_on_subsequent_queries() {
        let (ds, specs) = small_setup(0.9);
        let tree = ds.build_nsi_tree();
        let naive = measure_naive_nsi(&tree, &specs);
        let pdq = measure_pdq(&tree, &specs);
        // The headline claim of the paper.
        assert!(
            pdq.sub_disk < naive.sub_disk * 0.5,
            "PDQ {} vs naive {}",
            pdq.sub_disk,
            naive.sub_disk
        );
        // Naive's first and subsequent costs are the same order.
        assert!((naive.first_disk - naive.sub_disk).abs() < naive.first_disk * 0.5);
    }

    #[test]
    fn pdq_improvement_grows_with_overlap() {
        let (ds, lo_specs) = small_setup(0.25);
        let tree = ds.build_nsi_tree();
        let (_, hi_specs) = small_setup(0.9999);
        let lo = measure_pdq(&tree, &lo_specs);
        let hi = measure_pdq(&tree, &hi_specs);
        assert!(
            hi.sub_disk < lo.sub_disk,
            "higher overlap must cost less: {} vs {}",
            hi.sub_disk,
            lo.sub_disk
        );
    }

    #[test]
    fn npdq_beats_naive_dta_at_high_overlap() {
        let (ds, specs) = small_setup(0.9);
        let tree = ds.build_dta_tree();
        let naive = measure_naive_dta(&tree, &specs);
        let npdq = measure_npdq(&tree, &specs);
        assert!(
            npdq.sub_leaf < naive.sub_leaf,
            "NPDQ {} vs naive {}",
            npdq.sub_leaf,
            naive.sub_leaf
        );
        // First queries cost the same (no previous query to reuse).
        assert!((npdq.first_disk - naive.first_disk).abs() < 1e-9);
    }

    #[test]
    fn results_delivered_are_consistent() {
        // PDQ delivers each object once; naive re-delivers every frame —
        // naive's total must be at least PDQ's.
        let (ds, specs) = small_setup(0.9);
        let tree = ds.build_nsi_tree();
        let naive = measure_naive_nsi(&tree, &specs);
        let pdq = measure_pdq(&tree, &specs);
        assert!(naive.results_per_dq >= pdq.results_per_dq);
        assert!(pdq.results_per_dq > 0.0);
    }
}
