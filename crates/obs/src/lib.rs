//! # obs — observability kit for the serving path
//!
//! The paper's evaluation (§5) is entirely about *measured* query cost —
//! node accesses, queue growth, per-snapshot latency — but aggregate
//! post-run statistics cannot show a hot buffer-pool shard, a PDQ queue
//! ballooning mid-flight, or a frame-latency spike. This crate provides
//! the two primitives the rest of the workspace threads through its hot
//! paths, both cheap enough to stay on in release builds:
//!
//! * [`MetricsRegistry`] — named atomic counters, gauges and fixed-bucket
//!   latency histograms. Registration takes a short lock; every *update*
//!   goes through an `Arc` handle and is a single relaxed atomic op, so
//!   the hot path never contends. [`MetricsRegistry::render`] /
//!   [`MetricsRegistry::render_json`] dump every metric for the bench
//!   binaries and the `--obs-smoke` reconciliation check.
//! * [`TraceRing`] — a bounded ring of structured [`TraceEvent`]s
//!   (`FrameStart`/`FrameEnd`, `NodeVisit`, `QueueOp`, `CacheEvict`,
//!   `InsertBroadcast`). A per-thread ring is maintained behind
//!   [`trace`]; when the ring is full the oldest events are overwritten,
//!   so tracing is O(1) per event and never allocates after start-up.
//!
//! The same counters double as a *cross-check oracle*: because every
//! layer counts independently (pool hits+misses, per-level node reads,
//! per-engine `QueryStats`), exact identities between them pin down
//! accounting bugs — see `exp_service` and `tools/check.sh --obs-smoke`.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry};
pub use trace::{
    set_trace_enabled, take_thread_trace, thread_trace_dropped, trace, trace_enabled, EvictReason,
    QueueOpKind, TraceEvent, TraceRing, Watermark,
};
