//! Lock-free metrics: counters, gauges, fixed-bucket histograms, and the
//! registry that names them.
//!
//! Handles are `Arc`s handed out once at registration; all updates are
//! relaxed atomics (the values are measurements, not synchronization).
//! The registry's map is behind a mutex that is only touched at
//! registration and render time, never per-update.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depth, resident frames, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger — a high-water mark.
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`, with one implicit overflow bucket at the end. Recording is
/// one binary search plus three relaxed atomic adds; there is no locking
/// and no allocation after construction.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Histogram with caller-chosen ascending bucket bounds.
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Default latency bounds: powers of two from 256 ns to ~4 s, which
    /// covers everything from a cached node visit to a stalled frame.
    pub fn latency_bounds() -> Vec<u64> {
        (8..=32).map(|p| 1u64 << p).collect()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// `(upper_bound, count)` per bucket; the final entry uses
    /// `u64::MAX` as its bound (the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Upper bound of the bucket containing quantile `q` ∈ [0, 1] — a
    /// conservative estimate good enough for spotting tail blowups.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bound, c) in self.bucket_counts() {
            seen += c;
            if seen >= rank {
                return bound;
            }
        }
        u64::MAX
    }
}

/// One registered metric, by kind.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one metric, for programmatic inspection.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram count / sum / per-bucket `(bound, count)`.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// `(upper_bound, count)` per bucket.
        buckets: Vec<(u64, u64)>,
    },
}

/// Named registry of metrics. `counter`/`gauge`/`histogram` get-or-create
/// by name and return a shared handle; look-ups by the same name always
/// see the same underlying atomic, so independently instrumented layers
/// can agree on totals.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the latency histogram `name` (default bounds).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_bounds(name, Histogram::latency_bounds)
    }

    /// Get or create histogram `name`, building bounds on first use.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        bounds: impl FnOnce() -> Vec<u64>,
    ) -> Arc<Histogram> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_bounds(bounds()))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        let m = self.metrics.lock();
        m.get(name).map(|metric| match metric {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram {
                count: h.count(),
                sum: h.sum(),
                buckets: h.bucket_counts(),
            },
        })
    }

    /// Counter value of `name` (0 if absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Gauge value of `name` (0 if absent or not a gauge).
    pub fn gauge_value(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// Sum of all counter values whose name starts with `prefix` — the
    /// reconciliation helper (`sum_counters("storage.shard") ==
    /// pool.cache_stats()` and friends).
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        let m = self.metrics.lock();
        m.iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, metric)| match metric {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// Sum of all gauge values whose name starts with `prefix`.
    pub fn sum_gauges(&self, prefix: &str) -> i64 {
        let m = self.metrics.lock();
        m.iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, metric)| match metric {
                Metric::Gauge(g) => Some(g.get()),
                _ => None,
            })
            .sum()
    }

    /// Snapshot every metric as `(name, value)`, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock();
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Plain-text dump, one metric per line; histograms report count,
    /// mean and approximate p50/p99.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let m = self.metrics.lock();
                    let (p50, p99) = match m.get(&name) {
                        Some(Metric::Histogram(h)) => (h.quantile(0.50), h.quantile(0.99)),
                        _ => (0, 0),
                    };
                    drop(m);
                    let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
                    let _ = writeln!(
                        out,
                        "{name} count={count} mean={mean:.0} p50<={p50} p99<={p99}"
                    );
                }
            }
        }
        out
    }

    /// JSON dump (hand-rolled — the workspace is offline and carries no
    /// serde): `{"name": value, ...}` with histograms as objects.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in self.snapshot() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n  \"{name}\": ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram { count, sum, buckets } => {
                    let _ = write!(out, "{{\"count\": {count}, \"sum\": {sum}, \"buckets\": [");
                    let mut bfirst = true;
                    for (bound, c) in buckets {
                        if c == 0 {
                            continue; // keep the dump readable
                        }
                        if !bfirst {
                            let _ = write!(out, ", ");
                        }
                        bfirst = false;
                        let _ = write!(out, "[{bound}, {c}]");
                    }
                    let _ = write!(out, "]}}");
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.hits");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("a.hits"), 5);
        // Same name returns the same underlying atomic.
        reg.counter("a.hits").inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("a.depth");
        g.set(10);
        g.add(-3);
        g.record_max(5); // below current: no-op
        assert_eq!(reg.gauge_value("a.depth"), 7);
        g.record_max(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1, 5, 10, 50, 500, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5566);
        let buckets = h.bucket_counts();
        assert_eq!(buckets, vec![(10, 3), (100, 1), (1000, 1), (u64::MAX, 1)]);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.mean() > 900.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::with_bounds(Histogram::latency_bounds());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn prefix_sums_aggregate_shards() {
        let reg = MetricsRegistry::new();
        for i in 0..4 {
            reg.counter(&format!("pool.shard{i}.hits")).add(i);
        }
        reg.counter("pool.total").add(100);
        assert_eq!(reg.sum_counters("pool.shard"), 6);
        assert_eq!(reg.sum_counters("pool."), 106);
    }

    #[test]
    fn render_contains_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("x.count").add(3);
        reg.gauge("x.depth").set(-2);
        reg.histogram("x.lat_ns").record(1_000_000);
        let text = reg.render();
        assert!(text.contains("x.count 3"));
        assert!(text.contains("x.depth -2"));
        assert!(text.contains("x.lat_ns count=1"));
        let json = reg.render_json();
        assert!(json.contains("\"x.count\": 3"));
        assert!(json.contains("\"x.depth\": -2"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let c = reg.counter("t.n");
        let h = reg.histogram("t.lat");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("same.name");
        reg.gauge("same.name");
    }
}
