//! Bounded per-thread trace rings of structured events.
//!
//! Every hot-path layer emits [`TraceEvent`]s through [`trace`]: the
//! event lands in a fixed-capacity ring owned by the calling thread, so
//! there is no cross-thread contention and no allocation after the ring
//! exists. When the ring is full the oldest events are overwritten (and
//! counted as dropped) — tracing cost is O(1) and bounded regardless of
//! run length, which is what makes it safe to leave on in release
//! builds. A process-wide flag ([`set_trace_enabled`]) turns emission
//! into a single relaxed load + branch when tracing is off.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// What happened to a priority queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOpKind {
    /// An item was enqueued.
    Push,
    /// An item was popped for processing.
    Pop,
    /// An item was discarded (stale or duplicate).
    Discard,
}

/// One structured trace event. All payloads are plain scalars so events
/// are `Copy` and a ring slot is a few words.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A serving session began processing frame `frame`.
    FrameStart {
        /// Session index within the run.
        session: u32,
        /// Global frame number.
        frame: u32,
    },
    /// A serving session finished frame `frame`.
    FrameEnd {
        /// Session index within the run.
        session: u32,
        /// Global frame number.
        frame: u32,
        /// Objects delivered this frame.
        results: u32,
        /// Wall-clock frame processing time.
        latency_ns: u64,
    },
    /// An index node was read (one simulated disk access).
    NodeVisit {
        /// Backing page id.
        page: u64,
        /// Node level (0 = leaf).
        level: u32,
    },
    /// A priority-queue operation (PDQ).
    QueueOp {
        /// Push / pop / discard.
        op: QueueOpKind,
        /// Queue length after the operation.
        depth: u32,
    },
    /// A buffer-pool frame was evicted.
    CacheEvict {
        /// Evicted page id.
        page: u64,
        /// Whether the victim needed write-back.
        dirty: bool,
    },
    /// The writer broadcast a frame's insert reports to PDQ sessions.
    InsertBroadcast {
        /// Reports in the batch.
        reports: u32,
        /// PDQ mailboxes that received them.
        sessions: u32,
    },
    /// A partitioned server routed a frame's insert batch to one region
    /// (records straddling a seam are counted once per receiving region).
    RegionRoute {
        /// Region index within the grid.
        region: u32,
        /// Records routed to this region this frame.
        records: u32,
    },
    /// The durable writer group-committed one frame's batch to the WAL
    /// (before any tree page was written).
    WalCommit {
        /// Sequence number of the committed record.
        seq: u64,
        /// Bytes appended (header + payload).
        bytes: u32,
    },
    /// The durable writer checkpointed the tree and truncated the WAL.
    Checkpoint {
        /// Last WAL sequence number the checkpoint covers.
        seq: u64,
        /// Live pages persisted in the snapshot.
        pages: u32,
    },
    /// Recovery replayed the WAL on top of the last checkpoint.
    WalReplayed {
        /// Complete records applied.
        records: u32,
        /// Whether the log image ended at a record boundary (false after
        /// a torn or corrupted tail was clipped).
        clean_tail: bool,
    },
    /// A region's frame clock advanced one of its watermarks: frame
    /// `frame`'s batch became WAL-durable (`committed`) or visible in the
    /// region's tree (`applied`). Single-tree servers emit region 0.
    FrameAdvance {
        /// Region index within the serving grid (0 for `DqServer`).
        region: u32,
        /// Global frame whose watermark advanced.
        frame: u32,
        /// Which watermark moved.
        watermark: Watermark,
    },
    /// The network front door admitted a connection as a session.
    ConnAccepted {
        /// Session id assigned by the server.
        session: u32,
    },
    /// A network session was evicted from the serving run: its frame
    /// deltas stop, it detaches from its frame clocks, and its socket is
    /// closed after the typed `Evicted` notice.
    SessionEvicted {
        /// Session id assigned by the server.
        session: u32,
        /// Why the session was evicted.
        reason: EvictReason,
    },
}

/// Why the network front door evicted a session
/// ([`TraceEvent::SessionEvicted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// The session's bounded outbox stayed full past the write deadline:
    /// the client stopped reading (or stopped granting credit).
    SlowReader,
    /// The socket disconnected (EOF, reset, or a half-open peer) while
    /// the session was still being served.
    Disconnected,
    /// The client sent bytes that failed protocol decoding.
    Protocol,
}

/// Which per-region frame-clock watermark a [`TraceEvent::FrameAdvance`]
/// reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Watermark {
    /// The frame's batch is durable in the WAL (`committed`).
    Committed,
    /// The frame's batch is visible in the region's tree (`applied`).
    Applied,
}

/// A bounded ring of [`TraceEvent`]s, oldest-overwritten-first.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to write (wraps).
    next: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl TraceRing {
    /// Ring holding up to `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Drop all events (keeps the drop counter).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

/// Process-wide emission switch; on by default (emission is a bounded
/// ring write, cheap enough for release builds).
static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable [`trace`] emission process-wide.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`trace`] currently records events.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

const THREAD_RING_CAPACITY: usize = 1024;

thread_local! {
    static THREAD_RING: RefCell<TraceRing> =
        RefCell::new(TraceRing::with_capacity(THREAD_RING_CAPACITY));
}

/// Record `ev` in the calling thread's ring (no-op when tracing is off).
#[inline]
pub fn trace(ev: TraceEvent) {
    if !trace_enabled() {
        return;
    }
    THREAD_RING.with(|r| r.borrow_mut().push(ev));
}

/// Take (and clear) the calling thread's retained events, oldest first.
pub fn take_thread_trace() -> Vec<TraceEvent> {
    THREAD_RING.with(|r| {
        let mut ring = r.borrow_mut();
        let out = ring.events();
        ring.clear();
        out
    })
}

/// Events the calling thread's ring has overwritten so far.
pub fn thread_trace_dropped() -> u64 {
    THREAD_RING.with(|r| r.borrow().dropped())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_events_in_order() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..6u64 {
            ring.push(TraceEvent::NodeVisit { page: i, level: 0 });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let pages: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::NodeVisit { page, .. } => *page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![2, 3, 4, 5], "oldest overwritten first");
    }

    #[test]
    fn partial_ring_returns_all() {
        let mut ring = TraceRing::with_capacity(8);
        ring.push(TraceEvent::CacheEvict {
            page: 9,
            dirty: true,
        });
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.events(),
            vec![TraceEvent::CacheEvict {
                page: 9,
                dirty: true
            }]
        );
        ring.clear();
        assert!(ring.is_empty());
    }

    /// One test covers both the thread-local ring and the global enable
    /// flag: the flag is process-wide, so exercising it inside a single
    /// test keeps it from racing concurrently running tests.
    #[test]
    fn thread_ring_collects_clears_and_respects_flag() {
        std::thread::spawn(|| {
            set_trace_enabled(false);
            trace(TraceEvent::NodeVisit { page: 1, level: 0 });
            set_trace_enabled(true);
            assert!(take_thread_trace().is_empty(), "disabled trace recorded");

            trace(TraceEvent::FrameStart {
                session: 1,
                frame: 2,
            });
            trace(TraceEvent::QueueOp {
                op: QueueOpKind::Push,
                depth: 3,
            });
            let evs = take_thread_trace();
            assert_eq!(evs.len(), 2);
            assert!(take_thread_trace().is_empty());
            assert_eq!(thread_trace_dropped(), 0);
        })
        .join()
        .unwrap();
    }
}
