//! Motion update events.

use stkit::MotionSegment;

/// One motion update of one object: "from `t.lo` until `t.hi` I moved
/// linearly from `x0` at velocity `v`" (§3.1). This is the unit the NSI
/// index ingests — one leaf record per update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionUpdate<const D: usize> {
    /// Object the update belongs to.
    pub oid: u32,
    /// Sequence number within the object's history (0-based).
    pub seq: u32,
    /// The motion segment.
    pub seg: MotionSegment<D>,
}

impl<const D: usize> MotionUpdate<D> {
    /// Order updates by their start time (for replaying a stream of
    /// updates against a live index in the update-management experiments).
    pub fn by_start_time(a: &Self, b: &Self) -> std::cmp::Ordering {
        a.seg
            .t
            .lo
            .partial_cmp(&b.seg.t.lo)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.oid.cmp(&b.oid))
            .then(a.seq.cmp(&b.seq))
    }
}

/// Flatten per-object traces into one stream sorted by update start time.
pub fn interleave_by_time<const D: usize>(
    traces: impl IntoIterator<Item = Vec<MotionUpdate<D>>>,
) -> Vec<MotionUpdate<D>> {
    let mut all: Vec<MotionUpdate<D>> = traces.into_iter().flatten().collect();
    all.sort_by(MotionUpdate::by_start_time);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::Interval;

    fn upd(oid: u32, seq: u32, t0: f64) -> MotionUpdate<2> {
        MotionUpdate {
            oid,
            seq,
            seg: MotionSegment::from_endpoints(
                Interval::new(t0, t0 + 1.0),
                [0.0, 0.0],
                [1.0, 1.0],
            ),
        }
    }

    #[test]
    fn interleaving_sorts_by_time_then_id() {
        let a = vec![upd(0, 0, 0.0), upd(0, 1, 2.0)];
        let b = vec![upd(1, 0, 1.0), upd(1, 1, 2.0)];
        let merged = interleave_by_time([a, b]);
        let order: Vec<(u32, u32)> = merged.iter().map(|u| (u.oid, u.seq)).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }
}
