//! The paper's workload generator (§5): random-direction walkers.
//!
//! "5000 objects are created, moving randomly in a 2-d space of size
//! 100-by-100 length units, updating their motion approximately (random
//! variable, normally distributed) every 1 time unit over a time period of
//! 100 time units. … Each object moves in various directions with a speed
//! of approximately 1 length unit/1 time unit."

use crate::rng::{truncated_normal, unit_vector};
use crate::trace::ObjectTrace;
use crate::update::MotionUpdate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stkit::{Interval, MotionSegment, Rect, Scalar};

/// Parameters of the random-direction walk; defaults are the paper's.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkConfig<const D: usize> {
    /// Number of objects (paper: 5000).
    pub objects: u32,
    /// The space objects roam (paper: 100 × 100).
    pub space: Rect<D>,
    /// Simulated duration in time units (paper: 100).
    pub duration: Scalar,
    /// Mean time between motion updates (paper: ≈ 1).
    pub mean_update_interval: Scalar,
    /// Standard deviation of the update interval.
    pub sd_update_interval: Scalar,
    /// Mean object speed (paper: ≈ 1 length unit / time unit).
    pub speed_mean: Scalar,
    /// Standard deviation of the speed.
    pub speed_sd: Scalar,
    /// RNG seed — every run with the same config is identical.
    pub seed: u64,
}

impl Default for RandomWalkConfig<2> {
    /// The paper's §5 data-generation parameters.
    fn default() -> Self {
        RandomWalkConfig {
            objects: 5000,
            space: Rect::from_corners([0.0, 0.0], [100.0, 100.0]),
            duration: 100.0,
            mean_update_interval: 1.0,
            sd_update_interval: 0.25,
            speed_mean: 1.0,
            speed_sd: 0.2,
            seed: 0xED87_2002,
        }
    }
}

/// Deterministic random-direction walk generator.
#[derive(Clone, Debug)]
pub struct RandomWalk<const D: usize> {
    config: RandomWalkConfig<D>,
}

impl<const D: usize> RandomWalk<D> {
    /// Create a generator from a config.
    pub fn new(config: RandomWalkConfig<D>) -> Self {
        assert!(config.objects > 0, "need at least one object");
        assert!(!config.space.is_empty(), "space must be non-empty");
        assert!(config.duration > 0.0, "duration must be positive");
        RandomWalk { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &RandomWalkConfig<D> {
        &self.config
    }

    /// Generate the trace of every object.
    pub fn generate(&self) -> Vec<ObjectTrace<D>> {
        (0..self.config.objects)
            .map(|oid| self.generate_object(oid))
            .collect()
    }

    /// Generate the trace of a single object (deterministic per `oid`, so
    /// traces can be produced independently or in parallel).
    pub fn generate_object(&self, oid: u32) -> ObjectTrace<D> {
        let c = &self.config;
        // Stream per object: seed mixes the global seed with the oid.
        let mut rng = ChaCha8Rng::seed_from_u64(c.seed ^ ((oid as u64) << 24 | 0x9E37));
        let mut pos = random_point(&mut rng, &c.space);
        let mut t = 0.0;
        let mut seq = 0;
        let mut updates = Vec::new();
        while t < c.duration {
            let dt = truncated_normal(
                &mut rng,
                c.mean_update_interval,
                c.sd_update_interval,
                c.mean_update_interval * 0.05,
            );
            let t_end = (t + dt).min(c.duration);
            let speed = truncated_normal(&mut rng, c.speed_mean, c.speed_sd, 0.0);
            // Draw directions until the step's endpoint stays in bounds;
            // keeps every segment linear (no mid-segment reflection).
            let target = loop {
                let dir: [Scalar; D] = unit_vector(&mut rng);
                let mut p = [0.0; D];
                for i in 0..D {
                    p[i] = pos[i] + dir[i] * speed * (t_end - t);
                }
                if c.space.contains_point(&p) {
                    break p;
                }
            };
            updates.push(MotionUpdate {
                oid,
                seq,
                seg: MotionSegment::from_endpoints(Interval::new(t, t_end), pos, target),
            });
            pos = target;
            t = t_end;
            seq += 1;
        }
        ObjectTrace { oid, updates }
    }

    /// Expected number of segments ≈ `objects · duration / mean_interval`.
    pub fn expected_segments(&self) -> f64 {
        self.config.objects as f64 * self.config.duration / self.config.mean_update_interval
    }
}

fn random_point<const D: usize, R: Rng>(rng: &mut R, space: &Rect<D>) -> [Scalar; D] {
    let mut p = [0.0; D];
    for i in 0..D {
        let e = space.extent(i);
        p[i] = rng.gen_range(e.lo..=e.hi);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RandomWalkConfig<2> {
        RandomWalkConfig {
            objects: 20,
            duration: 20.0,
            ..RandomWalkConfig::default()
        }
    }

    #[test]
    fn traces_are_valid_and_bounded() {
        let walk = RandomWalk::new(small_config());
        for tr in walk.generate() {
            tr.validate(1e-9).unwrap();
            assert!(tr.stays_inside(&walk.config().space));
            assert_eq!(tr.start_time(), 0.0);
            assert_eq!(tr.end_time(), 20.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomWalk::new(small_config()).generate();
        let b = RandomWalk::new(small_config()).generate();
        assert_eq!(a, b);
        let mut other = small_config();
        other.seed += 1;
        let c = RandomWalk::new(other).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn per_object_generation_matches_batch() {
        let walk = RandomWalk::new(small_config());
        let batch = walk.generate();
        assert_eq!(walk.generate_object(7), batch[7]);
    }

    #[test]
    fn segment_count_near_expectation() {
        let cfg = RandomWalkConfig {
            objects: 100,
            duration: 50.0,
            ..RandomWalkConfig::default()
        };
        let walk = RandomWalk::new(cfg);
        let total: usize = walk.generate().iter().map(|t| t.updates.len()).sum();
        let expected = walk.expected_segments();
        // Within 10 % — interval truncation biases slightly high.
        assert!(
            (total as f64) > expected * 0.9 && (total as f64) < expected * 1.2,
            "{total} vs expected {expected}"
        );
    }

    #[test]
    fn speeds_near_configuration() {
        let walk = RandomWalk::new(small_config());
        let mut speeds = Vec::new();
        for tr in walk.generate() {
            for u in &tr.updates {
                let v2: f64 = u.seg.v.iter().map(|c| c * c).sum();
                speeds.push(v2.sqrt());
            }
        }
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean speed {mean}");
    }

    #[test]
    fn paper_scale_segment_count() {
        // Down-scaled proportion of the paper's 5000×100 run: 500 objects
        // over 10 time units should produce ≈ 5000 segments, mirroring the
        // paper's ≈ 502 504 at full scale.
        let cfg = RandomWalkConfig {
            objects: 500,
            duration: 10.0,
            ..RandomWalkConfig::default()
        };
        let total: usize = RandomWalk::new(cfg)
            .generate()
            .iter()
            .map(|t| t.updates.len())
            .sum();
        assert!((4500..6500).contains(&total), "{total}");
    }
}
