//! Per-object motion histories.

use crate::update::MotionUpdate;
use stkit::{Rect, Scalar};

/// The full motion history of one object: a gap-free chain of motion
/// segments covering one time range.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectTrace<const D: usize> {
    /// Object id.
    pub oid: u32,
    /// Updates in `seq` order; consecutive segments meet in time and
    /// space (validated by [`Self::validate`]).
    pub updates: Vec<MotionUpdate<D>>,
}

impl<const D: usize> ObjectTrace<D> {
    /// Time at which the trace starts.
    pub fn start_time(&self) -> Scalar {
        self.updates.first().map_or(0.0, |u| u.seg.t.lo)
    }

    /// Time at which the trace ends.
    pub fn end_time(&self) -> Scalar {
        self.updates.last().map_or(0.0, |u| u.seg.t.hi)
    }

    /// The object's position at time `t`, if the trace covers `t`.
    pub fn position_at(&self, t: Scalar) -> Option<[Scalar; D]> {
        // Binary search over segment start times.
        let idx = self
            .updates
            .partition_point(|u| u.seg.t.lo <= t)
            .checked_sub(1)?;
        let seg = &self.updates[idx].seg;
        seg.t.contains(t).then(|| seg.position(t))
    }

    /// Check the trace's invariants: ascending `seq`, temporally abutting
    /// validity intervals, and spatial continuity (each segment starts
    /// where the previous one ended, within `tol`).
    pub fn validate(&self, tol: Scalar) -> Result<(), String> {
        for (i, w) in self.updates.windows(2).enumerate() {
            let (a, b) = (&w[0], &w[1]);
            if b.seq != a.seq + 1 {
                return Err(format!("oid {}: seq gap at {}", self.oid, i));
            }
            if (a.seg.t.hi - b.seg.t.lo).abs() > tol {
                return Err(format!(
                    "oid {}: temporal gap {} → {}",
                    self.oid, a.seg.t.hi, b.seg.t.lo
                ));
            }
            let end = a.seg.end_position();
            let start = b.seg.x0;
            for d in 0..D {
                if (end[d] - start[d]).abs() > tol {
                    return Err(format!(
                        "oid {}: spatial jump at seq {} dim {d}: {} vs {}",
                        self.oid, b.seq, end[d], start[d]
                    ));
                }
            }
        }
        Ok(())
    }

    /// True iff every segment stays inside `space`.
    pub fn stays_inside(&self, space: &Rect<D>) -> bool {
        self.updates.iter().all(|u| {
            space.contains_point(&u.seg.x0) && space.contains_point(&u.seg.end_position())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::{Interval, MotionSegment};

    fn trace() -> ObjectTrace<2> {
        let mk = |seq: u32, t0: f64, a: [f64; 2], b: [f64; 2]| MotionUpdate {
            oid: 1,
            seq,
            seg: MotionSegment::from_endpoints(Interval::new(t0, t0 + 1.0), a, b),
        };
        ObjectTrace {
            oid: 1,
            updates: vec![
                mk(0, 0.0, [0.0, 0.0], [1.0, 0.0]),
                mk(1, 1.0, [1.0, 0.0], [1.0, 2.0]),
                mk(2, 2.0, [1.0, 2.0], [3.0, 2.0]),
            ],
        }
    }

    #[test]
    fn position_lookup() {
        let tr = trace();
        assert_eq!(tr.position_at(0.5), Some([0.5, 0.0]));
        assert_eq!(tr.position_at(1.5), Some([1.0, 1.0]));
        assert_eq!(tr.position_at(3.0), Some([3.0, 2.0]));
        assert_eq!(tr.position_at(-0.1), None);
        assert_eq!(tr.position_at(3.1), None);
    }

    #[test]
    fn continuity_validates() {
        trace().validate(1e-9).unwrap();
    }

    #[test]
    fn discontinuity_detected() {
        let mut tr = trace();
        tr.updates[2].seg.x0 = [9.0, 9.0];
        assert!(tr.validate(1e-9).is_err());
    }

    #[test]
    fn seq_gap_detected() {
        let mut tr = trace();
        tr.updates[2].seq = 5;
        let err = tr.validate(1e-9).unwrap_err();
        assert!(err.contains("seq gap"), "{err}");
    }

    #[test]
    fn bounds_check() {
        let tr = trace();
        assert!(tr.stays_inside(&Rect::from_corners([0.0, 0.0], [5.0, 5.0])));
        assert!(!tr.stays_inside(&Rect::from_corners([0.0, 0.0], [2.0, 2.0])));
    }

    #[test]
    fn trace_time_range() {
        let tr = trace();
        assert_eq!(tr.start_time(), 0.0);
        assert_eq!(tr.end_time(), 3.0);
    }
}
