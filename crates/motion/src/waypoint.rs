//! Random-waypoint mobility model (extension beyond the paper's workload).
//!
//! Objects repeatedly pick a uniform waypoint in the space, travel to it
//! in a straight line at a random speed, optionally pause, then pick the
//! next waypoint. Compared with the random-direction walk this produces
//! longer coherent segments and center-biased density — a useful second
//! workload for checking that the dynamic-query algorithms don't depend
//! on the walk's statistics.

use crate::rng::truncated_normal;
use crate::trace::ObjectTrace;
use crate::update::MotionUpdate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stkit::{Interval, MotionSegment, Rect, Scalar};

/// Parameters of the random-waypoint model.
#[derive(Clone, Copy, Debug)]
pub struct RandomWaypointConfig<const D: usize> {
    /// Number of objects.
    pub objects: u32,
    /// The space objects roam.
    pub space: Rect<D>,
    /// Simulated duration in time units.
    pub duration: Scalar,
    /// Mean speed while travelling.
    pub speed_mean: Scalar,
    /// Standard deviation of the speed.
    pub speed_sd: Scalar,
    /// Mean pause at each waypoint (0 = no pausing).
    pub pause_mean: Scalar,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWaypointConfig<2> {
    fn default() -> Self {
        RandomWaypointConfig {
            objects: 1000,
            space: Rect::from_corners([0.0, 0.0], [100.0, 100.0]),
            duration: 100.0,
            speed_mean: 1.0,
            speed_sd: 0.2,
            pause_mean: 0.5,
            seed: 0x52_57_50,
        }
    }
}

/// Deterministic random-waypoint generator.
#[derive(Clone, Debug)]
pub struct RandomWaypoint<const D: usize> {
    config: RandomWaypointConfig<D>,
}

impl<const D: usize> RandomWaypoint<D> {
    /// Create a generator from a config.
    pub fn new(config: RandomWaypointConfig<D>) -> Self {
        assert!(config.objects > 0, "need at least one object");
        assert!(!config.space.is_empty(), "space must be non-empty");
        RandomWaypoint { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &RandomWaypointConfig<D> {
        &self.config
    }

    /// Generate every object's trace.
    pub fn generate(&self) -> Vec<ObjectTrace<D>> {
        (0..self.config.objects)
            .map(|oid| self.generate_object(oid))
            .collect()
    }

    /// Generate one object's trace.
    pub fn generate_object(&self, oid: u32) -> ObjectTrace<D> {
        let c = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(c.seed ^ ((oid as u64) << 20 | 0x57A9));
        let mut pos = random_point(&mut rng, &c.space);
        let mut t = 0.0;
        let mut seq = 0;
        let mut updates = Vec::new();
        while t < c.duration {
            let target = random_point(&mut rng, &c.space);
            let dist: Scalar = pos
                .iter()
                .zip(&target)
                .map(|(a, b)| (b - a) * (b - a))
                .sum::<Scalar>()
                .sqrt();
            let speed = truncated_normal(&mut rng, c.speed_mean, c.speed_sd, c.speed_mean * 0.1);
            let travel = dist / speed;
            let t_end = (t + travel).min(c.duration);
            // Clip the segment if the simulation ends mid-travel.
            let frac = if travel > 0.0 { (t_end - t) / travel } else { 0.0 };
            let mut endpoint = [0.0; D];
            for i in 0..D {
                endpoint[i] = pos[i] + (target[i] - pos[i]) * frac;
            }
            updates.push(MotionUpdate {
                oid,
                seq,
                seg: MotionSegment::from_endpoints(Interval::new(t, t_end), pos, endpoint),
            });
            seq += 1;
            pos = endpoint;
            t = t_end;
            if t >= c.duration {
                break;
            }
            // Pause at the waypoint (a stationary segment), if configured.
            if c.pause_mean > 0.0 {
                let pause = truncated_normal(&mut rng, c.pause_mean, c.pause_mean * 0.3, 0.0);
                let t_end = (t + pause).min(c.duration);
                if t_end > t {
                    updates.push(MotionUpdate {
                        oid,
                        seq,
                        seg: MotionSegment::from_endpoints(Interval::new(t, t_end), pos, pos),
                    });
                    seq += 1;
                    t = t_end;
                }
            }
        }
        ObjectTrace { oid, updates }
    }
}

fn random_point<const D: usize, R: Rng>(rng: &mut R, space: &Rect<D>) -> [Scalar; D] {
    let mut p = [0.0; D];
    for i in 0..D {
        let e = space.extent(i);
        p[i] = rng.gen_range(e.lo..=e.hi);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RandomWaypointConfig<2> {
        RandomWaypointConfig {
            objects: 20,
            duration: 30.0,
            ..RandomWaypointConfig::default()
        }
    }

    #[test]
    fn traces_valid_and_bounded() {
        let gen = RandomWaypoint::new(small());
        for tr in gen.generate() {
            tr.validate(1e-9).unwrap();
            assert!(tr.stays_inside(&gen.config().space));
            assert_eq!(tr.end_time(), 30.0);
        }
    }

    #[test]
    fn pauses_produce_stationary_segments() {
        let gen = RandomWaypoint::new(small());
        let traces = gen.generate();
        let stationary = traces
            .iter()
            .flat_map(|t| &t.updates)
            .filter(|u| u.seg.v.iter().all(|&v| v == 0.0))
            .count();
        assert!(stationary > 0, "expected some pause segments");
    }

    #[test]
    fn no_pause_config_has_no_stationary_segments() {
        let cfg = RandomWaypointConfig {
            pause_mean: 0.0,
            ..small()
        };
        let traces = RandomWaypoint::new(cfg).generate();
        // Every segment is a real move (zero-velocity only possible if a
        // waypoint coincides with the position — measure-zero event).
        let stationary = traces
            .iter()
            .flat_map(|t| &t.updates)
            .filter(|u| u.seg.v.iter().all(|&v| v == 0.0))
            .count();
        assert_eq!(stationary, 0);
    }

    #[test]
    fn deterministic() {
        let a = RandomWaypoint::new(small()).generate();
        let b = RandomWaypoint::new(small()).generate();
        assert_eq!(a, b);
    }
}
