//! Small sampling helpers over any [`rand::Rng`].
//!
//! The paper's generator draws normally-distributed update intervals and
//! speeds; Box–Muller keeps this crate's dependency set to `rand` alone.

use rand::Rng;

/// One standard-normal sample via the Box–Muller transform.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

/// A normal sample truncated below at `min` (resampled, not clamped, so
/// the distribution keeps its shape above the floor).
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, min: f64) -> f64 {
    debug_assert!(min < mean + 6.0 * sd, "truncation point too extreme");
    loop {
        let x = normal(rng, mean, sd);
        if x >= min {
            return x;
        }
    }
}

/// A uniformly random unit vector in `D` dimensions (Gaussian
/// normalization, correct for any `D`).
pub fn unit_vector<const D: usize, R: Rng + ?Sized>(rng: &mut R) -> [f64; D] {
    loop {
        let mut v = [0.0; D];
        let mut norm2 = 0.0;
        for c in v.iter_mut() {
            *c = std_normal(rng);
            norm2 += *c * *c;
        }
        if norm2 > 1e-12 {
            let inv = norm2.sqrt().recip();
            for c in v.iter_mut() {
                *c *= inv;
            }
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn truncation_floor_holds() {
        let mut r = rng();
        for _ in 0..5_000 {
            assert!(truncated_normal(&mut r, 1.0, 0.5, 0.05) >= 0.05);
        }
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v: [f64; 3] = unit_vector(&mut r);
            let norm: f64 = v.iter().map(|c| c * c).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_vectors_cover_directions() {
        // Mean of many unit vectors should be near the origin.
        let mut r = rng();
        let n = 10_000;
        let mut acc = [0.0; 2];
        for _ in 0..n {
            let v: [f64; 2] = unit_vector(&mut r);
            acc[0] += v[0];
            acc[1] += v[1];
        }
        assert!((acc[0].abs() / n as f64) < 0.02);
        assert!((acc[1].abs() / n as f64) < 0.02);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| std_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| std_normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
