//! # motion — mobile objects and their update streams
//!
//! §3.1 of the paper: an object's location changes continuously; the
//! database stores, per update, a validity interval and motion parameters
//! (initial location + constant velocity), i.e. one linear
//! [`stkit::MotionSegment`] per update. This crate produces those update
//! streams:
//!
//! * [`MotionUpdate`] — one object's motion update event, the unit every
//!   index ingests.
//! * [`RandomWalk`] — the paper's workload generator (§5): `n` objects in
//!   a box, re-drawing a random direction roughly every
//!   `mean_update_interval` time units (normally distributed), at a speed
//!   around `speed`. Deterministic under a seed.
//! * [`RandomWaypoint`] — a second classic mobility model (objects pick a
//!   waypoint and travel to it), used by the examples to show the query
//!   algorithms are workload-agnostic.
//! * [`DeadReckoner`] — the threshold-based update policy of §3.1: an
//!   update is emitted only when the object's true position deviates from
//!   the database's dead-reckoned prediction by more than a threshold,
//!   bounding the database-side error.
//! * [`ObjectTrace`] — a per-object segment history with continuity
//!   checks and position lookup, shared by tests and benches.

// Numeric kernels iterate several fixed-size arrays in lockstep; index
// loops keep the per-axis math symmetric and readable.
#![allow(clippy::needless_range_loop)]

pub mod deadreckon;
pub mod rng;
pub mod trace;
pub mod update;
pub mod walk;
pub mod waypoint;

pub use deadreckon::DeadReckoner;
pub use trace::ObjectTrace;
pub use update::MotionUpdate;
pub use walk::{RandomWalk, RandomWalkConfig};
pub use waypoint::{RandomWaypoint, RandomWaypointConfig};
