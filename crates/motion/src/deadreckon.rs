//! Threshold-based (dead-reckoning) update policy (§3.1).
//!
//! "We only issue an update if the object's location (as deduced by the
//! database, by applying f, given θ̄) differs from its current one by more
//! than a threshold value. Thus, the error in the database representation
//! of each object is bounded."
//!
//! [`DeadReckoner`] consumes the object's *true* position stream (sampled
//! at some tick rate) and emits motion updates only when the deviation
//! from the last reported linear motion exceeds the threshold. The emitted
//! segments are exactly what the index stores; the bound guarantees the
//! database position is never more than `threshold` away from the truth
//! at any sampled instant.

use crate::update::MotionUpdate;
use stkit::{Interval, MotionSegment, Scalar};

/// Stateful dead-reckoning filter for one object.
#[derive(Clone, Debug)]
pub struct DeadReckoner<const D: usize> {
    oid: u32,
    threshold: Scalar,
    /// Last update reported to the database: anchor time/position/velocity.
    anchor_t: Scalar,
    anchor_pos: [Scalar; D],
    anchor_vel: [Scalar; D],
    /// Most recent true observation (becomes the segment endpoint when an
    /// update is emitted).
    last_t: Scalar,
    last_pos: [Scalar; D],
    seq: u32,
}

impl<const D: usize> DeadReckoner<D> {
    /// Start reckoning at the object's initial observation.
    pub fn new(oid: u32, threshold: Scalar, t0: Scalar, pos: [Scalar; D], vel: [Scalar; D]) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        DeadReckoner {
            oid,
            threshold,
            anchor_t: t0,
            anchor_pos: pos,
            anchor_vel: vel,
            last_t: t0,
            last_pos: pos,
            seq: 0,
        }
    }

    /// The database's predicted position at time `t` (Eq. 1 applied to the
    /// last reported parameters).
    pub fn predicted(&self, t: Scalar) -> [Scalar; D] {
        let mut p = [0.0; D];
        for i in 0..D {
            p[i] = self.anchor_pos[i] + self.anchor_vel[i] * (t - self.anchor_t);
        }
        p
    }

    /// Feed one true observation. Returns a [`MotionUpdate`] when the
    /// deviation exceeds the threshold: the segment covering
    /// `[anchor, previous observation]` with the *reported* linear motion,
    /// after which reckoning re-anchors at the previous observation with
    /// velocity estimated from the latest pair of observations.
    pub fn observe(&mut self, t: Scalar, pos: [Scalar; D]) -> Option<MotionUpdate<D>> {
        debug_assert!(t >= self.last_t, "observations must be in time order");
        let pred = self.predicted(t);
        let mut dev2 = 0.0;
        for i in 0..D {
            let d = pos[i] - pred[i];
            dev2 += d * d;
        }
        let out = if dev2 > self.threshold * self.threshold {
            // Report the motion as the database knew it, up to now.
            let seg = MotionSegment::new(
                Interval::new(self.anchor_t, t),
                self.anchor_pos,
                self.anchor_vel,
            );
            let upd = MotionUpdate {
                oid: self.oid,
                seq: self.seq,
                seg,
            };
            self.seq += 1;
            // Re-anchor at the *true* current state; velocity estimated
            // from the last observation pair.
            let dt = t - self.last_t;
            let mut vel = [0.0; D];
            if dt > 0.0 {
                for i in 0..D {
                    vel[i] = (pos[i] - self.last_pos[i]) / dt;
                }
            }
            self.anchor_t = t;
            self.anchor_pos = pos;
            self.anchor_vel = vel;
            Some(upd)
        } else {
            None
        };
        self.last_t = t;
        self.last_pos = pos;
        out
    }

    /// Close the stream: the final segment from the anchor to the last
    /// observation (reported motion), if any time has passed.
    pub fn finish(self) -> Option<MotionUpdate<D>> {
        if self.last_t > self.anchor_t {
            Some(MotionUpdate {
                oid: self.oid,
                seq: self.seq,
                seg: MotionSegment::new(
                    Interval::new(self.anchor_t, self.last_t),
                    self.anchor_pos,
                    self.anchor_vel,
                ),
            })
        } else {
            None
        }
    }

    /// Number of updates emitted so far.
    pub fn updates_emitted(&self) -> u32 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_motion_never_updates() {
        let mut dr = DeadReckoner::new(1, 0.5, 0.0, [0.0, 0.0], [1.0, 0.0]);
        for k in 1..=100 {
            let t = k as f64 * 0.1;
            assert!(dr.observe(t, [t, 0.0]).is_none());
        }
        assert_eq!(dr.updates_emitted(), 0);
        let last = dr.finish().unwrap();
        assert_eq!(last.seg.t, Interval::new(0.0, 10.0));
    }

    #[test]
    fn turn_triggers_update() {
        let mut dr = DeadReckoner::new(1, 0.5, 0.0, [0.0, 0.0], [1.0, 0.0]);
        // Move straight for 1 unit, then turn 90°.
        let mut upd = None;
        for k in 1..=20 {
            let t = k as f64 * 0.1;
            let pos = if t <= 1.0 {
                [t, 0.0]
            } else {
                [1.0, t - 1.0] // heading +y now
            };
            if let Some(u) = dr.observe(t, pos) {
                upd = Some((t, u));
                break;
            }
        }
        let (t_trig, u) = upd.expect("turn must eventually exceed threshold");
        // Deviation reaches 0.5 when |(predicted)-(true)| = |(t,0)-(1,t-1)| > 0.5.
        assert!(t_trig > 1.0 && t_trig < 1.5, "triggered at {t_trig}");
        assert_eq!(u.seq, 0);
        assert_eq!(u.seg.t.lo, 0.0);
    }

    #[test]
    fn bounded_error_invariant() {
        // Sinusoidal wobble around a line, amplitude below threshold ⇒ the
        // database prediction error never exceeds the threshold plus the
        // wobble amplitude at observation instants.
        let threshold = 0.3;
        let mut dr = DeadReckoner::new(2, threshold, 0.0, [0.0, 0.0], [1.0, 0.0]);
        let mut updates = Vec::new();
        for k in 1..=500 {
            let t = k as f64 * 0.02;
            let pos = [t, (t * 3.0).sin() * 0.5];
            let pred = dr.predicted(t);
            let dev =
                ((pos[0] - pred[0]).powi(2) + (pos[1] - pred[1]).powi(2)).sqrt();
            if let Some(u) = dr.observe(t, pos) {
                updates.push(u);
            } else {
                assert!(dev <= threshold + 1e-9, "unreported deviation {dev}");
            }
        }
        // Some updates must fire for a wobbly path with a tightish bound.
        assert!(!updates.is_empty());
        // Updates abut temporally.
        for w in updates.windows(2) {
            assert_eq!(w[0].seg.t.hi, w[1].seg.t.lo);
        }
    }

    #[test]
    fn tighter_threshold_more_updates() {
        let run = |threshold: f64| {
            let mut dr = DeadReckoner::new(3, threshold, 0.0, [0.0, 0.0], [1.0, 0.0]);
            let mut n = 0;
            for k in 1..=1000 {
                let t = k as f64 * 0.01;
                let pos = [t, (t * 2.0).sin()];
                if dr.observe(t, pos).is_some() {
                    n += 1;
                }
            }
            n
        };
        assert!(
            run(0.1) > run(0.5),
            "tighter threshold must update more often"
        );
    }
}
