//! Property-based tests: the buffer pool is observationally equivalent
//! to the raw pager under arbitrary operation sequences, and the pager's
//! allocator never hands out a live page twice.

use proptest::prelude::*;
use storage::{BufferPool, PageStore, Pager};

#[derive(Clone, Debug)]
enum Op {
    Alloc,
    /// Write to the i-th live page (mod live count) with this fill byte.
    Write(usize, u8),
    /// Read the i-th live page and compare.
    Read(usize),
    /// Free the i-th live page.
    Free(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Alloc),
        (0usize..64, any::<u8>()).prop_map(|(i, b)| Op::Write(i, b)),
        (0usize..64).prop_map(Op::Read),
        (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffer_pool_equivalent_to_pager(ops in proptest::collection::vec(op(), 1..120), cap in 1usize..16) {
        let raw = Pager::with_page_size(64);
        let pool = BufferPool::new(Pager::with_page_size(64), cap);
        let mut raw_pages = Vec::new();
        let mut pool_pages = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc => {
                    raw_pages.push(raw.alloc());
                    pool_pages.push(pool.alloc());
                }
                Op::Write(i, b) => {
                    if raw_pages.is_empty() { continue; }
                    let i = i % raw_pages.len();
                    let data = vec![*b; 17];
                    raw.write(raw_pages[i], &data);
                    pool.write(pool_pages[i], &data);
                }
                Op::Read(i) => {
                    if raw_pages.is_empty() { continue; }
                    let i = i % raw_pages.len();
                    prop_assert_eq!(raw.read(raw_pages[i]), pool.read(pool_pages[i]));
                }
                Op::Free(i) => {
                    if raw_pages.is_empty() { continue; }
                    let i = i % raw_pages.len();
                    raw.free(raw_pages.swap_remove(i));
                    pool.free(pool_pages.swap_remove(i));
                }
            }
        }
        // Final sweep: every live page identical through both paths.
        for (r, p) in raw_pages.iter().zip(&pool_pages) {
            prop_assert_eq!(raw.read(*r), pool.read(*p));
        }
        // Flush and compare against the pool's *underlying* pager too.
        pool.flush();
        for p in &pool_pages {
            prop_assert_eq!(pool.read(*p), pool.inner().read(*p));
        }
    }

    #[test]
    fn allocator_never_double_allocates(ops in proptest::collection::vec(op(), 1..200)) {
        let pager = Pager::with_page_size(16);
        let mut live = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc => {
                    let id = pager.alloc();
                    prop_assert!(!live.contains(&id), "page {id} allocated twice");
                    live.push(id);
                }
                Op::Free(i) if !live.is_empty() => {
                    let i = i % live.len();
                    pager.free(live.swap_remove(i));
                }
                _ => {}
            }
        }
        prop_assert_eq!(pager.live_pages(), live.len());
    }

    #[test]
    fn pool_hit_ratio_reflects_capacity(n_pages in 2usize..20, cap in 1usize..32) {
        // Sequential cyclic scans: with cap ≥ n_pages everything after the
        // first round hits; with cap < n_pages an LRU on a cyclic scan
        // always misses.
        let pool = BufferPool::new(Pager::with_page_size(32), cap);
        let pages: Vec<_> = (0..n_pages).map(|_| pool.alloc()).collect();
        for p in &pages {
            pool.write(*p, &[1]);
        }
        pool.clear();
        for _round in 0..4 {
            for p in &pages {
                pool.read(*p);
            }
        }
        let cs = pool.cache_stats();
        if cap >= n_pages {
            prop_assert_eq!(cs.misses as usize, n_pages, "only cold misses");
        } else {
            prop_assert_eq!(cs.hits, 0, "cyclic scan through a smaller LRU never hits");
        }
    }
}
