//! Persisting a simulated disk to a real file.
//!
//! Building the paper's full index takes ≈500 k insertions; persisting
//! the page store lets benches and applications build once and reload.
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic "DQPG" ‖ version u32 ‖ page_size u32 ‖ page_count u32
//! then per page: page_id u32 ‖ page bytes (page_size)
//! ```
//!
//! Only live pages are written; free-list structure is reconstructed on
//! load (freed ids below the maximum are re-freed).

use crate::{PageId, PageStore, Pager};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DQPG";
const VERSION: u32 = 1;

/// Serialize every live page of a pager into `w`.
pub fn save_pager<W: Write>(pager: &Pager, mut w: W) -> io::Result<()> {
    let pages = pager.live_page_ids();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(pager.page_size() as u32).to_le_bytes())?;
    w.write_all(&(pages.len() as u32).to_le_bytes())?;
    for id in pages {
        w.write_all(&id.0.to_le_bytes())?;
        w.write_all(&pager.read(id))?;
    }
    Ok(())
}

/// Reconstruct a pager from a stream produced by [`save_pager`].
///
/// Every persisted page keeps its original [`PageId`], so tree root
/// references remain valid.
pub fn load_pager<R: Read>(mut r: R) -> io::Result<Pager> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let page_size = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
    let count = u32::from_le_bytes(head[12..16].try_into().unwrap()) as usize;
    if page_size == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero page size"));
    }

    let mut entries: Vec<(u32, Vec<u8>)> = Vec::with_capacity(count);
    let mut max_id = 0u32;
    for _ in 0..count {
        let mut idb = [0u8; 4];
        r.read_exact(&mut idb)?;
        let id = u32::from_le_bytes(idb);
        let mut data = vec![0u8; page_size];
        r.read_exact(&mut data)?;
        max_id = max_id.max(id);
        entries.push((id, data));
    }

    // Rebuild: allocate 0..=max_id densely, write live pages, free gaps.
    let pager = Pager::with_page_size(page_size);
    if count == 0 {
        return Ok(pager);
    }
    let live: std::collections::HashSet<u32> = entries.iter().map(|(id, _)| *id).collect();
    for i in 0..=max_id {
        let got = pager.alloc();
        debug_assert_eq!(got.0, i, "dense allocation");
    }
    for (id, data) in &entries {
        pager.write(PageId(*id), data);
    }
    for i in 0..=max_id {
        if !live.contains(&i) {
            pager.free(PageId(i));
        }
    }
    Ok(pager)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_ids() {
        let p = Pager::with_page_size(64);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.write(a, b"alpha");
        p.write(b, b"beta");
        p.write(c, b"gamma");
        p.free(b); // leave a hole
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();

        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.page_size(), 64);
        assert_eq!(&q.read(a)[..5], b"alpha");
        assert_eq!(&q.read(c)[..5], b"gamma");
        assert_eq!(q.live_pages(), 2);
        // The freed id is reusable.
        let d = q.alloc();
        assert_eq!(d, b);
    }

    #[test]
    fn empty_pager_roundtrip() {
        let p = Pager::with_page_size(32);
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.live_pages(), 0);
        assert_eq!(q.page_size(), 32);
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(load_pager(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        save_pager(&Pager::with_page_size(16), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(load_pager(&buf[..]).is_err());
        // Truncated page payload.
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.write(a, b"x");
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(load_pager(&buf[..]).is_err());
    }
}
