//! Persisting a simulated disk to a real file.
//!
//! Building the paper's full index takes ≈500 k insertions; persisting
//! the page store lets benches and applications build once and reload.
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic "DQPG" ‖ version u32 ‖ page_size u32 ‖ page_count u32
//! ‖ free_count u32 ‖ free ids (u32 each, allocator order)      (v3 only)
//! then per page: page_id u32 ‖ page_len u32 ‖ fnv1a u64 ‖ page bytes (page_len)
//! ```
//!
//! Each page stores its meaningful prefix (trailing zeros trimmed) with
//! an FNV-1a checksum, so a truncated or bit-flipped snapshot is rejected
//! at load with an [`io::Error`] — `load_pager` never panics on malformed
//! input.
//!
//! Version 3 persists the allocator's free list verbatim, so a reloaded
//! pager grants page ids in exactly the pre-save order — without that,
//! post-restore `alloc()` order diverges from the original pager and the
//! recovered-tree == fault-free-oracle identity (and the serve ==
//! serve_serial determinism oracles after a restore) break. Version 2
//! streams (no free section; gaps re-freed in ascending id order) still
//! load via a compat path.

use crate::fault::page_checksum;
use crate::{PageId, PageStore, Pager, StorageError};
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DQPG";
const VERSION: u32 = 3;
/// Newest legacy version still accepted by [`load_pager`].
const VERSION_V2: u32 = 2;

/// Largest `page_id` a snapshot may carry: load rebuilds ids densely, so
/// this bounds the memory a malformed header can make us allocate.
const MAX_SNAPSHOT_PAGE_ID: u32 = 1 << 26;

/// Largest believable page size; guards `Vec` preallocation on load.
const MAX_SNAPSHOT_PAGE_SIZE: usize = 1 << 28;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn storage_err(e: StorageError) -> io::Error {
    io::Error::other(format!("snapshot read failed: {e}"))
}

/// A store that can be checkpointed by [`save_pager`]: exposes the live
/// id set and the allocator's free list, and can flush any caching layer
/// so the device and the snapshot agree. Implemented by [`Pager`] and
/// forwarded by every wrapper, so a whole serving stack (pool over
/// checksum over pager) checkpoints through its top handle.
pub trait SnapshotSource: PageStore {
    /// Make the underlying device current (write-back caches flush here).
    fn prepare_snapshot(&self) {}

    /// Ids of all live pages, ascending.
    fn snapshot_live_ids(&self) -> Vec<PageId>;

    /// The allocator's free list, verbatim (next `alloc` pops the back).
    fn snapshot_free_list(&self) -> Vec<u32>;
}

impl SnapshotSource for Pager {
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        self.live_page_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        self.free_list()
    }
}

impl<S: SnapshotSource> SnapshotSource for crate::BufferPool<S> {
    fn prepare_snapshot(&self) {
        self.flush();
        self.inner().prepare_snapshot();
    }
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        self.inner().snapshot_live_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        self.inner().snapshot_free_list()
    }
}

impl<S: SnapshotSource> SnapshotSource for crate::ShardedBufferPool<S> {
    fn prepare_snapshot(&self) {
        self.flush();
        self.inner().prepare_snapshot();
    }
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        self.inner().snapshot_live_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        self.inner().snapshot_free_list()
    }
}

impl<S: SnapshotSource> SnapshotSource for crate::FaultyStore<S> {
    fn prepare_snapshot(&self) {
        self.inner().prepare_snapshot();
    }
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        self.inner().snapshot_live_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        self.inner().snapshot_free_list()
    }
}

impl<S: SnapshotSource> SnapshotSource for crate::ChecksumStore<S> {
    fn prepare_snapshot(&self) {
        self.inner().prepare_snapshot();
    }
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        self.inner().snapshot_live_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        self.inner().snapshot_free_list()
    }
}

impl<S: SnapshotSource + ?Sized> SnapshotSource for Arc<S> {
    fn prepare_snapshot(&self) {
        (**self).prepare_snapshot();
    }
    fn snapshot_live_ids(&self) -> Vec<PageId> {
        (**self).snapshot_live_ids()
    }
    fn snapshot_free_list(&self) -> Vec<u32> {
        (**self).snapshot_free_list()
    }
}

/// Serialize every live page (and the allocator free list) of a store
/// into `w`. Works through any [`SnapshotSource`] stack; caching layers
/// are flushed first so the snapshot reflects every completed write.
pub fn save_pager<S: SnapshotSource, W: Write>(store: &S, mut w: W) -> io::Result<()> {
    store.prepare_snapshot();
    let pages = store.snapshot_live_ids();
    let free = store.snapshot_free_list();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(store.page_size() as u32).to_le_bytes())?;
    w.write_all(&(pages.len() as u32).to_le_bytes())?;
    w.write_all(&(free.len() as u32).to_le_bytes())?;
    for id in &free {
        w.write_all(&id.to_le_bytes())?;
    }
    for id in pages {
        let page = store.try_read_page(id).map_err(storage_err)?;
        // Store only the meaningful prefix: pages are zeroed on alloc and
        // writers serialize explicit lengths, so trailing zeros carry no
        // information and the checksum covers everything that does.
        let len = page.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        w.write_all(&id.0.to_le_bytes())?;
        w.write_all(&(len as u32).to_le_bytes())?;
        w.write_all(&page_checksum(&page[..len]).to_le_bytes())?;
        w.write_all(&page[..len])?;
    }
    Ok(())
}

/// Reconstruct a pager from a stream produced by [`save_pager`].
///
/// Every persisted page keeps its original [`PageId`] and (for v3
/// streams) the allocator's free list is restored verbatim, so both tree
/// root references and future `alloc()` order survive the roundtrip.
/// Malformed input — bad magic, unsupported version, truncation anywhere,
/// a `page_len` exceeding the page size, an out-of-range or duplicate id,
/// a free id colliding with a live page, or a checksum mismatch — yields
/// an [`io::Error`] ([`io::ErrorKind::InvalidData`] or
/// [`io::ErrorKind::UnexpectedEof`]); this function does not panic.
pub fn load_pager<R: Read>(mut r: R) -> io::Result<Pager> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if version != VERSION && version != VERSION_V2 {
        return Err(bad(format!("unsupported version {version}")));
    }
    let page_size = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
    let count = u32::from_le_bytes([head[12], head[13], head[14], head[15]]) as usize;
    if page_size == 0 {
        return Err(bad("zero page size"));
    }
    if page_size > MAX_SNAPSHOT_PAGE_SIZE {
        return Err(bad(format!("implausible page size {page_size}")));
    }

    // v3: explicit free list, allocator order. v2 has no free section.
    let mut free: Vec<u32> = Vec::new();
    if version == VERSION {
        let mut fixed = [0u8; 4];
        r.read_exact(&mut fixed)?;
        let free_count = u32::from_le_bytes(fixed) as usize;
        if free_count > MAX_SNAPSHOT_PAGE_ID as usize {
            return Err(bad(format!("implausible free count {free_count}")));
        }
        for _ in 0..free_count {
            let mut idb = [0u8; 4];
            r.read_exact(&mut idb)?;
            let id = u32::from_le_bytes(idb);
            if id >= MAX_SNAPSHOT_PAGE_ID {
                return Err(bad(format!("free id {id} out of range")));
            }
            free.push(id);
        }
    }

    let mut entries: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut max_id = 0u32;
    for _ in 0..count {
        let mut fixed = [0u8; 16];
        r.read_exact(&mut fixed)?;
        let id = u32::from_le_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]);
        let page_len = u32::from_le_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]) as usize;
        let sum = u64::from_le_bytes([
            fixed[8], fixed[9], fixed[10], fixed[11], fixed[12], fixed[13], fixed[14], fixed[15],
        ]);
        if page_len > page_size {
            return Err(bad(format!(
                "page {id}: page_len {page_len} > page size {page_size}"
            )));
        }
        if id >= MAX_SNAPSHOT_PAGE_ID {
            return Err(bad(format!("page id {id} out of range")));
        }
        if !seen.insert(id) {
            // Two entries claiming one id means the stream lies about its
            // shape: last-writer-wins loading would silently diverge
            // `live_pages()` from the declared count.
            return Err(bad(format!("duplicate page id {id}")));
        }
        let mut data = vec![0u8; page_len];
        r.read_exact(&mut data)?;
        if page_checksum(&data) != sum {
            return Err(bad(format!("page {id}: checksum mismatch")));
        }
        max_id = max_id.max(id);
        entries.push((id, data));
    }

    if version == VERSION_V2 {
        return load_v2(page_size, entries, max_id);
    }

    // v3 rebuild: every slot in 0..total must be exactly one of live or
    // free — that is the pager's allocator invariant, and anything else
    // means the stream is inconsistent.
    let max_free = free.iter().copied().max();
    let total = if entries.is_empty() && free.is_empty() {
        0
    } else {
        let hi = max_free.map_or(max_id, |f| f.max(max_id));
        hi as usize + 1
    };
    let mut slots: Vec<Option<Arc<[u8]>>> = vec![None; total];
    for (id, data) in &entries {
        let mut page = vec![0u8; page_size];
        page[..data.len()].copy_from_slice(data);
        slots[*id as usize] = Some(page.into());
    }
    let mut freed = std::collections::HashSet::new();
    for &id in &free {
        if seen.contains(&id) {
            return Err(bad(format!("free id {id} collides with a live page")));
        }
        if !freed.insert(id) {
            return Err(bad(format!("duplicate free id {id}")));
        }
    }
    if entries.len() + free.len() != total {
        return Err(bad(format!(
            "inconsistent snapshot: {} live + {} free != {} slots",
            entries.len(),
            free.len(),
            total
        )));
    }
    Ok(Pager::restore(page_size, slots, free))
}

/// Legacy (v2) rebuild: allocate `0..=max_id` densely, write live pages,
/// free the gaps in ascending id order. Ascending re-free is all a v2
/// stream can offer — it did not record allocator order — so `alloc()`
/// order after a v2 load may differ from the pre-save pager (fixed by v3).
fn load_v2(page_size: usize, entries: Vec<(u32, Vec<u8>)>, max_id: u32) -> io::Result<Pager> {
    let pager = Pager::with_page_size(page_size);
    if entries.is_empty() {
        return Ok(pager);
    }
    let live: std::collections::HashSet<u32> = entries.iter().map(|(id, _)| *id).collect();
    for i in 0..=max_id {
        let got = pager.alloc();
        debug_assert_eq!(got.0, i, "dense allocation");
    }
    for (id, data) in &entries {
        pager.write(PageId(*id), data);
    }
    for i in 0..=max_id {
        if !live.contains(&i) {
            pager.free(PageId(i));
        }
    }
    Ok(pager)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_ids() {
        let p = Pager::with_page_size(64);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.write(a, b"alpha");
        p.write(b, b"beta");
        p.write(c, b"gamma");
        p.free(b); // leave a hole
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();

        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.page_size(), 64);
        assert_eq!(&q.read(a)[..5], b"alpha");
        assert_eq!(&q.read(c)[..5], b"gamma");
        assert_eq!(q.live_pages(), 2);
        // The freed id is reusable.
        let d = q.alloc();
        assert_eq!(d, b);
    }

    #[test]
    fn restored_alloc_order_matches_original() {
        // Free several pages in a deliberately shuffled order, snapshot,
        // reload, and require the clone to grant ids in exactly the order
        // the original would have: this is what keeps a recovered tree's
        // page layout bit-identical to the fault-free oracle's.
        let build = || {
            let p = Pager::with_page_size(32);
            let ids: Vec<PageId> = (0..6).map(|_| p.alloc()).collect();
            for id in &ids {
                p.write(*id, &id.0.to_le_bytes());
            }
            p.free(ids[4]);
            p.free(ids[1]);
            p.free(ids[3]);
            p
        };
        let p = build();
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.free_list(), p.free_list(), "free list survives verbatim");
        // A pristine copy of the original and the reloaded pager must pop
        // identically: last-freed first — 3, then 1, then 4.
        let oracle = build();
        for _ in 0..3 {
            assert_eq!(q.alloc(), oracle.alloc());
        }
        assert_eq!(oracle.free_list(), q.free_list());
    }

    #[test]
    fn v2_stream_still_loads() {
        // Hand-build a v2 snapshot (no free section) and check the compat
        // path: pages land on their ids, gaps are re-freed ascending.
        let payload = b"legacy";
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&16u32.to_le_bytes()); // page size
        buf.extend_from_slice(&1u32.to_le_bytes()); // one page ...
        buf.extend_from_slice(&2u32.to_le_bytes()); // ... with id 2
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&page_checksum(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.live_pages(), 1);
        assert_eq!(&q.read(PageId(2))[..payload.len()], payload);
        assert_eq!(q.free_list(), vec![0, 1], "gaps re-freed ascending");
    }

    #[test]
    fn empty_pager_roundtrip() {
        let p = Pager::with_page_size(32);
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.live_pages(), 0);
        assert_eq!(q.page_size(), 32);
    }

    #[test]
    fn snapshot_through_a_pool_stack_flushes_first() {
        // save_pager through BufferPool<ChecksumStore<Pager>> must flush
        // the dirty frame before reading the device.
        let pool = crate::BufferPool::new(crate::ChecksumStore::new(Pager::with_page_size(32)), 4);
        let a = pool.alloc();
        pool.write(a, b"pooled"); // dirty in the pool, not yet on device
        let mut buf = Vec::new();
        save_pager(&pool, &mut buf).unwrap();
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(&q.read(a)[..6], b"pooled");
    }

    /// A small valid snapshot with one page, for mutation tests.
    /// Layout (v3, empty free list): 16-byte header ‖ free_count at 16
    /// ‖ first page entry at 20.
    fn one_page_snapshot() -> Vec<u8> {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.write(a, b"payload");
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        buf
    }

    fn expect_invalid(buf: &[u8], needle: &str) {
        let err = load_pager(buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(
            err.to_string().contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        expect_invalid(b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0", "bad magic");
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = one_page_snapshot();
        buf[4] = 99;
        expect_invalid(&buf, "unsupported version");
    }

    #[test]
    fn truncated_header_is_eof_not_panic() {
        let buf = one_page_snapshot();
        for cut in 0..16 {
            let err = load_pager(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_page_payload_is_eof_not_panic() {
        let buf = one_page_snapshot();
        // Any cut inside the free section or per-page region must fail
        // cleanly.
        for cut in 16..buf.len() {
            assert!(load_pager(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn page_len_exceeding_page_size_rejected() {
        let mut buf = one_page_snapshot();
        // Per-page page_len lives at offset 24 (header ‖ free_count ‖ id).
        buf[24..28].copy_from_slice(&1000u32.to_le_bytes());
        expect_invalid(&buf, "page size");
    }

    #[test]
    fn implausible_page_size_rejected_without_allocation() {
        let mut buf = one_page_snapshot();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(&buf, "implausible page size");
    }

    #[test]
    fn out_of_range_page_id_rejected() {
        // A crafted id near u32::MAX would otherwise make the dense
        // rebuild allocate billions of pages (and overflow the pager's
        // own id space).
        let mut buf = one_page_snapshot();
        buf[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(&buf, "out of range");
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut buf = one_page_snapshot();
        let last = buf.len() - 1; // inside the payload
        buf[last] ^= 0xFF;
        expect_invalid(&buf, "checksum mismatch");
    }

    #[test]
    fn declared_count_beyond_stream_is_clean_error() {
        let mut buf = one_page_snapshot();
        buf[12..16].copy_from_slice(&7u32.to_le_bytes()); // claims 7 pages
        assert!(load_pager(&buf[..]).is_err());
    }

    #[test]
    fn duplicate_page_id_rejected() {
        // Two entries for page 0: before the check, the second silently
        // overwrote the first (last-writer-wins) and live_pages() came up
        // short of the declared count.
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.write(a, b"payload");
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        let entry = buf[20..].to_vec();
        buf.extend_from_slice(&entry); // append a second copy of page 0
        buf[12..16].copy_from_slice(&2u32.to_le_bytes()); // declare 2 pages
        expect_invalid(&buf, "duplicate page id");
    }

    #[test]
    fn free_id_colliding_with_live_page_rejected() {
        let mut buf = one_page_snapshot();
        // Splice in a free list [0] — but page 0 is live.
        let mut crafted = buf[..16].to_vec();
        crafted.extend_from_slice(&1u32.to_le_bytes());
        crafted.extend_from_slice(&0u32.to_le_bytes());
        crafted.extend_from_slice(&buf[20..]);
        buf = crafted;
        expect_invalid(&buf, "collides");
    }

    #[test]
    fn gap_neither_live_nor_free_rejected() {
        // One live page with id 2 and an empty free list leaves slots 0
        // and 1 unaccounted for — a v3 stream must explain every slot.
        let payload = b"payload";
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&16u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // empty free list
        buf.extend_from_slice(&2u32.to_le_bytes()); // live id 2
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&page_checksum(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        expect_invalid(&buf, "inconsistent snapshot");
    }
}
