//! Persisting a simulated disk to a real file.
//!
//! Building the paper's full index takes ≈500 k insertions; persisting
//! the page store lets benches and applications build once and reload.
//! The format is deliberately simple and versioned:
//!
//! ```text
//! magic "DQPG" ‖ version u32 ‖ page_size u32 ‖ page_count u32
//! then per page: page_id u32 ‖ page_len u32 ‖ fnv1a u64 ‖ page bytes (page_len)
//! ```
//!
//! Version 2 stores each page's meaningful prefix (trailing zeros
//! trimmed) with an FNV-1a checksum, so a truncated or bit-flipped
//! snapshot is rejected at load with an [`io::Error`] — `load_pager`
//! never panics on malformed input.
//!
//! Only live pages are written; free-list structure is reconstructed on
//! load (freed ids below the maximum are re-freed).

use crate::fault::page_checksum;
use crate::{PageId, PageStore, Pager};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DQPG";
const VERSION: u32 = 2;

/// Largest `page_id` a snapshot may carry: load rebuilds ids densely, so
/// this bounds the memory a malformed header can make us allocate.
const MAX_SNAPSHOT_PAGE_ID: u32 = 1 << 26;

/// Largest believable page size; guards `Vec` preallocation on load.
const MAX_SNAPSHOT_PAGE_SIZE: usize = 1 << 28;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize every live page of a pager into `w`.
pub fn save_pager<W: Write>(pager: &Pager, mut w: W) -> io::Result<()> {
    let pages = pager.live_page_ids();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(pager.page_size() as u32).to_le_bytes())?;
    w.write_all(&(pages.len() as u32).to_le_bytes())?;
    for id in pages {
        let page = pager.read(id);
        // Store only the meaningful prefix: pages are zeroed on alloc and
        // writers serialize explicit lengths, so trailing zeros carry no
        // information and the checksum covers everything that does.
        let len = page.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        w.write_all(&id.0.to_le_bytes())?;
        w.write_all(&(len as u32).to_le_bytes())?;
        w.write_all(&page_checksum(&page[..len]).to_le_bytes())?;
        w.write_all(&page[..len])?;
    }
    Ok(())
}

/// Reconstruct a pager from a stream produced by [`save_pager`].
///
/// Every persisted page keeps its original [`PageId`], so tree root
/// references remain valid. Malformed input — bad magic, unsupported
/// version, truncation anywhere, a `page_len` exceeding the page size,
/// an out-of-range id, or a checksum mismatch — yields an [`io::Error`]
/// ([`io::ErrorKind::InvalidData`] or [`io::ErrorKind::UnexpectedEof`]);
/// this function does not panic.
pub fn load_pager<R: Read>(mut r: R) -> io::Result<Pager> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let page_size = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
    let count = u32::from_le_bytes([head[12], head[13], head[14], head[15]]) as usize;
    if page_size == 0 {
        return Err(bad("zero page size"));
    }
    if page_size > MAX_SNAPSHOT_PAGE_SIZE {
        return Err(bad(format!("implausible page size {page_size}")));
    }

    let mut entries: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut max_id = 0u32;
    for _ in 0..count {
        let mut fixed = [0u8; 16];
        r.read_exact(&mut fixed)?;
        let id = u32::from_le_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]);
        let page_len = u32::from_le_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]) as usize;
        let sum = u64::from_le_bytes([
            fixed[8], fixed[9], fixed[10], fixed[11], fixed[12], fixed[13], fixed[14], fixed[15],
        ]);
        if page_len > page_size {
            return Err(bad(format!(
                "page {id}: page_len {page_len} > page size {page_size}"
            )));
        }
        if id >= MAX_SNAPSHOT_PAGE_ID {
            return Err(bad(format!("page id {id} out of range")));
        }
        let mut data = vec![0u8; page_len];
        r.read_exact(&mut data)?;
        if page_checksum(&data) != sum {
            return Err(bad(format!("page {id}: checksum mismatch")));
        }
        max_id = max_id.max(id);
        entries.push((id, data));
    }

    // Rebuild: allocate 0..=max_id densely, write live pages, free gaps.
    let pager = Pager::with_page_size(page_size);
    if entries.is_empty() {
        return Ok(pager);
    }
    let live: std::collections::HashSet<u32> = entries.iter().map(|(id, _)| *id).collect();
    for i in 0..=max_id {
        let got = pager.alloc();
        debug_assert_eq!(got.0, i, "dense allocation");
    }
    for (id, data) in &entries {
        pager.write(PageId(*id), data);
    }
    for i in 0..=max_id {
        if !live.contains(&i) {
            pager.free(PageId(i));
        }
    }
    Ok(pager)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_ids() {
        let p = Pager::with_page_size(64);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.write(a, b"alpha");
        p.write(b, b"beta");
        p.write(c, b"gamma");
        p.free(b); // leave a hole
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();

        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.page_size(), 64);
        assert_eq!(&q.read(a)[..5], b"alpha");
        assert_eq!(&q.read(c)[..5], b"gamma");
        assert_eq!(q.live_pages(), 2);
        // The freed id is reusable.
        let d = q.alloc();
        assert_eq!(d, b);
    }

    #[test]
    fn empty_pager_roundtrip() {
        let p = Pager::with_page_size(32);
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        let q = load_pager(&buf[..]).unwrap();
        assert_eq!(q.live_pages(), 0);
        assert_eq!(q.page_size(), 32);
    }

    /// A small valid snapshot with one page, for mutation tests.
    fn one_page_snapshot() -> Vec<u8> {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.write(a, b"payload");
        let mut buf = Vec::new();
        save_pager(&p, &mut buf).unwrap();
        buf
    }

    fn expect_invalid(buf: &[u8], needle: &str) {
        let err = load_pager(buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(
            err.to_string().contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        expect_invalid(b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0", "bad magic");
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = one_page_snapshot();
        buf[4] = 99;
        expect_invalid(&buf, "unsupported version");
    }

    #[test]
    fn truncated_header_is_eof_not_panic() {
        let buf = one_page_snapshot();
        for cut in 0..16 {
            let err = load_pager(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_page_payload_is_eof_not_panic() {
        let buf = one_page_snapshot();
        // Any cut inside the per-page region must fail cleanly.
        for cut in 16..buf.len() {
            assert!(load_pager(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn page_len_exceeding_page_size_rejected() {
        let mut buf = one_page_snapshot();
        // Per-page page_len lives at offset 20 (after header + id).
        buf[20..24].copy_from_slice(&1000u32.to_le_bytes());
        expect_invalid(&buf, "page size");
    }

    #[test]
    fn implausible_page_size_rejected_without_allocation() {
        let mut buf = one_page_snapshot();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(&buf, "implausible page size");
    }

    #[test]
    fn out_of_range_page_id_rejected() {
        // A crafted id near u32::MAX would otherwise make the dense
        // rebuild allocate billions of pages (and overflow the pager's
        // own id space).
        let mut buf = one_page_snapshot();
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(&buf, "out of range");
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut buf = one_page_snapshot();
        let last = buf.len() - 1; // inside the payload
        buf[last] ^= 0xFF;
        expect_invalid(&buf, "checksum mismatch");
    }

    #[test]
    fn declared_count_beyond_stream_is_clean_error() {
        let mut buf = one_page_snapshot();
        buf[12..16].copy_from_slice(&7u32.to_le_bytes()); // claims 7 pages
        assert!(load_pager(&buf[..]).is_err());
    }
}
