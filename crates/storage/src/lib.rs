//! # storage — simulated disk for the EDBT 2002 reproduction
//!
//! The paper measures query cost in *number of disk accesses*, with a 4 KiB
//! page size and R-tree nodes mapped one-to-one onto pages. This crate
//! provides that substrate:
//!
//! * [`Pager`] — an in-memory simulated disk of fixed-size pages with a
//!   free-list allocator and atomic I/O counters. Every [`PageStore::read`]
//!   is one simulated disk access.
//! * [`BufferPool`] — an LRU page cache layered over any [`PageStore`].
//!   The paper argues (§4) that per-session server-side buffering is not a
//!   substitute for dynamic-query processing; the pool exists so the bench
//!   suite can test that claim (`ablation_buffer`).
//! * [`ShardedBufferPool`] — the same cache split into independently
//!   locked shards, for the concurrent query service where many sessions
//!   read one shared tree.
//! * [`IoStats`] — cheap, thread-safe counters snapshotted by the query
//!   engines before/after each query to report per-query page accesses.
//!
//! The [`PageStore`] trait lets the R-tree run over a raw pager (counting
//! every node visit, as the paper does) or a buffered one, without caring
//! which.

pub mod buffer;
pub mod fault;
pub mod pager;
pub mod sharded;
pub mod snapshotfile;
pub mod stats;
pub mod wal;

pub use buffer::{BufferPool, CacheStats};
pub use fault::{
    ChecksumStore, FaultPlan, FaultRecoveryStats, FaultyStore, InjectedFaults, RetryPolicy,
    StorageError,
};
pub use pager::{PageId, Pager};
pub use sharded::ShardedBufferPool;
pub use snapshotfile::{load_pager, save_pager, SnapshotSource};
pub use stats::{IoSnapshot, IoStats};
pub use wal::{
    replay as replay_wal, Wal, WalError, WalRecord, WalReplay, WalStats, WalTail,
    WAL_RECORD_OVERHEAD,
};

use std::sync::Arc;

/// A zero-copy handle to one page's bytes.
///
/// Cloning a `PageRef` bumps a reference count; no page data moves.
/// The handle is a *snapshot*: it stays valid (and immutable) even if the
/// frame it was served from is evicted or the page is rewritten — writers
/// install a fresh `Arc`, they never mutate bytes a reader can see.
#[derive(Clone, Debug)]
pub struct PageRef(Arc<[u8]>);

impl PageRef {
    /// Wrap an already-shared page buffer.
    pub fn from_arc(bytes: Arc<[u8]>) -> PageRef {
        PageRef(bytes)
    }

    /// Take ownership of the underlying shared buffer.
    pub fn into_arc(self) -> Arc<[u8]> {
        self.0
    }
}

impl std::ops::Deref for PageRef {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for PageRef {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for PageRef {
    fn from(bytes: Vec<u8>) -> PageRef {
        PageRef(bytes.into())
    }
}

/// Make `page` writable in place, copying only when the buffer is shared
/// with an outstanding [`PageRef`] (or sized differently). This is what
/// keeps eviction-while-borrowed safe: a resident write never mutates
/// bytes that a reader snapshot still points at.
pub(crate) fn make_mut_page(page: &mut Arc<[u8]>, page_size: usize) -> &mut [u8] {
    if page.len() != page_size || Arc::get_mut(page).is_none() {
        let mut fresh = vec![0u8; page_size];
        let keep = page.len().min(page_size);
        fresh[..keep].copy_from_slice(&page[..keep]);
        *page = fresh.into();
    }
    Arc::get_mut(page).expect("buffer was just made unique")
}

/// Abstraction over a page-granular storage device.
///
/// Implemented by the raw simulated disk ([`Pager`]) and by the LRU cache
/// ([`BufferPool`]). All methods take `&self`; implementations use interior
/// mutability so a single store can be shared by an index and several
/// concurrent readers.
pub trait PageStore {
    /// Size in bytes of every page in this store.
    fn page_size(&self) -> usize;

    /// Read a page without copying it: the returned [`PageRef`] shares
    /// the resident buffer. Counts as one (possibly cached) access.
    /// Fails with [`StorageError`] on injected or detected device faults;
    /// out-of-contract reads (unallocated pages) still panic — those are
    /// caller bugs, not device weather.
    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError>;

    /// Infallible wrapper over [`Self::try_read_page`] for callers with
    /// no recovery story: panics on a storage error, so the panic happens
    /// at the top of the stack (and the serving layer's `catch_unwind`
    /// can contain it) instead of deep inside the engine.
    fn read_page(&self, id: PageId) -> PageRef {
        self.try_read_page(id)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Read a page into a fresh owned buffer. Compat wrapper over
    /// [`Self::read_page`] for callers that need `Vec<u8>` (write path,
    /// persistence); the query engines use `read_page` directly.
    fn read(&self, id: PageId) -> Vec<u8> {
        self.read_page(id).to_vec()
    }

    /// Write a page; `data` must not exceed [`Self::page_size`].
    fn write(&self, id: PageId, data: &[u8]);

    /// Allocate a fresh (zeroed) page, failing with
    /// [`StorageError::Full`] when the device's id space is exhausted.
    fn try_alloc(&self) -> Result<PageId, StorageError>;

    /// Infallible wrapper over [`Self::try_alloc`] for construction-time
    /// callers (tree bootstrap, bulk load) with no degradation story:
    /// panics on a full device, mirroring [`Self::read_page`].
    fn alloc(&self) -> PageId {
        self.try_alloc()
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Return a page to the free list.
    fn free(&self, id: PageId);

    /// Snapshot of the I/O counters of the *underlying device* — i.e. the
    /// number of simulated disk accesses, after any caching.
    fn io(&self) -> IoSnapshot;
}

/// A shared handle is itself a store: lets an index own `Arc<pool>` while
/// the serving layer keeps a second handle for cache statistics.
impl<S: PageStore + ?Sized> PageStore for std::sync::Arc<S> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }
    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
        (**self).try_read_page(id)
    }
    fn read_page(&self, id: PageId) -> PageRef {
        (**self).read_page(id)
    }
    fn read(&self, id: PageId) -> Vec<u8> {
        (**self).read(id)
    }
    fn write(&self, id: PageId, data: &[u8]) {
        (**self).write(id, data)
    }
    fn try_alloc(&self) -> Result<PageId, StorageError> {
        (**self).try_alloc()
    }
    fn alloc(&self) -> PageId {
        (**self).alloc()
    }
    fn free(&self, id: PageId) {
        (**self).free(id)
    }
    fn io(&self) -> IoSnapshot {
        (**self).io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_mut_page_grows_short_buffer_preserving_prefix() {
        // A buffer shorter than the page size (e.g. loaded from a trimmed
        // snapshot) must be grown to full size with a zeroed tail.
        let mut page: Arc<[u8]> = vec![1u8, 2, 3].into();
        let snap = PageRef::from_arc(Arc::clone(&page));
        let buf = make_mut_page(&mut page, 8);
        assert_eq!(buf.len(), 8);
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert_eq!(&buf[3..], &[0, 0, 0, 0, 0]);
        buf[0] = 9;
        // The outstanding snapshot still sees the old, short bytes.
        assert_eq!(&snap[..], &[1, 2, 3]);
    }

    #[test]
    fn make_mut_page_shrinks_long_buffer_truncating() {
        let mut page: Arc<[u8]> = vec![5u8; 16].into();
        let snap = PageRef::from_arc(Arc::clone(&page));
        let buf = make_mut_page(&mut page, 4);
        assert_eq!(buf, &[5, 5, 5, 5]);
        buf.fill(7);
        assert_eq!(snap.len(), 16, "snapshot keeps the old length");
        assert!(snap.iter().all(|&b| b == 5), "snapshot bytes unchanged");
    }

    #[test]
    fn make_mut_page_copies_only_when_shared_or_missized() {
        // Right-sized and unshared: mutate in place, no copy.
        let mut page: Arc<[u8]> = vec![0u8; 4].into();
        let before = Arc::as_ptr(&page);
        make_mut_page(&mut page, 4)[0] = 1;
        assert!(std::ptr::eq(before, Arc::as_ptr(&page)), "no copy expected");

        // Shared with a PageRef: must copy, and the reader keeps old bytes.
        let snap = PageRef::from_arc(Arc::clone(&page));
        make_mut_page(&mut page, 4)[0] = 2;
        assert_eq!(snap[0], 1, "reader sees pre-write bytes");
        assert_eq!(page[0], 2);
    }
}
