//! Fault injection and fault tolerance for the simulated disk.
//!
//! The serving scenario of the paper — many concurrent sessions streaming
//! results off one shared tree — is exactly where a single bad page read
//! must not take down every session. This module supplies the three
//! pieces of that story:
//!
//! * [`StorageError`] — what a fallible page read can report: a transient
//!   I/O error, a timeout (also transient), or a corrupt page.
//! * [`FaultyStore`] — a deterministic, seeded fault injector wrapped
//!   around any [`PageStore`]. Per-read transient/timeout probabilities,
//!   latency spikes, and a runtime-mutable set of targeted corrupt pages
//!   are all driven by one ChaCha8 stream, so chaos runs are reproducible
//!   given a seed (modulo thread interleaving of the draw order).
//! * [`ChecksumStore`] — records an FNV-1a checksum of every page write
//!   and validates it on read, so a torn or bit-flipped page surfaces as
//!   [`StorageError::Corrupt`] instead of garbage query results.
//! * [`RetryPolicy`] — bounded attempts plus exponential backoff; the
//!   buffer pools apply it on miss fills so transient faults are absorbed
//!   below the query engines (see `FaultRecovery`).

use crate::{IoSnapshot, PageId, PageRef, PageStore};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a page read failed.
///
/// `Transient` and `Timeout` are retryable — the same read may succeed a
/// moment later. `Corrupt` is not: the stored bytes themselves are wrong
/// and every retry will see the same bad page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A transient I/O error (the simulated analogue of EIO on a flaky
    /// device); retrying may succeed.
    Transient { page: PageId },
    /// The read exceeded its deadline; retryable like `Transient`.
    Timeout { page: PageId },
    /// The page's bytes fail checksum validation (torn write, bit rot).
    /// Not retryable — the damage is in the store, not the path to it.
    Corrupt { page: PageId },
    /// An optimistic (seqlock-validated) read observed a concurrent tree
    /// mutation and was discarded. Retryable — re-reading after the
    /// writer's section closes succeeds. Raised by `rtree`'s versioned
    /// readers, not by any device.
    Conflict { page: PageId },
    /// Page allocation failed: the device's page-id space is exhausted
    /// (simulated disk full). `page` is the first id that could not be
    /// granted. Not retryable — a full disk stays full until pages are
    /// freed.
    Full { page: PageId },
}

impl StorageError {
    /// The page whose read failed.
    pub fn page(&self) -> PageId {
        match self {
            StorageError::Transient { page }
            | StorageError::Timeout { page }
            | StorageError::Corrupt { page }
            | StorageError::Conflict { page }
            | StorageError::Full { page } => *page,
        }
    }

    /// Whether a retry of the same read can possibly succeed.
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            StorageError::Corrupt { .. } | StorageError::Full { .. }
        )
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Transient { page } => write!(f, "transient I/O error reading {page}"),
            StorageError::Timeout { page } => write!(f, "timeout reading {page}"),
            StorageError::Corrupt { page } => write!(f, "corrupt page {page} (checksum mismatch)"),
            StorageError::Conflict { page } => {
                write!(f, "version conflict reading {page} (concurrent write)")
            }
            StorageError::Full { page } => {
                write!(f, "page allocation failed at {page}: id space exhausted")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Bounded-retry policy for transient faults: up to `max_attempts` total
/// attempts, sleeping `base_backoff << (attempt - 1)` between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: a single attempt, errors surface immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry number `attempt` (1-based): exponential
    /// doubling, capped at 1024× base so a long retry chain cannot stall
    /// a session for seconds.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(10);
        self.base_backoff * (1u32 << exp)
    }
}

impl Default for RetryPolicy {
    /// 4 attempts, 20 µs base backoff — absorbs the chaos suite's
    /// transient rates without measurable throughput cost.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(20),
        }
    }
}

/// Seeded description of the faults a [`FaultyStore`] injects.
///
/// All probabilities are per *device* read (pool hits never reach the
/// fault layer, matching where real disks fail). The default plan injects
/// nothing.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the ChaCha8 stream driving every probabilistic decision.
    pub seed: u64,
    /// Probability a read fails with [`StorageError::Transient`].
    pub transient_prob: f64,
    /// Probability a read fails with [`StorageError::Timeout`].
    pub timeout_prob: f64,
    /// Probability a (successful) read sleeps for `latency_spike` first.
    pub latency_spike_prob: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
}

impl FaultPlan {
    /// A plan injecting nothing (deterministic pass-through).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_prob: 0.0,
            timeout_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike: Duration::ZERO,
        }
    }

    /// A plan injecting only transient errors at rate `p`.
    pub fn transient(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            transient_prob: p,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Whether any probabilistic fault can fire (corrupt-page targeting
    /// is independent of this).
    pub fn is_active(&self) -> bool {
        self.transient_prob > 0.0 || self.timeout_prob > 0.0 || self.latency_spike_prob > 0.0
    }
}

/// Counts of faults a [`FaultyStore`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Reads failed with [`StorageError::Transient`].
    pub transients: u64,
    /// Reads failed with [`StorageError::Timeout`].
    pub timeouts: u64,
    /// Reads delayed by a latency spike.
    pub spikes: u64,
    /// Reads of pages in the corrupt set (bytes were flipped).
    pub corrupt_reads: u64,
}

/// A deterministic fault injector around any [`PageStore`].
///
/// Probabilistic faults (transients, timeouts, latency spikes) come from
/// one seeded ChaCha8 stream; targeted corruption flips bytes of specific
/// pages on read. Failed attempts never reach the inner store, so the
/// device's [`IoStats`](crate::IoStats) counters — the paper's "disk
/// accesses" — count only successful reads and the reconciliation
/// identities of the serving layer survive fault injection exactly.
///
/// Injection can be paused with [`Self::set_enabled`] (e.g. while bulk
/// loading a tree whose structure must match a fault-free oracle).
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    enabled: AtomicBool,
    rng: Mutex<ChaCha8Rng>,
    /// Pages whose reads come back bit-flipped. `flip` selects the byte
    /// offsets to corrupt.
    corrupt: Mutex<HashSet<PageId>>,
    /// Byte offsets flipped (XOR 0xFF) in corrupt pages.
    flip: Vec<usize>,
    transients: AtomicU64,
    timeouts: AtomicU64,
    spikes: AtomicU64,
    corrupt_reads: AtomicU64,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wrap `inner` with the faults described by `plan`. Corrupt reads
    /// flip byte 8 by default — inside an R-tree node header but clear of
    /// the magic, so a checksum layer detects the damage while a parse of
    /// the unchecked bytes would still succeed.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStore<S> {
        Self::with_flipped_bytes(inner, plan, vec![8])
    }

    /// Like [`Self::new`] but flipping the given byte offsets in corrupt
    /// pages. Flipping offset 0 hits the node magic, which makes an
    /// unchecksummed parse panic — the chaos suite uses that to exercise
    /// panic containment.
    pub fn with_flipped_bytes(inner: S, plan: FaultPlan, flip: Vec<usize>) -> FaultyStore<S> {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        FaultyStore {
            inner,
            plan,
            enabled: AtomicBool::new(true),
            rng: Mutex::new(rng),
            corrupt: Mutex::new(HashSet::new()),
            flip,
            transients: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
        }
    }

    /// Pause (`false`) or resume (`true`) all injection; the store is a
    /// transparent pass-through while paused.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Mark `id` so subsequent reads return bit-flipped bytes.
    pub fn corrupt_page(&self, id: PageId) {
        self.corrupt.lock().insert(id);
    }

    /// Remove `id` from the corrupt set.
    pub fn heal_page(&self, id: PageId) {
        self.corrupt.lock().remove(&id);
    }

    /// Counts of faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            transients: self.transients.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
        }
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
        if self.enabled.load(Ordering::Relaxed) {
            if self.plan.is_active() {
                let mut rng = self.rng.lock();
                if rng.gen_bool(self.plan.transient_prob) {
                    drop(rng);
                    self.transients.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageError::Transient { page: id });
                }
                if rng.gen_bool(self.plan.timeout_prob) {
                    drop(rng);
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageError::Timeout { page: id });
                }
                if rng.gen_bool(self.plan.latency_spike_prob) {
                    drop(rng);
                    self.spikes.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.plan.latency_spike);
                }
            }
            if self.corrupt.lock().contains(&id) {
                self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
                let mut bytes = self.inner.try_read_page(id)?.to_vec();
                for &off in &self.flip {
                    if let Some(b) = bytes.get_mut(off) {
                        *b ^= 0xFF;
                    }
                }
                return Ok(PageRef::from(bytes));
            }
        }
        self.inner.try_read_page(id)
    }

    fn write(&self, id: PageId, data: &[u8]) {
        self.inner.write(id, data)
    }

    fn try_alloc(&self) -> Result<PageId, StorageError> {
        self.inner.try_alloc()
    }

    fn free(&self, id: PageId) {
        self.inner.free(id)
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

/// FNV-1a over `bytes` — the page checksum function (also used by the
/// snapshot file format).
pub fn page_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Validates page integrity: every [`PageStore::write`] records the
/// written prefix's length and FNV-1a checksum in a side table; every
/// read re-hashes that prefix and fails with [`StorageError::Corrupt`] on
/// mismatch.
///
/// Checksums cover the written *prefix* only because the pager's write
/// semantics keep the tail's previous bytes — writers always serialize
/// full logical records with explicit lengths, so the prefix is exactly
/// the meaningful payload. Pages never written through this layer (or
/// freshly allocated) validate trivially.
pub struct ChecksumStore<S> {
    inner: S,
    sums: Mutex<HashMap<PageId, (usize, u64)>>,
    corrupt_detected: AtomicU64,
}

impl<S: PageStore> ChecksumStore<S> {
    /// Wrap `inner`, validating every read against recorded write sums.
    pub fn new(inner: S) -> ChecksumStore<S> {
        ChecksumStore {
            inner,
            sums: Mutex::new(HashMap::new()),
            corrupt_detected: AtomicU64::new(0),
        }
    }

    /// Number of reads that failed checksum validation.
    pub fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected.load(Ordering::Relaxed)
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for ChecksumStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
        let page = self.inner.try_read_page(id)?;
        if let Some(&(len, sum)) = self.sums.lock().get(&id) {
            if page.len() < len || page_checksum(&page[..len]) != sum {
                self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Corrupt { page: id });
            }
        }
        Ok(page)
    }

    fn write(&self, id: PageId, data: &[u8]) {
        self.sums.lock().insert(id, (data.len(), page_checksum(data)));
        self.inner.write(id, data)
    }

    fn try_alloc(&self) -> Result<PageId, StorageError> {
        let id = self.inner.try_alloc()?;
        // A recycled id starts a new (zeroed) life; drop any stale sum.
        self.sums.lock().remove(&id);
        Ok(id)
    }

    fn free(&self, id: PageId) {
        self.sums.lock().remove(&id);
        self.inner.free(id)
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

/// Shared retry machinery for the buffer pools: applies a [`RetryPolicy`]
/// to miss fills, counts retries/exhaustions/corruptions, and optionally
/// mirrors them into an obs registry (`storage.retries`,
/// `storage.corrupt_pages`, `storage.retry_latency_ns`).
pub(crate) struct FaultRecovery {
    policy: RetryPolicy,
    retries: AtomicU64,
    exhausted: AtomicU64,
    corrupt_pages: AtomicU64,
    metrics: Mutex<Option<RecoveryMetrics>>,
}

struct RecoveryMetrics {
    retries: std::sync::Arc<obs::Counter>,
    corrupt: std::sync::Arc<obs::Counter>,
    latency: std::sync::Arc<obs::Histogram>,
}

/// Snapshot of a pool's fault-recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRecoveryStats {
    /// Retries issued after a transient failure.
    pub retries: u64,
    /// Reads that failed even after `max_attempts` attempts.
    pub exhausted: u64,
    /// Reads that failed as [`StorageError::Corrupt`] (never retried).
    pub corrupt_pages: u64,
}

impl FaultRecovery {
    pub(crate) fn new(policy: RetryPolicy) -> FaultRecovery {
        assert!(policy.max_attempts >= 1, "retry policy needs ≥ 1 attempt");
        FaultRecovery {
            policy,
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            corrupt_pages: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    pub(crate) fn attach(&self, registry: &obs::MetricsRegistry) {
        *self.metrics.lock() = Some(RecoveryMetrics {
            retries: registry.counter("storage.retries"),
            corrupt: registry.counter("storage.corrupt_pages"),
            latency: registry.histogram("storage.retry_latency_ns"),
        });
    }

    pub(crate) fn stats(&self) -> FaultRecoveryStats {
        FaultRecoveryStats {
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            corrupt_pages: self.corrupt_pages.load(Ordering::Relaxed),
        }
    }

    /// Retry a failed read of `id` per the policy, starting from `first`.
    ///
    /// Called by the pools *after* dropping their state lock: the backoff
    /// sleeps here must never run under a shard lock, or one faulted page
    /// stalls every reader hashing to that shard for the full backoff
    /// (the pools re-acquire and re-validate on return).
    #[cold]
    pub(crate) fn recover<S: PageStore>(
        &self,
        inner: &S,
        id: PageId,
        first: StorageError,
    ) -> Result<PageRef, StorageError> {
        let started = Instant::now();
        let mut err = first;
        let mut attempt = 1u32;
        loop {
            if !err.is_transient() {
                self.corrupt_pages.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &*self.metrics.lock() {
                    m.corrupt.add(1);
                }
                return Err(err);
            }
            if attempt >= self.policy.max_attempts {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                self.observe_latency(started);
                return Err(err);
            }
            let backoff = self.policy.backoff(attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &*self.metrics.lock() {
                m.retries.add(1);
            }
            attempt += 1;
            match inner.try_read_page(id) {
                Ok(page) => {
                    self.observe_latency(started);
                    return Ok(page);
                }
                Err(e) => err = e,
            }
        }
    }

    fn observe_latency(&self, started: Instant) {
        if let Some(m) = &*self.metrics.lock() {
            m.latency.record(started.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPool, Pager};

    #[test]
    fn quiet_plan_is_a_pass_through() {
        let fs = FaultyStore::new(Pager::with_page_size(32), FaultPlan::quiet(1));
        let id = fs.alloc();
        fs.write(id, &[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(&fs.try_read_page(id).unwrap()[..3], &[1, 2, 3]);
        }
        assert_eq!(fs.injected(), InjectedFaults::default());
    }

    #[test]
    fn seeded_transients_are_reproducible() {
        let run = |seed| {
            let fs = FaultyStore::new(Pager::with_page_size(32), FaultPlan::transient(seed, 0.3));
            let id = fs.alloc();
            fs.write(id, &[7]);
            let outcomes: Vec<bool> = (0..200).map(|_| fs.try_read_page(id).is_ok()).collect();
            (outcomes, fs.injected().transients)
        };
        let (a, fa) = run(42);
        let (b, fb) = run(42);
        let (c, _) = run(43);
        assert_eq!(a, b, "same seed must inject the same fault schedule");
        assert_eq!(fa, fb);
        assert!(fa > 0, "a 30% rate over 200 reads must fire");
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn failed_reads_never_reach_the_device() {
        let fs = FaultyStore::new(Pager::with_page_size(32), FaultPlan::transient(9, 0.5));
        let id = fs.alloc();
        fs.write(id, &[1]);
        let mut ok = 0u64;
        for _ in 0..100 {
            if fs.try_read_page(id).is_ok() {
                ok += 1;
            }
        }
        // Device read counter counts only the successful attempts — the
        // serving layer's reconciliation identities depend on this.
        assert_eq!(fs.io().reads, ok);
    }

    #[test]
    fn timeouts_are_transient_corruption_is_not() {
        let p = PageId(3);
        assert!(StorageError::Transient { page: p }.is_transient());
        assert!(StorageError::Timeout { page: p }.is_transient());
        assert!(!StorageError::Corrupt { page: p }.is_transient());
        assert_eq!(StorageError::Timeout { page: p }.page(), p);
    }

    #[test]
    fn disabled_injection_passes_through() {
        let fs = FaultyStore::new(Pager::with_page_size(32), FaultPlan::transient(5, 1.0));
        let id = fs.alloc();
        fs.write(id, &[2]);
        fs.set_enabled(false);
        for _ in 0..50 {
            assert!(fs.try_read_page(id).is_ok());
        }
        fs.set_enabled(true);
        assert!(fs.try_read_page(id).is_err(), "rate 1.0 must fail when enabled");
    }

    #[test]
    fn corrupt_pages_flip_bytes_and_heal() {
        let fs = FaultyStore::new(Pager::with_page_size(32), FaultPlan::quiet(0));
        let id = fs.alloc();
        fs.write(id, &[0u8; 16]);
        fs.corrupt_page(id);
        assert_eq!(fs.try_read_page(id).unwrap()[8], 0xFF);
        assert!(fs.injected().corrupt_reads > 0);
        fs.heal_page(id);
        assert_eq!(fs.try_read_page(id).unwrap()[8], 0);
    }

    #[test]
    fn checksum_detects_corruption_under_it() {
        let cs = ChecksumStore::new(FaultyStore::new(
            Pager::with_page_size(64),
            FaultPlan::quiet(0),
        ));
        let id = cs.alloc();
        cs.write(id, b"hello world, this is a record");
        assert!(cs.try_read_page(id).is_ok());
        cs.inner().corrupt_page(id);
        assert_eq!(
            cs.try_read_page(id).unwrap_err(),
            StorageError::Corrupt { page: id }
        );
        assert_eq!(cs.corrupt_detected(), 1);
    }

    #[test]
    fn checksum_validates_rewrites_and_recycled_pages() {
        let cs = ChecksumStore::new(Pager::with_page_size(32));
        let id = cs.alloc();
        cs.write(id, &[1, 2, 3]);
        cs.write(id, &[9]); // shorter rewrite re-records the sum
        assert_eq!(&cs.try_read_page(id).unwrap()[..3], &[9, 2, 3]);
        cs.free(id);
        let id2 = cs.alloc();
        assert_eq!(id2, id);
        // Recycled page is zeroed; the stale sum must not condemn it.
        assert!(cs.try_read_page(id2).is_ok());
    }

    #[test]
    fn pool_retry_absorbs_transients_exactly() {
        // 30% transient rate, 8 attempts: the pool's miss fill must always
        // succeed, and pool misses must still equal device reads.
        let plan = FaultPlan::transient(7, 0.3);
        let pool = BufferPool::new(FaultyStore::new(Pager::with_page_size(32), plan), 2)
            .with_retry(RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::ZERO,
            });
        let ids: Vec<PageId> = (0..16).map(|_| pool.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.write(*id, &[i as u8]);
        }
        pool.flush();
        pool.clear();
        for round in 0..4 {
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(pool.read(*id)[0], i as u8, "round {round}");
            }
        }
        let fr = pool.fault_stats();
        assert!(fr.retries > 0, "a 30% rate must trigger retries");
        assert_eq!(fr.exhausted, 0);
        let cs = pool.cache_stats();
        assert_eq!(cs.misses, pool.io().reads, "misses == device reads");
    }

    #[test]
    fn retry_metrics_reach_the_registry() {
        let plan = FaultPlan::transient(11, 0.5);
        let pool = BufferPool::new(FaultyStore::new(Pager::with_page_size(32), plan), 1)
            .with_retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::ZERO,
            });
        let reg = obs::MetricsRegistry::new();
        pool.attach_fault_metrics(&reg);
        let ids: Vec<PageId> = (0..8).map(|_| pool.alloc()).collect();
        for id in &ids {
            pool.write(*id, &[1]);
        }
        pool.flush();
        pool.clear();
        for id in &ids {
            pool.read(*id);
        }
        assert_eq!(
            reg.counter_value("storage.retries"),
            pool.fault_stats().retries
        );
        assert!(reg.counter_value("storage.retries") > 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_micros(10),
        };
        assert_eq!(p.backoff(1), Duration::from_micros(10));
        assert_eq!(p.backoff(2), Duration::from_micros(20));
        assert_eq!(p.backoff(3), Duration::from_micros(40));
        assert_eq!(p.backoff(15), Duration::from_micros(10 * 1024)); // capped
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn fnv_checksum_reference_values() {
        // FNV-1a 64-bit reference vectors.
        assert_eq!(page_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(page_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(page_checksum(b"foobar"), 0x85944171f73967e8);
    }
}
