//! Thread-safe I/O counters and snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic I/O counters maintained by a storage device.
///
/// All counters are relaxed atomics: the numbers are measurement
/// instrumentation, not synchronization, and the query engines snapshot
/// them from the thread doing the work.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one page read (one simulated disk access).
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page allocation.
    #[inline]
    pub fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page free.
    #[inline]
    pub fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot current values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`], supporting interval arithmetic
/// (`after - before` = cost of the work in between).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Cumulative page reads.
    pub reads: u64,
    /// Cumulative page writes.
    pub writes: u64,
    /// Cumulative page allocations.
    pub allocs: u64,
    /// Cumulative page frees.
    pub frees: u64,
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            allocs: self.allocs - rhs.allocs,
            frees: self.frees - rhs.frees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        s.record_free();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.frees, 1);
    }

    #[test]
    fn snapshot_difference() {
        let s = IoStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_read();
        s.record_write();
        let delta = s.snapshot() - before;
        assert_eq!(delta.reads, 2);
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn stats_shared_across_threads() {
        let s = std::sync::Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().reads, 4000);
    }
}
