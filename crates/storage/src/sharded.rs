//! Sharded LRU buffer pool for concurrent serving.
//!
//! [`crate::BufferPool`] serializes every page access behind one mutex —
//! fine for single-session benches, a bottleneck when a server runs many
//! query sessions over one shared tree. [`ShardedBufferPool`] routes each
//! page to one of N independent LRU shards by a multiplicative hash of
//! its [`PageId`], so concurrent readers of different pages contend only
//! on their shard's lock. Capacity and the hit/miss/eviction counters are
//! per shard; [`ShardedBufferPool::cache_stats`] aggregates them.

use crate::buffer::{CacheStats, Frame, PoolState};
use crate::{IoSnapshot, PageId, PageRef, PageStore};
use parking_lot::Mutex;
use std::sync::Arc;

/// A fixed-capacity LRU page cache split into independently locked
/// shards, in front of any [`PageStore`].
///
/// Write-back, like [`crate::BufferPool`]: dirty pages are flushed when
/// evicted or on [`Self::flush`]. Total capacity is divided evenly among
/// shards (rounded up), so a pathological workload hammering one shard
/// sees roughly `capacity / shards` frames, not zero.
pub struct ShardedBufferPool<S> {
    inner: S,
    shards: Vec<Mutex<PoolState>>,
    /// Frame budget per shard.
    shard_capacity: usize,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: usize,
}

impl<S: PageStore> ShardedBufferPool<S> {
    /// Wrap `inner` with `capacity` total frames split over `shards`
    /// independently locked LRU domains. `shards` is rounded up to a
    /// power of two (minimum 1).
    pub fn new(inner: S, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        let shards = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedBufferPool {
            inner,
            shards: (0..shards).map(|_| Mutex::new(PoolState::empty())).collect(),
            shard_capacity,
            mask: shards - 1,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: PageId) -> &Mutex<PoolState> {
        // Fibonacci hashing spreads the sequential PageIds a pager
        // allocates across shards instead of clustering them.
        let h = (id.0 as usize).wrapping_mul(0x9E37_79B9);
        &self.shards[(h >> 16) & self.mask]
    }

    /// Aggregated cache statistics over all shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let st = shard.lock();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
        }
        total
    }

    /// Write all dirty pages back to the underlying store.
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().flush_to(&self.inner);
        }
    }

    /// Drop every cached page (flushing dirty ones first).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut st = shard.lock();
            st.flush_to(&self.inner);
            st.reset();
        }
    }

    /// Number of pages currently resident across all shards.
    pub fn resident_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for ShardedBufferPool<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, id: PageId) -> PageRef {
        let mut st = self.shard(id).lock();
        if st.frames.contains_key(&id) {
            st.hits += 1;
            st.touch(id);
            return PageRef::from_arc(Arc::clone(&st.frames[&id].data));
        }
        st.misses += 1;
        // Miss fill shares the device's buffer (no copy) and evicts
        // *before* the insert, keeping each shard at ≤ shard_capacity.
        let data = self.inner.read_page(id).into_arc();
        st.evict_if_full(&self.inner, self.shard_capacity);
        st.frames.insert(id, Frame::resident(Arc::clone(&data), false));
        st.push_front(id);
        PageRef::from_arc(data)
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size(), "page overflow");
        let mut st = self.shard(id).lock();
        if st.frames.contains_key(&id) {
            let size = self.page_size();
            st.frames.get_mut(&id).unwrap().overwrite(data, size);
            st.touch(id);
            return;
        }
        st.evict_if_full(&self.inner, self.shard_capacity);
        let mut buf = vec![0u8; self.page_size()];
        buf[..data.len()].copy_from_slice(data);
        st.frames.insert(id, Frame::resident(buf.into(), true));
        st.push_front(id);
    }

    fn alloc(&self) -> PageId {
        self.inner.alloc()
    }

    fn free(&self, id: PageId) {
        self.shard(id).lock().forget(id);
        self.inner.free(id);
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pager;

    fn pool(cap: usize, shards: usize) -> ShardedBufferPool<Pager> {
        ShardedBufferPool::new(Pager::with_page_size(32), cap, shards)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(pool(64, 1).shard_count(), 1);
        assert_eq!(pool(64, 3).shard_count(), 4);
        assert_eq!(pool(64, 8).shard_count(), 8);
        assert_eq!(pool(2, 8).shard_count(), 8); // capacity floor of 1/shard
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(16, 4);
        let id = p.alloc();
        p.write(id, &[7]);
        p.clear();
        let before = p.io();
        for _ in 0..10 {
            assert_eq!(p.read(id)[0], 7);
        }
        assert_eq!((p.io() - before).reads, 1);
        let cs = p.cache_stats();
        assert_eq!(cs.hits, 9);
        assert_eq!(cs.misses, 1);
    }

    #[test]
    fn eviction_respects_per_shard_capacity() {
        // 4 shards × 1 frame: touching many pages must evict, but every
        // page stays readable with correct contents.
        let p = pool(4, 4);
        let ids: Vec<PageId> = (0..32).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id)[0], i as u8);
        }
        assert!(p.cache_stats().evictions > 0);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction_and_flush() {
        let p = pool(4, 4);
        let ids: Vec<PageId> = (0..16).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8 + 1]);
        }
        p.flush();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.inner().read(*id)[0], i as u8 + 1);
        }
    }

    #[test]
    fn free_drops_cached_frame() {
        let p = pool(8, 2);
        let a = p.alloc();
        p.write(a, &[1]);
        p.free(a);
        let b = p.alloc();
        assert_eq!(b, a);
        assert_eq!(p.read(b), vec![0u8; 32]);
    }

    #[test]
    fn miss_heavy_scan_respects_capacity() {
        // Regression: every shard must evict before a miss fill, so a scan
        // with no reuse never pushes the pool past its total budget.
        let p = pool(8, 4);
        let ids: Vec<PageId> = (0..128).map(|_| p.alloc()).collect();
        for id in &ids {
            p.read(*id);
            assert!(
                p.resident_frames() <= 8,
                "resident {} frames > capacity 8",
                p.resident_frames()
            );
        }
        assert_eq!(p.cache_stats().misses, 128);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        use std::sync::Arc;
        let p = Arc::new(pool(32, 8));
        let ids: Vec<PageId> = (0..64).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, id) in ids.iter().enumerate() {
                            if (i + t + round) % 3 == 0 {
                                assert_eq!(p.read(*id)[0], i as u8);
                            }
                        }
                    }
                });
            }
        });
        let cs = p.cache_stats();
        assert!(cs.hits > 0 && cs.misses > 0);
    }
}
