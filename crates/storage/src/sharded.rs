//! Sharded LRU buffer pool for concurrent serving.
//!
//! [`crate::BufferPool`] serializes every page access behind one mutex —
//! fine for single-session benches, a bottleneck when a server runs many
//! query sessions over one shared tree. [`ShardedBufferPool`] routes each
//! page to one of N independent LRU shards by a multiplicative hash of
//! its [`PageId`], so concurrent readers of different pages contend only
//! on their shard's lock. Capacity and the hit/miss/eviction counters are
//! per shard; [`ShardedBufferPool::cache_stats`] aggregates them.

use crate::buffer::{CacheStats, Frame, PoolState};
use crate::fault::{FaultRecovery, FaultRecoveryStats, RetryPolicy, StorageError};
use crate::{IoSnapshot, PageId, PageRef, PageStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-capacity LRU page cache split into independently locked
/// shards, in front of any [`PageStore`].
///
/// Write-back, like [`crate::BufferPool`]: dirty pages are flushed when
/// evicted or on [`Self::flush`]. Total capacity is divided evenly among
/// shards (rounded up), so a pathological workload hammering one shard
/// sees roughly `capacity / shards` frames, not zero.
pub struct ShardedBufferPool<S> {
    inner: S,
    shards: Vec<Mutex<PoolState>>,
    /// Frame budget per shard. Atomic so a server can re-slice one
    /// device's total frame budget across regions between epochs
    /// ([`Self::resize`]) without taking every shard lock up front.
    shard_capacity: AtomicUsize,
    /// `log2(shards.len())`; the shard count is a power of two.
    shard_bits: u32,
    recovery: FaultRecovery,
}

impl<S: PageStore> ShardedBufferPool<S> {
    /// Wrap `inner` with `capacity` total frames split over `shards`
    /// independently locked LRU domains. `shards` is rounded up to a
    /// power of two (minimum 1).
    pub fn new(inner: S, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        let shards = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedBufferPool {
            inner,
            shards: (0..shards).map(|_| Mutex::new(PoolState::empty())).collect(),
            shard_capacity: AtomicUsize::new(shard_capacity),
            shard_bits: shards.trailing_zeros(),
            recovery: FaultRecovery::new(RetryPolicy::none()),
        }
    }

    /// Total frame budget (per-shard budget × shard count).
    pub fn capacity(&self) -> usize {
        self.shard_capacity.load(Ordering::Relaxed) * self.shards.len()
    }

    /// Re-slice the pool to a new total `capacity` (divided evenly among
    /// the existing shards, minimum 1 frame each), trimming any shard now
    /// over budget — dirty victims are written back, like any eviction.
    /// Used when a partitioned server re-assigns one device's frame
    /// budget across regions between writer epochs.
    pub fn resize(&self, capacity: usize) {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        let per = capacity.div_ceil(self.shards.len()).max(1);
        self.shard_capacity.store(per, Ordering::Relaxed);
        for shard in &self.shards {
            // `evict_if_full` evicts while len >= cap (it is built to run
            // *before* an insert); `per + 1` trims to at most `per`.
            shard.lock().evict_if_full(&self.inner, per + 1);
        }
    }

    /// Retry transient device faults on miss fills per `policy` (the
    /// default pool surfaces the first error). The retry loop — and its
    /// backoff sleeps — runs with *no* shard lock held, so even readers
    /// hashing to the failing page's shard keep serving while one read
    /// backs off; the fill re-acquires and re-validates afterwards.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.recovery = FaultRecovery::new(policy);
        self
    }

    /// Snapshot of the retry/corruption counters (pool-wide, not per
    /// shard — faults are device weather, not routing).
    pub fn fault_stats(&self) -> FaultRecoveryStats {
        self.recovery.stats()
    }

    /// Mirror fault-recovery counters into `registry` as
    /// `storage.retries`, `storage.corrupt_pages`, and the
    /// `storage.retry_latency_ns` histogram.
    pub fn attach_fault_metrics(&self, registry: &obs::MetricsRegistry) {
        self.recovery.attach(registry);
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `id` routes to.
    ///
    /// 64-bit Fibonacci hashing with *top*-bit extraction: the golden
    /// ratio's low bits repeat with small periods, so multiplying by the
    /// 32-bit constant and reading bits 16.. (as a previous revision did)
    /// collapses strided `PageId` sequences — e.g. every id that is a
    /// multiple of 2²⁰ landed on shard 0 — starving shards under the
    /// regular layouts bulk loading produces. The product's *top* bits
    /// mix every input bit, keeping sequential and strided sequences
    /// within a small factor of uniform (see `shard_distribution_*`).
    pub fn shard_of(&self, id: PageId) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (u64::BITS - self.shard_bits)) as usize
    }

    fn shard(&self, id: PageId) -> &Mutex<PoolState> {
        &self.shards[self.shard_of(id)]
    }

    /// Aggregated cache statistics over all shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let st = shard.lock();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
        }
        total
    }

    /// Per-shard cache statistics, in shard order — the aggregated view
    /// of [`Self::cache_stats`] hides routing skew; this one shows it.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| {
                let st = shard.lock();
                CacheStats {
                    hits: st.hits,
                    misses: st.misses,
                    evictions: st.evictions,
                }
            })
            .collect()
    }

    /// Publish per-shard hit/miss/eviction gauges (plus resident-frame
    /// counts) into `registry` under `{prefix}.shard{i}.…`. Pull-model:
    /// call at any measurement point; the hot path never touches the
    /// registry.
    pub fn publish_to(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        for (i, (shard, stats)) in self.shards.iter().zip(self.shard_stats()).enumerate() {
            registry
                .gauge(&format!("{prefix}.shard{i}.hits"))
                .set(stats.hits as i64);
            registry
                .gauge(&format!("{prefix}.shard{i}.misses"))
                .set(stats.misses as i64);
            registry
                .gauge(&format!("{prefix}.shard{i}.evictions"))
                .set(stats.evictions as i64);
            registry
                .gauge(&format!("{prefix}.shard{i}.resident"))
                .set(shard.lock().frames.len() as i64);
        }
    }

    /// Write all dirty pages back to the underlying store.
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().flush_to(&self.inner);
        }
    }

    /// Drop every cached page (flushing dirty ones first).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut st = shard.lock();
            st.flush_to(&self.inner);
            st.reset();
        }
    }

    /// Number of pages currently resident across all shards.
    pub fn resident_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for ShardedBufferPool<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
        let mut st = self.shard(id).lock();
        if st.frames.contains_key(&id) {
            st.hits += 1;
            st.touch(id);
            return Ok(PageRef::from_arc(Arc::clone(&st.frames[&id].data)));
        }
        st.misses += 1;
        // Miss fill shares the device's buffer (no copy) and evicts
        // *before* the insert, keeping each shard at ≤ shard_capacity.
        // The fault-free fill stays under the shard lock; the retry loop
        // (with its backoff sleeps) drops it first, so a faulted page
        // stalls no other reader of this shard during backoff.
        let data = match self.inner.try_read_page(id) {
            Ok(page) => page.into_arc(),
            Err(first) => {
                drop(st);
                // The miss counted above pairs with the one successful
                // device read `recover` performs; a concurrent reader that
                // fills the frame while we sleep counts its own miss and
                // its own read, so misses == device reads still holds.
                let data = self.recovery.recover(&self.inner, id, first)?.into_arc();
                st = self.shard(id).lock();
                if let Some(frame) = st.frames.get(&id) {
                    // Re-validate after re-acquiring: never clobber a
                    // frame someone installed meanwhile (it may be dirty).
                    let data = Arc::clone(&frame.data);
                    st.touch(id);
                    return Ok(PageRef::from_arc(data));
                }
                data
            }
        };
        st.evict_if_full(&self.inner, self.shard_capacity.load(Ordering::Relaxed));
        st.frames.insert(id, Frame::resident(Arc::clone(&data), false));
        st.push_front(id);
        Ok(PageRef::from_arc(data))
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size(), "page overflow");
        let mut st = self.shard(id).lock();
        if st.frames.contains_key(&id) {
            let size = self.page_size();
            st.frames.get_mut(&id).unwrap().overwrite(data, size);
            st.touch(id);
            return;
        }
        st.evict_if_full(&self.inner, self.shard_capacity.load(Ordering::Relaxed));
        let mut buf = vec![0u8; self.page_size()];
        buf[..data.len()].copy_from_slice(data);
        st.frames.insert(id, Frame::resident(buf.into(), true));
        st.push_front(id);
    }

    fn try_alloc(&self) -> Result<PageId, StorageError> {
        self.inner.try_alloc()
    }

    fn free(&self, id: PageId) {
        self.shard(id).lock().forget(id);
        self.inner.free(id);
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pager;

    fn pool(cap: usize, shards: usize) -> ShardedBufferPool<Pager> {
        ShardedBufferPool::new(Pager::with_page_size(32), cap, shards)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(pool(64, 1).shard_count(), 1);
        assert_eq!(pool(64, 3).shard_count(), 4);
        assert_eq!(pool(64, 8).shard_count(), 8);
        assert_eq!(pool(2, 8).shard_count(), 8); // capacity floor of 1/shard
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(16, 4);
        let id = p.alloc();
        p.write(id, &[7]);
        p.clear();
        let before = p.io();
        for _ in 0..10 {
            assert_eq!(p.read(id)[0], 7);
        }
        assert_eq!((p.io() - before).reads, 1);
        let cs = p.cache_stats();
        assert_eq!(cs.hits, 9);
        assert_eq!(cs.misses, 1);
    }

    #[test]
    fn eviction_respects_per_shard_capacity() {
        // 4 shards × 1 frame: touching many pages must evict, but every
        // page stays readable with correct contents.
        let p = pool(4, 4);
        let ids: Vec<PageId> = (0..32).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id)[0], i as u8);
        }
        assert!(p.cache_stats().evictions > 0);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction_and_flush() {
        let p = pool(4, 4);
        let ids: Vec<PageId> = (0..16).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8 + 1]);
        }
        p.flush();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.inner().read(*id)[0], i as u8 + 1);
        }
    }

    #[test]
    fn free_drops_cached_frame() {
        let p = pool(8, 2);
        let a = p.alloc();
        p.write(a, &[1]);
        p.free(a);
        let b = p.alloc();
        assert_eq!(b, a);
        assert_eq!(p.read(b), vec![0u8; 32]);
    }

    #[test]
    fn miss_heavy_scan_respects_capacity() {
        // Regression: every shard must evict before a miss fill, so a scan
        // with no reuse never pushes the pool past its total budget.
        let p = pool(8, 4);
        let ids: Vec<PageId> = (0..128).map(|_| p.alloc()).collect();
        for id in &ids {
            p.read(*id);
            assert!(
                p.resident_frames() <= 8,
                "resident {} frames > capacity 8",
                p.resident_frames()
            );
        }
        assert_eq!(p.cache_stats().misses, 128);
    }

    /// The routing the fixed hash replaced: 32-bit Fibonacci constant,
    /// bits 16.. — kept here as the regression reference.
    fn old_shard_of(id: PageId, mask: usize) -> usize {
        let h = (id.0 as usize).wrapping_mul(0x9E37_79B9);
        (h >> 16) & mask
    }

    /// Max/min shard load for `n` ids generated by `gen`, routed by `f`.
    fn load_spread(shards: usize, n: u32, gen: impl Fn(u32) -> u32, f: impl Fn(PageId) -> usize) -> (usize, usize) {
        let mut counts = vec![0usize; shards];
        for i in 0..n {
            counts[f(PageId(gen(i)))] += 1;
        }
        (
            *counts.iter().max().unwrap(),
            *counts.iter().min().unwrap(),
        )
    }

    #[test]
    fn shard_distribution_sequential_and_strided_within_2x_of_uniform() {
        // Strides cover the regular layouts a pager/bulk-loader produces:
        // consecutive ids, small strides, and large power-of-two strides
        // (the case the 32-bit-constant routing collapsed entirely).
        let n = 4096u32;
        for &shards in &[2usize, 4, 16] {
            let p = pool(shards * 4, shards);
            assert_eq!(p.shard_count(), shards);
            for &stride in &[1u32, 2, 7, 16, 64, 1 << 16, 1 << 20] {
                let (max, min) =
                    load_spread(shards, n, |i| i.wrapping_mul(stride), |id| p.shard_of(id));
                let uniform = n as usize / shards;
                assert!(
                    max <= 2 * uniform,
                    "{shards} shards, stride {stride}: hottest shard got {max} of {n} \
                     (uniform {uniform})"
                );
                assert!(
                    min > 0,
                    "{shards} shards, stride {stride}: a shard starved (min 0, max {max})"
                );
            }
        }
    }

    #[test]
    fn old_32bit_routing_fails_the_distribution_bound() {
        // Proof the distribution test has teeth: the replaced routing
        // sends EVERY id with stride 2^20 to shard 0 on a 16-shard pool
        // (the product's bits 16..20 are zero whenever the low 20 input
        // bits are), which is exactly the skew the fix removes.
        let shards = 16usize;
        let n = 4096u32;
        let (max, min) = load_spread(shards, n, |i| i.wrapping_mul(1 << 20), |id| {
            old_shard_of(id, shards - 1)
        });
        assert_eq!(max, n as usize, "old routing clustered everything");
        assert_eq!(min, 0, "old routing starved every other shard");
    }

    #[test]
    fn per_shard_stats_show_no_starved_shard_under_strided_reads() {
        // Route real reads (not just the hash) and assert via the new
        // per-shard gauges that every shard sees traffic.
        let shards = 4usize;
        let p = pool(shards * 8, shards);
        let mut ids = Vec::new();
        // Allocate a dense id range, then touch a strided subset.
        for _ in 0..1024 {
            ids.push(p.alloc());
        }
        for id in ids.iter().step_by(16) {
            p.read(*id);
        }
        let per_shard = p.shard_stats();
        assert_eq!(per_shard.len(), shards);
        let total: u64 = per_shard.iter().map(|s| s.hits + s.misses).sum();
        let agg = p.cache_stats();
        assert_eq!(total, agg.hits + agg.misses, "per-shard must sum to aggregate");
        let max = per_shard.iter().map(|s| s.misses).max().unwrap();
        let min = per_shard.iter().map(|s| s.misses).min().unwrap();
        assert!(min > 0, "a shard saw no traffic: {per_shard:?}");
        assert!(
            max <= 2 * (total / shards as u64).max(1),
            "shard skew beyond 2x of uniform: {per_shard:?}"
        );

        // And the gauges publish per shard, summing to the aggregate.
        let reg = obs::MetricsRegistry::new();
        p.publish_to(&reg, "storage.pool");
        let gauge_misses: u64 = (0..shards)
            .map(|i| reg.gauge_value(&format!("storage.pool.shard{i}.misses")) as u64)
            .sum();
        assert_eq!(gauge_misses, agg.misses);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        use std::sync::Arc;
        let p = Arc::new(pool(32, 8));
        let ids: Vec<PageId> = (0..64).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, id) in ids.iter().enumerate() {
                            if (i + t + round) % 3 == 0 {
                                assert_eq!(p.read(*id)[0], i as u8);
                            }
                        }
                    }
                });
            }
        });
        let cs = p.cache_stats();
        assert!(cs.hits > 0 && cs.misses > 0);
    }
    /// Regression for retrying under the shard lock: while one miss fill
    /// backs off through transient faults, other readers hashing to the
    /// *same* shard must keep serving — the sleeps happen with the lock
    /// released, and the miss/device-read pairing survives the detour.
    #[test]
    fn backoff_does_not_stall_other_readers_of_the_shard() {
        use crate::fault::RetryPolicy;
        use crate::{PageRef, StorageError};
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::time::{Duration, Instant};

        /// Fails `victim` transiently `remaining` times, then serves it.
        struct StickyFault {
            inner: Pager,
            victim: PageId,
            remaining: AtomicU32,
        }
        impl crate::PageStore for StickyFault {
            fn page_size(&self) -> usize {
                self.inner.page_size()
            }
            fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
                if id == self.victim
                    && self
                        .remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_ok()
                {
                    return Err(StorageError::Transient { page: id });
                }
                self.inner.try_read_page(id)
            }
            fn write(&self, id: PageId, data: &[u8]) {
                self.inner.write(id, data)
            }
            fn try_alloc(&self) -> Result<PageId, StorageError> {
                self.inner.try_alloc()
            }
            fn free(&self, id: PageId) {
                self.inner.free(id)
            }
            fn io(&self) -> IoSnapshot {
                self.inner.io()
            }
        }

        let pager = Pager::with_page_size(32);
        let a = pager.alloc();
        let b = pager.alloc();
        pager.write(a, &[1]);
        pager.write(b, &[2]);
        let store = StickyFault {
            inner: pager,
            victim: a,
            remaining: AtomicU32::new(4),
        };
        // One shard: page B shares the failing page's lock by construction.
        let p = ShardedBufferPool::new(store, 8, 1).with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(25),
        });

        std::thread::scope(|s| {
            let slow = s.spawn(|| p.read_page(a));
            // Let the slow read take its miss and enter the backoff loop.
            std::thread::sleep(Duration::from_millis(5));
            let t0 = Instant::now();
            for _ in 0..100 {
                assert_eq!(p.read_page(b)[0], 2);
            }
            let fast = t0.elapsed();
            assert_eq!(slow.join().unwrap()[0], 1, "the victim read must recover");
            // Four transient failures sleep >= 100 ms in total; had the
            // shard lock been held through them, the B reads above could
            // not have finished inside this bound.
            assert!(
                fast < Duration::from_millis(60),
                "same-shard reads stalled {fast:?} behind a backoff"
            );
        });

        // The out-of-lock detour keeps the accounting exact: one miss per
        // page, one successful device read per miss, all retries counted.
        let cs = p.cache_stats();
        assert_eq!(cs.misses, 2);
        assert_eq!(p.fault_stats().retries, 4);
        assert_eq!(p.io().reads, 2);
    }

    #[test]
    fn resize_trims_resident_frames_and_rescales_capacity() {
        let p = pool(16, 4);
        assert_eq!(p.capacity(), 16);
        let ids: Vec<PageId> = (0..16).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]);
        }
        // Fibonacci-hash placement is not perfectly uniform, so a shard
        // may run over its slice and evict early; near-full is enough.
        assert!(p.resident_frames() > 8, "resident {}", p.resident_frames());
        // Shrink: residents trim to the new per-shard budget, contents
        // survive via write-back.
        p.resize(4);
        assert_eq!(p.capacity(), 4);
        assert!(p.resident_frames() <= 4, "resident {}", p.resident_frames());
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id)[0], i as u8);
        }
        // Grow: more pages stay resident again.
        p.resize(16);
        assert_eq!(p.capacity(), 16);
        for id in &ids {
            p.read(*id);
        }
        assert!(p.resident_frames() > 8, "resident {}", p.resident_frames());
    }
}
