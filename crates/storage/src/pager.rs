//! The in-memory simulated disk.

use crate::{make_mut_page, IoSnapshot, IoStats, PageRef, PageStore};
use parking_lot::Mutex;
use std::sync::Arc;

/// Identifier of one fixed-size page on the simulated disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Default page size used throughout the reproduction (the paper's 4 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

struct PagerState {
    /// Shared buffers so [`PageStore::read_page`] is a refcount bump; a
    /// write to a page with outstanding readers copies before mutating.
    pages: Vec<Option<Arc<[u8]>>>,
    free: Vec<u32>,
}

/// An in-memory simulated disk of fixed-size pages.
///
/// Pages are allocated from a free list (freed pages are recycled). Every
/// [`PageStore::read`] and [`PageStore::write`] bumps the [`IoStats`]
/// counters — the paper's "number of disk accesses" metric is exactly
/// `io().reads` over a query.
///
/// ```
/// use storage::{PageStore, Pager};
/// let disk = Pager::new(); // 4 KiB pages, like the paper
/// let page = disk.alloc();
/// disk.write(page, b"motion data");
/// assert_eq!(&disk.read(page)[..11], b"motion data");
/// assert_eq!(disk.io().reads, 1); // one simulated disk access
/// ```
pub struct Pager {
    page_size: usize,
    /// First page id that may never be granted (simulated disk capacity);
    /// `u32::MAX` by default, lowered by [`Self::with_id_cap`] for tests.
    id_cap: u32,
    state: Mutex<PagerState>,
    stats: IoStats,
}

impl Pager {
    /// A pager with the paper's default 4 KiB pages.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// A pager with a custom page size (must be non-zero).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager {
            page_size,
            id_cap: u32::MAX,
            state: Mutex::new(PagerState {
                pages: Vec::new(),
                free: Vec::new(),
            }),
            stats: IoStats::new(),
        }
    }

    /// Cap the page-id space at `cap` pages (ids `0..cap`): the simulated
    /// analogue of a small disk. Once every id below the cap is live,
    /// [`PageStore::try_alloc`] reports [`StorageError::Full`] instead of
    /// growing — the regression harness for writer degradation under
    /// disk-full uses this.
    pub fn with_id_cap(mut self, cap: u32) -> Self {
        self.id_cap = cap;
        self
    }

    /// Rebuild a pager from snapshot state: `slots[i]` is page `i`'s bytes
    /// (`None` for a freed slot) and `free` is the allocator's free list,
    /// verbatim, most-recently-freed last. Restoring the list verbatim is
    /// what pins post-restore `alloc()` order to the pre-save pager.
    pub(crate) fn restore(
        page_size: usize,
        slots: Vec<Option<Arc<[u8]>>>,
        free: Vec<u32>,
    ) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager {
            page_size,
            id_cap: u32::MAX,
            state: Mutex::new(PagerState { pages: slots, free }),
            stats: IoStats::new(),
        }
    }

    /// The allocator's free list, verbatim (most-recently-freed last, the
    /// next `alloc` pops from the back). Persisted by snapshot v3 so a
    /// reloaded pager allocates in the same order as the original.
    pub fn free_list(&self) -> Vec<u32> {
        self.state.lock().free.clone()
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        let st = self.state.lock();
        st.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Total bytes held by live pages.
    pub fn bytes_in_use(&self) -> usize {
        self.live_pages() * self.page_size
    }

    /// Ids of all live pages, ascending (for persistence).
    pub fn live_page_ids(&self) -> Vec<PageId> {
        let st = self.state.lock();
        st.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| PageId(i as u32)))
            .collect()
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.page_size)
            .field("live_pages", &self.live_pages())
            .finish()
    }
}

impl PageStore for Pager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn try_read_page(&self, id: PageId) -> Result<PageRef, crate::StorageError> {
        // The raw simulated disk never fails on its own; faults enter via
        // the FaultyStore/ChecksumStore wrappers. Reading an unallocated
        // page is a caller bug and still panics.
        let st = self.state.lock();
        let page = st
            .pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"));
        self.stats.record_read();
        Ok(PageRef::from_arc(Arc::clone(page)))
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        let mut st = self.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_mut())
            .unwrap_or_else(|| panic!("write of unallocated page {id}"));
        make_mut_page(slot, self.page_size)[..data.len()].copy_from_slice(data);
        // The tail beyond `data` keeps its previous contents; writers
        // always serialize full logical records with explicit lengths.
        self.stats.record_write();
    }

    fn try_alloc(&self) -> Result<PageId, crate::StorageError> {
        let mut st = self.state.lock();
        let zeroed: Arc<[u8]> = vec![0u8; self.page_size].into();
        if let Some(idx) = st.free.pop() {
            self.stats.record_alloc();
            st.pages[idx as usize] = Some(zeroed);
            return Ok(PageId(idx));
        }
        let idx = u32::try_from(st.pages.len())
            .ok()
            .filter(|&i| i < self.id_cap)
            .ok_or(crate::StorageError::Full {
                page: PageId(self.id_cap),
            })?;
        self.stats.record_alloc();
        st.pages.push(Some(zeroed));
        Ok(PageId(idx))
    }

    fn free(&self, id: PageId) {
        let mut st = self.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        st.free.push(id.0);
        self.stats.record_free();
    }

    fn io(&self) -> IoSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let p = Pager::with_page_size(64);
        let id = p.alloc();
        assert_eq!(p.read(id), vec![0u8; 64]); // zeroed on alloc
        p.write(id, &[1, 2, 3]);
        let back = p.read(id);
        assert_eq!(&back[..3], &[1, 2, 3]);
        assert_eq!(back.len(), 64);
    }

    #[test]
    fn io_counts_every_access() {
        let p = Pager::with_page_size(32);
        let id = p.alloc();
        p.read(id);
        p.read(id);
        p.write(id, &[9]);
        let io = p.io();
        assert_eq!(io.reads, 2);
        assert_eq!(io.writes, 1);
        assert_eq!(io.allocs, 1);
    }

    #[test]
    fn free_list_recycles_ids() {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        let b = p.alloc();
        p.free(a);
        let c = p.alloc();
        assert_eq!(c, a); // recycled
        assert_ne!(c, b);
        assert_eq!(p.live_pages(), 2);
        // Recycled page comes back zeroed.
        assert_eq!(p.read(c), vec![0u8; 16]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_after_free_panics() {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.free(a);
        p.read(a);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let p = Pager::with_page_size(4);
        let a = p.alloc();
        p.write(a, &[0u8; 5]);
    }

    #[test]
    fn page_ref_is_a_stable_snapshot() {
        let p = Pager::with_page_size(16);
        let a = p.alloc();
        p.write(a, &[1, 2, 3]);
        let snap = p.read_page(a);
        p.write(a, &[9, 9, 9]); // copies on write: `snap` still shares the old buffer
        assert_eq!(&snap[..3], &[1, 2, 3]);
        assert_eq!(&p.read(a)[..3], &[9, 9, 9]);
    }

    #[test]
    fn bytes_in_use_tracks_live_pages() {
        let p = Pager::with_page_size(128);
        let a = p.alloc();
        let _b = p.alloc();
        assert_eq!(p.bytes_in_use(), 256);
        p.free(a);
        assert_eq!(p.bytes_in_use(), 128);
    }
}
