//! LRU buffer pool over any [`PageStore`].
//!
//! §4 of the paper argues that an LRU buffer at the server cannot replace
//! dynamic-query processing: buffering happens per session and a server
//! holding per-session buffers for many clients cannot scale. The pool
//! exists so the `ablation_buffer` bench can quantify that argument — how
//! much of the naive approach's repeated I/O an LRU of a given size
//! actually absorbs, compared to the PDQ/NPDQ algorithms which need none.

use crate::fault::{FaultRecovery, FaultRecoveryStats, RetryPolicy, StorageError};
use crate::{make_mut_page, IoSnapshot, PageId, PageRef, PageStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One resident page plus its position in the intrusive LRU list.
///
/// The payload is `Arc<[u8]>` so a cache hit is a refcount bump, not a
/// page copy, and eviction is free even while readers hold [`PageRef`]s
/// into the frame — the bytes outlive the frame.
pub(crate) struct Frame {
    pub(crate) data: Arc<[u8]>,
    pub(crate) dirty: bool,
    prev: Option<PageId>,
    next: Option<PageId>,
}

impl Frame {
    pub(crate) fn resident(data: Arc<[u8]>, dirty: bool) -> Frame {
        Frame {
            data,
            dirty,
            prev: None,
            next: None,
        }
    }

    /// Overwrite the frame in place, copying first if a [`PageRef`] still
    /// shares the buffer. Like the pager, the tail beyond `data` keeps its
    /// previous contents.
    pub(crate) fn overwrite(&mut self, data: &[u8], page_size: usize) {
        make_mut_page(&mut self.data, page_size)[..data.len()].copy_from_slice(data);
        self.dirty = true;
    }
}

/// One LRU domain: the whole pool for [`BufferPool`], one shard for
/// [`crate::ShardedBufferPool`].
pub(crate) struct PoolState {
    pub(crate) frames: HashMap<PageId, Frame>,
    /// Most recently used page.
    head: Option<PageId>,
    /// Least recently used page (eviction candidate).
    tail: Option<PageId>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) evictions: u64,
}

impl PoolState {
    pub(crate) fn empty() -> PoolState {
        PoolState {
            frames: HashMap::new(),
            head: None,
            tail: None,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Drop all frames, keeping the counters.
    pub(crate) fn reset(&mut self) {
        self.frames.clear();
        self.head = None;
        self.tail = None;
    }

    /// Evict least-recently-used frames until `capacity` leaves room for
    /// one more, writing dirty victims back to `device`.
    pub(crate) fn evict_if_full<S: PageStore>(&mut self, device: &S, capacity: usize) {
        while self.frames.len() >= capacity {
            let victim = self.tail.expect("non-empty pool must have a tail");
            self.unlink(victim);
            let frame = self.frames.remove(&victim).unwrap();
            if frame.dirty {
                device.write(victim, &frame.data);
            }
            self.evictions += 1;
            obs::trace(obs::TraceEvent::CacheEvict {
                page: victim.0 as u64,
                dirty: frame.dirty,
            });
        }
    }

    /// Write every dirty frame back to `device`.
    pub(crate) fn flush_to<S: PageStore>(&mut self, device: &S) {
        for (&id, f) in self.frames.iter_mut() {
            if f.dirty {
                f.dirty = false;
                device.write(id, &f.data);
            }
        }
    }

    /// Drop `id`'s frame if resident (without write-back).
    pub(crate) fn forget(&mut self, id: PageId) {
        if self.frames.contains_key(&id) {
            self.unlink(id);
            self.frames.remove(&id);
        }
    }
    /// Unlink `id` from the LRU list (must be resident).
    fn unlink(&mut self, id: PageId) {
        let (prev, next) = {
            let f = &self.frames[&id];
            (f.prev, f.next)
        };
        match prev {
            Some(p) => self.frames.get_mut(&p).unwrap().next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.frames.get_mut(&n).unwrap().prev = prev,
            None => self.tail = prev,
        }
        let f = self.frames.get_mut(&id).unwrap();
        f.prev = None;
        f.next = None;
    }

    /// Push `id` to the head (most recently used) position.
    pub(crate) fn push_front(&mut self, id: PageId) {
        let old_head = self.head;
        {
            let f = self.frames.get_mut(&id).unwrap();
            f.prev = None;
            f.next = old_head;
        }
        if let Some(h) = old_head {
            self.frames.get_mut(&h).unwrap().prev = Some(id);
        }
        self.head = Some(id);
        if self.tail.is_none() {
            self.tail = Some(id);
        }
    }

    pub(crate) fn touch(&mut self, id: PageId) {
        if self.head == Some(id) {
            return;
        }
        self.unlink(id);
        self.push_front(id);
    }
}

/// Cache statistics reported by [`BufferPool::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the pool.
    pub hits: u64,
    /// Reads that went to the underlying store.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no reads were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU page cache in front of a [`PageStore`].
///
/// Write-back: dirty pages are flushed when evicted or on [`Self::flush`].
/// Reads served from the pool do **not** touch the underlying device, so
/// `io()` (which delegates to the device) reports only true disk accesses.
pub struct BufferPool<S> {
    inner: S,
    capacity: usize,
    state: Mutex<PoolState>,
    recovery: FaultRecovery,
}

impl<S: PageStore> BufferPool<S> {
    /// Wrap `inner` with an LRU cache holding up to `capacity` pages.
    pub fn new(inner: S, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            inner,
            capacity,
            state: Mutex::new(PoolState::empty()),
            recovery: FaultRecovery::new(RetryPolicy::none()),
        }
    }

    /// Retry transient device faults on miss fills per `policy` (the
    /// default pool surfaces the first error). The retry loop — and its
    /// backoff sleeps — runs with the pool lock *released*: a faulted
    /// page must not stall every other reader of the pool for the full
    /// backoff. After recovery the pool re-acquires and re-validates
    /// (another thread may have filled the frame meanwhile).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.recovery = FaultRecovery::new(policy);
        self
    }

    /// Snapshot of the retry/corruption counters.
    pub fn fault_stats(&self) -> FaultRecoveryStats {
        self.recovery.stats()
    }

    /// Mirror fault-recovery counters into `registry` as
    /// `storage.retries`, `storage.corrupt_pages`, and the
    /// `storage.retry_latency_ns` histogram (push-model: updated as
    /// faults happen; the fault-free hot path never touches them).
    pub fn attach_fault_metrics(&self, registry: &obs::MetricsRegistry) {
        self.recovery.attach(registry);
    }

    /// Current cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let st = self.state.lock();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
        }
    }

    /// Write all dirty pages back to the underlying store.
    pub fn flush(&self) {
        self.state.lock().flush_to(&self.inner);
    }

    /// Drop every cached page (flushing dirty ones) — used between bench
    /// runs to measure cold-cache behaviour.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.flush_to(&self.inner);
        st.reset();
    }

    /// Number of pages currently resident in the cache (≤ capacity).
    pub fn resident_frames(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Publish hit/miss/eviction/resident gauges into `registry` under
    /// `{prefix}.…`. Pull-model: call at any measurement point; the hot
    /// path never touches the registry.
    pub fn publish_to(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        let st = self.state.lock();
        registry.gauge(&format!("{prefix}.hits")).set(st.hits as i64);
        registry
            .gauge(&format!("{prefix}.misses"))
            .set(st.misses as i64);
        registry
            .gauge(&format!("{prefix}.evictions"))
            .set(st.evictions as i64);
        registry
            .gauge(&format!("{prefix}.resident"))
            .set(st.frames.len() as i64);
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn try_read_page(&self, id: PageId) -> Result<PageRef, StorageError> {
        let mut st = self.state.lock();
        if st.frames.contains_key(&id) {
            st.hits += 1;
            st.touch(id);
            return Ok(PageRef::from_arc(Arc::clone(&st.frames[&id].data)));
        }
        st.misses += 1;
        // The miss fill shares the device's buffer: no copy on this path
        // either. `evict_if_full` runs *before* the insert, so the
        // resident count never exceeds `capacity`. The fault-free fill
        // stays under the lock; the retry loop (and its backoff sleeps)
        // runs with the lock *released* — see the cold branch.
        let data = match self.inner.try_read_page(id) {
            Ok(page) => page.into_arc(),
            Err(first) => {
                drop(st);
                // Recover without the lock so other readers keep serving
                // through the backoff. The miss above already paired with
                // the one successful device read `recover` performs, so
                // the misses == device-reads identity survives even if a
                // concurrent reader filled the frame meanwhile (it counted
                // its own miss and its own device read).
                let data = self.recovery.recover(&self.inner, id, first)?.into_arc();
                st = self.state.lock();
                if let Some(frame) = st.frames.get(&id) {
                    // Re-validate: a concurrent reader (or writer) beat us
                    // to the frame while we slept. Its bytes are at least
                    // as fresh as our device read — never clobber them
                    // (the frame may hold an unflushed dirty write).
                    let data = Arc::clone(&frame.data);
                    st.touch(id);
                    return Ok(PageRef::from_arc(data));
                }
                data
            }
        };
        st.evict_if_full(&self.inner, self.capacity);
        st.frames.insert(id, Frame::resident(Arc::clone(&data), false));
        st.push_front(id);
        Ok(PageRef::from_arc(data))
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size(), "page overflow");
        let mut st = self.state.lock();
        if st.frames.contains_key(&id) {
            let size = self.page_size();
            st.frames.get_mut(&id).unwrap().overwrite(data, size);
            st.touch(id);
            return;
        }
        st.evict_if_full(&self.inner, self.capacity);
        let mut buf = vec![0u8; self.page_size()];
        buf[..data.len()].copy_from_slice(data);
        st.frames.insert(id, Frame::resident(buf.into(), true));
        st.push_front(id);
    }

    fn try_alloc(&self) -> Result<PageId, StorageError> {
        self.inner.try_alloc()
    }

    fn free(&self, id: PageId) {
        self.state.lock().forget(id);
        self.inner.free(id);
    }

    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pager;

    fn pool(cap: usize) -> BufferPool<Pager> {
        BufferPool::new(Pager::with_page_size(32), cap)
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(4);
        let id = p.alloc();
        p.write(id, &[7]);
        p.clear(); // start cold
        let before = p.io();
        for _ in 0..10 {
            assert_eq!(p.read(id)[0], 7);
        }
        let delta = p.io() - before;
        assert_eq!(delta.reads, 1); // only the first read hits the disk
        let cs = p.cache_stats();
        assert_eq!(cs.hits, 9);
        assert_eq!(cs.misses, 1);
        assert!(cs.hit_ratio() > 0.89);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        for id in [a, b, c] {
            p.write(id, &[id.0 as u8]);
        }
        p.flush();
        p.clear();
        p.read(a); // resident: [a]
        p.read(b); // resident: [b, a]
        p.read(a); // touch a:  [a, b]
        p.read(c); // evicts b: [c, a]
        let before = p.io();
        p.read(a); // hit
        p.read(c); // hit
        assert_eq!((p.io() - before).reads, 0);
        p.read(b); // miss — was evicted
        assert_eq!((p.io() - before).reads, 1);
        assert!(p.cache_stats().evictions >= 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let p = pool(1);
        let a = p.alloc();
        let b = p.alloc();
        p.write(a, &[42]); // dirty, resident
        p.read(b); // evicts a ⇒ must flush
        // Bypass the pool: the underlying pager must have the new bytes.
        assert_eq!(p.inner().read(a)[0], 42);
    }

    #[test]
    fn flush_writes_all_dirty() {
        let p = pool(8);
        let ids: Vec<PageId> = (0..4).map(|_| p.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8 + 1]);
        }
        p.flush();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.inner().read(*id)[0], i as u8 + 1);
        }
    }

    #[test]
    fn free_drops_cached_frame() {
        let p = pool(4);
        let a = p.alloc();
        p.write(a, &[1]);
        p.free(a);
        let b = p.alloc(); // recycles the id
        assert_eq!(b, a);
        // Cached frame from the old life must not leak into the new page.
        assert_eq!(p.read(b), vec![0u8; 32]);
    }

    #[test]
    fn write_through_cache_roundtrip() {
        let p = pool(4);
        let a = p.alloc();
        p.write(a, &[1, 2, 3]);
        assert_eq!(&p.read(a)[..3], &[1, 2, 3]); // served before any flush
    }

    #[test]
    fn miss_heavy_scan_respects_capacity() {
        // Regression: the read-miss fill must evict *before* inserting, so
        // the resident count stays ≤ capacity with zero reuse in the scan.
        let p = pool(4);
        let ids: Vec<PageId> = (0..64).map(|_| p.alloc()).collect();
        for id in &ids {
            p.read(*id);
            assert!(
                p.resident_frames() <= 4,
                "resident {} frames > capacity 4",
                p.resident_frames()
            );
        }
        let cs = p.cache_stats();
        assert_eq!(cs.misses, 64);
        assert_eq!(cs.evictions, 60);
    }

    #[test]
    fn page_ref_survives_eviction_and_overwrite() {
        let p = pool(1);
        let a = p.alloc();
        let b = p.alloc();
        p.write(a, &[5]);
        let snap = p.read_page(a);
        p.read(b); // evicts `a` while `snap` is outstanding
        p.write(a, &[6]); // rewrites `a` behind the snapshot
        assert_eq!(snap[0], 5); // snapshot bytes unchanged
        assert_eq!(p.read(a)[0], 6);
    }
}
