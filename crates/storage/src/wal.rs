//! Write-ahead log with group commit for the durable write path.
//!
//! The serving write path applies one batch of motion segments per frame.
//! Durability therefore has a natural group-commit unit: each frame's
//! whole batch is appended as **one** length-prefixed, checksummed WAL
//! record *before* any page of the tree is written, and one simulated
//! `fsync` covers the group. A crash at any instant loses at most the
//! frames whose records never became durable; recovery is the last
//! checkpoint plus replay of every complete record, stopping cleanly at
//! the first torn, truncated, or checksum-failing byte.
//!
//! ## Record format
//!
//! ```text
//! file:   magic "DQWL" ‖ version u32
//! record: payload_len u32 ‖ seq u64 ‖ fnv1a u64 ‖ payload bytes
//! ```
//!
//! `seq` increases by one per record and survives truncation at
//! checkpoint, so replay can verify it resumes exactly where the
//! checkpoint left off. The checksum (the same FNV-1a as
//! [`page_checksum`](crate::fault::page_checksum)) covers `seq` and the
//! payload, so a bit flip anywhere in a record surfaces as a
//! [`WalTail::Corrupt`] stop, never as garbage replay.
//!
//! ## Crash model
//!
//! The log lives in memory like the rest of the simulated disk, but its
//! byte image — [`Wal::image`] — *is* the durable medium: crash tests
//! snapshot it at arbitrary points, truncate or flip its tail, and
//! recover from what remains. [`replay`] is total: any byte stream in,
//! typed verdict out, no panics.

use crate::fault::page_checksum;
use parking_lot::Mutex;
use std::time::Instant;

const MAGIC: &[u8; 4] = b"DQWL";
const VERSION: u32 = 1;
/// Per-record fixed header: payload_len u32 ‖ seq u64 ‖ fnv1a u64.
const RECORD_HEADER: usize = 4 + 8 + 8;
/// Bytes a record occupies beyond its payload (the fixed record header)
/// — lets callers report exact appended sizes without knowing the format.
pub const WAL_RECORD_OVERHEAD: usize = RECORD_HEADER;
/// Largest believable record payload; bounds what a corrupt length
/// prefix can make [`replay`] allocate.
const MAX_WAL_RECORD: usize = 1 << 26;

/// Append-only write-ahead log over an in-memory durable image.
pub struct Wal {
    state: Mutex<WalState>,
    metrics: Mutex<Option<WalMetrics>>,
}

struct WalState {
    buf: Vec<u8>,
    next_seq: u64,
    stats: WalStats,
}

struct WalMetrics {
    appends: std::sync::Arc<obs::Counter>,
    commit_ns: std::sync::Arc<obs::Histogram>,
}

/// Counters for the log's lifetime (survive checkpoint truncation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Group-committed records appended.
    pub appends: u64,
    /// Payload + header bytes made durable (including truncated-away).
    pub appended_bytes: u64,
    /// Checkpoint truncations performed.
    pub truncations: u64,
    /// Total nanoseconds spent in group commits.
    pub commit_ns: u64,
}

impl Wal {
    /// An empty log (header only), sequence numbers starting at 1.
    pub fn new() -> Wal {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        Wal {
            state: Mutex::new(WalState {
                buf,
                next_seq: 1,
                stats: WalStats::default(),
            }),
            metrics: Mutex::new(None),
        }
    }

    /// Mirror commit counters into `registry` as `wal.appends` and the
    /// `wal.group_commit_ns` histogram (push-model, updated per commit).
    pub fn attach_metrics(&self, registry: &obs::MetricsRegistry) {
        *self.metrics.lock() = Some(WalMetrics {
            appends: registry.counter("wal.appends"),
            commit_ns: registry.histogram("wal.group_commit_ns"),
        });
    }

    /// Group-commit one record: append `payload` length-prefixed and
    /// checksummed, then make it durable (one simulated fsync for the
    /// whole group). Returns the record's sequence number.
    pub fn commit(&self, payload: &[u8]) -> u64 {
        assert!(payload.len() <= MAX_WAL_RECORD, "WAL record too large");
        let started = Instant::now();
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.buf.reserve(RECORD_HEADER + payload.len());
        st.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        st.buf.extend_from_slice(&seq.to_le_bytes());
        st.buf
            .extend_from_slice(&record_checksum(seq, payload).to_le_bytes());
        st.buf.extend_from_slice(payload);
        let ns = started.elapsed().as_nanos() as u64;
        st.stats.appends += 1;
        st.stats.appended_bytes += (RECORD_HEADER + payload.len()) as u64;
        st.stats.commit_ns += ns;
        drop(st);
        if let Some(m) = &*self.metrics.lock() {
            m.appends.add(1);
            m.commit_ns.record(ns);
        }
        seq
    }

    /// Truncate the log at a checkpoint: every record is now covered by
    /// the checkpoint snapshot, so the image resets to header-only.
    /// Sequence numbers keep counting — the next commit's `seq` is
    /// returned watermark + 1 — so replay can prove it resumes exactly at
    /// the checkpoint. Returns the last committed sequence number (0 when
    /// nothing was ever committed).
    pub fn truncate_for_checkpoint(&self) -> u64 {
        let mut st = self.state.lock();
        st.buf.truncate(MAGIC.len() + 4);
        st.stats.truncations += 1;
        st.next_seq - 1
    }

    /// The durable byte image: header plus every committed record. Crash
    /// harnesses snapshot this, mutilate the tail, and hand it back to
    /// [`replay`].
    pub fn image(&self) -> Vec<u8> {
        self.state.lock().buf.clone()
    }

    /// Lifetime counters (not reset by checkpoint truncation).
    pub fn stats(&self) -> WalStats {
        self.state.lock().stats
    }

    /// Sequence number the next commit will receive.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }
}

impl Default for Wal {
    fn default() -> Wal {
        Wal::new()
    }
}

fn record_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(payload);
    page_checksum(&framed)
}

/// One complete record recovered by [`replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number (monotonic across truncations).
    pub seq: u64,
    /// The group-committed payload, verbatim.
    pub payload: Vec<u8>,
}

/// Where and why [`replay`] stopped reading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// The image ended exactly at a record boundary.
    Clean,
    /// The image ended mid-record (torn group commit): the bytes from
    /// `offset` on do not form a complete record.
    Torn {
        /// Byte offset of the first incomplete record.
        offset: usize,
    },
    /// A complete-looking record at `offset` failed validation (checksum
    /// mismatch, implausible length, or a sequence break).
    Corrupt {
        /// Byte offset of the failing record.
        offset: usize,
        /// Human-readable reason, for logs.
        reason: String,
    },
}

impl WalTail {
    /// Whether replay consumed the whole image.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

/// The outcome of scanning a WAL image: every complete, valid record in
/// order, plus the typed tail verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalReplay {
    /// Complete records, in commit order.
    pub records: Vec<WalRecord>,
    /// Why the scan stopped.
    pub tail: WalTail,
}

/// Errors that make a WAL image unusable *as a whole* (as opposed to a
/// damaged tail, which [`replay`] reports via [`WalTail`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The image is shorter than the file header.
    TruncatedHeader,
    /// The image does not start with the WAL magic.
    BadMagic,
    /// The image's version is not one this build can replay.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::TruncatedHeader => write!(f, "WAL image shorter than its header"),
            WalError::BadMagic => write!(f, "bad WAL magic"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported WAL version {v}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Scan a durable WAL image, returning every complete, checksum-valid
/// record in order and stopping — never panicking — at the first torn,
/// truncated, or corrupt byte. A record whose `seq` does not follow its
/// predecessor's also stops the scan: replaying past a hole would apply
/// frames out of order.
pub fn replay(image: &[u8]) -> Result<WalReplay, WalError> {
    let header = MAGIC.len() + 4;
    if image.len() < header {
        return Err(WalError::TruncatedHeader);
    }
    if &image[..MAGIC.len()] != MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32::from_le_bytes(image[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }

    let mut records = Vec::new();
    let mut off = header;
    let mut prev_seq: Option<u64> = None;
    loop {
        if off == image.len() {
            return Ok(WalReplay {
                records,
                tail: WalTail::Clean,
            });
        }
        if image.len() - off < RECORD_HEADER {
            return Ok(WalReplay {
                records,
                tail: WalTail::Torn { offset: off },
            });
        }
        let len = u32::from_le_bytes(image[off..off + 4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(image[off + 4..off + 12].try_into().unwrap());
        let sum = u64::from_le_bytes(image[off + 12..off + 20].try_into().unwrap());
        if len > MAX_WAL_RECORD {
            return Ok(WalReplay {
                records,
                tail: WalTail::Corrupt {
                    offset: off,
                    reason: format!("implausible record length {len}"),
                },
            });
        }
        if image.len() - off - RECORD_HEADER < len {
            return Ok(WalReplay {
                records,
                tail: WalTail::Torn { offset: off },
            });
        }
        let payload = &image[off + RECORD_HEADER..off + RECORD_HEADER + len];
        if record_checksum(seq, payload) != sum {
            return Ok(WalReplay {
                records,
                tail: WalTail::Corrupt {
                    offset: off,
                    reason: format!("checksum mismatch in record seq {seq}"),
                },
            });
        }
        if let Some(prev) = prev_seq {
            if seq != prev + 1 {
                return Ok(WalReplay {
                    records,
                    tail: WalTail::Corrupt {
                        offset: off,
                        reason: format!("sequence break: {seq} after {prev}"),
                    },
                });
            }
        }
        prev_seq = Some(seq);
        records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        off += RECORD_HEADER + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_then_replay_roundtrip() {
        let wal = Wal::new();
        assert_eq!(wal.commit(b"frame-1"), 1);
        assert_eq!(wal.commit(b"frame-2 with more bytes"), 2);
        assert_eq!(wal.commit(b""), 3); // empty groups are legal
        let rep = replay(&wal.image()).unwrap();
        assert!(rep.tail.is_clean());
        assert_eq!(rep.records.len(), 3);
        assert_eq!(rep.records[0].payload, b"frame-1");
        assert_eq!(rep.records[1].seq, 2);
        assert_eq!(rep.records[2].payload, b"");
        let stats = wal.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.truncations, 0);
    }

    #[test]
    fn truncation_keeps_sequence_counting() {
        let wal = Wal::new();
        wal.commit(b"a");
        wal.commit(b"b");
        assert_eq!(wal.truncate_for_checkpoint(), 2);
        assert_eq!(wal.commit(b"c"), 3);
        let rep = replay(&wal.image()).unwrap();
        assert_eq!(rep.records.len(), 1, "checkpointed records are gone");
        assert_eq!(rep.records[0].seq, 3);
        assert!(rep.tail.is_clean());
        assert_eq!(wal.stats().truncations, 1);
    }

    #[test]
    fn empty_log_replays_clean() {
        let wal = Wal::new();
        let rep = replay(&wal.image()).unwrap();
        assert!(rep.records.is_empty());
        assert!(rep.tail.is_clean());
        assert_eq!(wal.truncate_for_checkpoint(), 0, "nothing committed yet");
    }

    #[test]
    fn every_truncation_point_stops_at_last_complete_record() {
        let wal = Wal::new();
        wal.commit(b"first record");
        wal.commit(b"second record");
        let image = wal.image();
        let header = 8;
        let second_start = image.len() - (RECORD_HEADER + b"second record".len());
        for cut in header..=image.len() {
            let rep = replay(&image[..cut]).unwrap();
            if cut == header {
                assert_eq!((rep.records.len(), rep.tail.is_clean()), (0, true));
            } else if cut < second_start {
                assert_eq!(rep.records.len(), 0, "cut {cut} inside record 1");
                assert_eq!(rep.tail, WalTail::Torn { offset: header });
            } else if cut == second_start {
                assert_eq!((rep.records.len(), rep.tail.is_clean()), (1, true));
            } else if cut < image.len() {
                assert_eq!(rep.records.len(), 1, "cut {cut} inside record 2");
                assert_eq!(
                    rep.tail,
                    WalTail::Torn {
                        offset: second_start
                    }
                );
            } else {
                assert_eq!((rep.records.len(), rep.tail.is_clean()), (2, true));
            }
        }
        // Header-only truncations are header errors, not tails.
        for cut in 0..header {
            assert!(matches!(
                replay(&image[..cut]),
                Err(WalError::TruncatedHeader)
            ));
        }
    }

    #[test]
    fn bit_flip_anywhere_in_record_is_corrupt_stop() {
        let wal = Wal::new();
        wal.commit(b"good");
        wal.commit(b"bad half");
        let image = wal.image();
        let second_start = image.len() - (RECORD_HEADER + b"bad half".len());
        for pos in second_start..image.len() {
            let mut copy = image.clone();
            copy[pos] ^= 0x01;
            let rep = replay(&copy).unwrap();
            assert_eq!(rep.records.len(), 1, "flip at {pos} must drop record 2");
            assert_eq!(rep.records[0].payload, b"good");
            assert!(!rep.tail.is_clean(), "flip at {pos} must mark the tail");
        }
    }

    #[test]
    fn sequence_break_stops_replay() {
        // Graft a valid seq-3 record directly after a seq-1 record: both
        // checksums pass, but replaying across the hole would apply
        // frames out of order, so the scan must stop at the graft.
        let a = Wal::new();
        a.commit(b"one");
        let mut image = a.image();
        let c = Wal::new();
        c.commit(b"skip");
        c.commit(b"skip");
        c.commit(b"tail");
        let c_img = c.image();
        let third_start = c_img.len() - (RECORD_HEADER + b"tail".len());
        image.extend_from_slice(&c_img[third_start..]); // seq 3 after seq 1
        let rep = replay(&image).unwrap();
        assert_eq!(rep.records.len(), 1);
        assert!(
            matches!(&rep.tail, WalTail::Corrupt { reason, .. } if reason.contains("sequence")),
            "{:?}",
            rep.tail
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        assert!(matches!(replay(b"NOPE\x01\0\0\0"), Err(WalError::BadMagic)));
        let mut img = Wal::new().image();
        img[4] = 9;
        assert!(matches!(
            replay(&img),
            Err(WalError::UnsupportedVersion(9))
        ));
    }
}
