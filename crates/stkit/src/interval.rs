//! Closed intervals with the paper's Definition 1 algebra.
//!
//! An interval `[l, h]` is *empty* iff `l > h`. Intersection, coverage
//! (`⊎`, the convex hull), overlap (`≬`) and precedes (`⪯`) follow the
//! definitions of the paper verbatim.

use crate::Scalar;

/// A closed interval `[lo, hi]` of scalars (paper Definition 1).
///
/// The interval is empty iff `lo > hi`; a single value `v` is `[v, v]`.
/// All operations treat empty intervals uniformly (any empty interval is
/// equal to any other empty interval).
///
/// ```
/// use stkit::Interval;
/// let j = Interval::new(0.0, 5.0);
/// let k = Interval::new(3.0, 8.0);
/// assert_eq!(j.intersect(&k), Interval::new(3.0, 5.0));
/// assert_eq!(j.cover(&k), Interval::new(0.0, 8.0));
/// assert!(j.overlaps(&k));
/// assert!(Interval::new(9.0, 1.0).is_empty()); // inverted ⇒ empty
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    /// Lower endpoint `l`.
    pub lo: Scalar,
    /// Upper endpoint `h`.
    pub hi: Scalar,
}

impl Interval {
    /// The canonical empty interval.
    pub const EMPTY: Interval = Interval {
        lo: Scalar::INFINITY,
        hi: Scalar::NEG_INFINITY,
    };

    /// The interval covering the whole real line.
    pub const ALL: Interval = Interval {
        lo: Scalar::NEG_INFINITY,
        hi: Scalar::INFINITY,
    };

    /// Create `[lo, hi]`. If `lo > hi` the result is empty.
    #[inline]
    pub fn new(lo: Scalar, hi: Scalar) -> Self {
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    #[inline]
    pub fn point(v: Scalar) -> Self {
        Interval { lo: v, hi: v }
    }

    /// True iff the interval contains no value (`lo > hi`, or a NaN bound).
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(lo <= hi)` is NaN-aware on purpose
    pub fn is_empty(&self) -> bool {
        !(self.lo <= self.hi)
    }

    /// Length `hi − lo`, or 0 for empty intervals.
    #[inline]
    pub fn length(&self) -> Scalar {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Intersection `J ∩ K = [max(J_l, K_l), min(J_h, K_h)]`.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Coverage `J ⊎ K = [min(J_l, K_l), max(J_h, K_h)]` — the convex hull.
    ///
    /// Empty operands are ignored (the hull of `∅` and `K` is `K`).
    #[inline]
    pub fn cover(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Overlap `J ≬ K ⇔ J ∩ K ≠ ∅` (closed intervals: touching counts).
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Precedes `I ⪯ J ⇔ ∀P ∈ I : P ≤ J_l`.
    ///
    /// An empty interval vacuously precedes everything.
    #[inline]
    pub fn precedes(&self, other: &Interval) -> bool {
        self.is_empty() || self.hi <= other.lo
    }

    /// True iff `v ∈ [lo, hi]`.
    #[inline]
    pub fn contains(&self, v: Scalar) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True iff `other ⊆ self`. Every interval contains the empty interval.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (!self.is_empty() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Clamp `v` into the interval. Panics in debug builds if empty.
    #[inline]
    pub fn clamp(&self, v: Scalar) -> Scalar {
        debug_assert!(!self.is_empty(), "clamp on empty interval");
        v.max(self.lo).min(self.hi)
    }

    /// Midpoint of the interval (undefined for empty intervals).
    #[inline]
    pub fn mid(&self) -> Scalar {
        0.5 * (self.lo + self.hi)
    }

    /// Grow the interval by `delta` on both sides (shrinks if negative).
    #[inline]
    pub fn inflate(&self, delta: Scalar) -> Interval {
        if self.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo - delta,
                hi: self.hi + delta,
            }
        }
    }

    /// Translate the interval by `delta`.
    #[inline]
    pub fn shift(&self, delta: Scalar) -> Interval {
        if self.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo + delta,
                hi: self.hi + delta,
            }
        }
    }
}

impl PartialEq for Interval {
    /// Two intervals are equal iff both are empty or both endpoints match.
    fn eq(&self, other: &Self) -> bool {
        (self.is_empty() && other.is_empty()) || (self.lo == other.lo && self.hi == other.hi)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::EMPTY
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_semantics() {
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::new(1.0, 0.0).is_empty());
        assert!(!Interval::point(3.0).is_empty());
        assert_eq!(Interval::new(2.0, 1.0), Interval::EMPTY);
        assert_eq!(Interval::EMPTY.length(), 0.0);
    }

    #[test]
    fn intersection_follows_definition_1() {
        let j = Interval::new(0.0, 5.0);
        let k = Interval::new(3.0, 8.0);
        assert_eq!(j.intersect(&k), Interval::new(3.0, 5.0));
        // Disjoint ⇒ empty.
        let l = Interval::new(6.0, 9.0);
        assert!(j.intersect(&l).is_empty());
        // Touching endpoints intersect in a single point (closed intervals).
        let m = Interval::new(5.0, 7.0);
        assert_eq!(j.intersect(&m), Interval::point(5.0));
    }

    #[test]
    fn coverage_is_convex_hull() {
        let j = Interval::new(0.0, 2.0);
        let k = Interval::new(5.0, 8.0);
        assert_eq!(j.cover(&k), Interval::new(0.0, 8.0));
        assert_eq!(Interval::EMPTY.cover(&k), k);
        assert_eq!(k.cover(&Interval::EMPTY), k);
    }

    #[test]
    fn overlap_predicate() {
        let j = Interval::new(0.0, 5.0);
        assert!(j.overlaps(&Interval::new(5.0, 9.0)));
        assert!(!j.overlaps(&Interval::new(5.1, 9.0)));
        assert!(!j.overlaps(&Interval::EMPTY));
    }

    #[test]
    fn precedes_predicate() {
        let i = Interval::new(0.0, 3.0);
        assert!(i.precedes(&Interval::new(3.0, 9.0)));
        assert!(!i.precedes(&Interval::new(2.9, 9.0)));
        assert!(Interval::EMPTY.precedes(&i));
    }

    #[test]
    fn containment() {
        let j = Interval::new(0.0, 5.0);
        assert!(j.contains(0.0) && j.contains(5.0) && j.contains(2.5));
        assert!(!j.contains(-0.001));
        assert!(j.contains_interval(&Interval::new(1.0, 4.0)));
        assert!(j.contains_interval(&j));
        assert!(j.contains_interval(&Interval::EMPTY));
        assert!(!j.contains_interval(&Interval::new(-1.0, 4.0)));
        assert!(!Interval::EMPTY.contains_interval(&j));
    }

    #[test]
    fn inflate_and_shift() {
        let j = Interval::new(1.0, 3.0);
        assert_eq!(j.inflate(0.5), Interval::new(0.5, 3.5));
        assert_eq!(j.shift(2.0), Interval::new(3.0, 5.0));
        assert!(Interval::EMPTY.inflate(10.0).is_empty());
        assert!(Interval::EMPTY.shift(10.0).is_empty());
        // Deflating past emptiness yields empty.
        assert!(j.inflate(-2.0).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Interval::new(1.0, 2.0)), "[1, 2]");
        assert_eq!(format!("{}", Interval::EMPTY), "∅");
    }
}
