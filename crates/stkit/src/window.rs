//! Linearly-moving query windows — the trapezoid segments of Fig. 3.
//!
//! Between two consecutive key snapshots `K^j` and `K^{j+1}` the query
//! window's lower and upper borders move linearly along every spatial
//! dimension (Fig. 1/3): at time `t ∈ [K^j.t, K^{j+1}.t]` the window is
//! `⟨[lo_i(t), hi_i(t)]⟩` with `lo_i, hi_i` linear in `t`. Eq. 3 computes
//! the overlap-time of such a segment with a bounding box by intersecting
//! the per-dimension, per-border solution intervals — the "four cases" of
//! Fig. 3(b) fall out of the sign of the border's slope, which
//! [`crate::LinearForm`] already handles.

use crate::{Interval, LinearForm, MotionSegment, Rect, Scalar};

/// A query window moving linearly over a time span: one trajectory segment
/// `S^j` of a predictive dynamic query.
///
/// ```
/// use stkit::{Interval, MovingWindow, Rect};
/// // A 2×2 window sliding right over t ∈ [0, 10].
/// let w = MovingWindow::between(
///     Interval::new(0.0, 10.0),
///     &Rect::from_corners([0.0, 0.0], [2.0, 2.0]),
///     &Rect::from_corners([10.0, 0.0], [12.0, 2.0]),
/// );
/// // When does it overlap a box at x ∈ [5, 6]? (Eq. 3 / Fig. 3.)
/// let hit = w.overlap_time_rect(
///     &Rect::from_corners([5.0, 0.0], [6.0, 2.0]),
///     &Interval::ALL,
/// );
/// assert_eq!(hit, Interval::new(3.0, 6.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MovingWindow<const D: usize> {
    /// The time span `[K^j.t, K^{j+1}.t]` this segment covers.
    pub span: Interval,
    /// Lower border per spatial dimension, linear in absolute time.
    pub lo: [LinearForm; D],
    /// Upper border per spatial dimension, linear in absolute time.
    pub hi: [LinearForm; D],
}

impl<const D: usize> MovingWindow<D> {
    /// Interpolate a moving window between two key snapshots: window `a`
    /// at time `span.lo` and window `b` at time `span.hi`.
    pub fn between(span: Interval, a: &Rect<D>, b: &Rect<D>) -> Self {
        debug_assert!(!span.is_empty(), "moving window needs a non-empty span");
        let mut lo = [LinearForm::constant(0.0); D];
        let mut hi = [LinearForm::constant(0.0); D];
        for i in 0..D {
            lo[i] = LinearForm::between(span.lo, a.extent(i).lo, span.hi, b.extent(i).lo);
            hi[i] = LinearForm::between(span.lo, a.extent(i).hi, span.hi, b.extent(i).hi);
        }
        MovingWindow { span, lo, hi }
    }

    /// A stationary window over a span (degenerate trapezoid).
    pub fn stationary(span: Interval, w: &Rect<D>) -> Self {
        Self::between(span, w, w)
    }

    /// The window rectangle at time `t` (extrapolates outside the span).
    pub fn window_at(&self, t: Scalar) -> Rect<D> {
        let mut dims = [Interval::EMPTY; D];
        for i in 0..D {
            dims[i] = Interval::new(self.lo[i].eval(t), self.hi[i].eval(t));
        }
        Rect::new(dims)
    }

    /// Spatial bounding rectangle of the window swept over its span — the
    /// trapezoid's bounding box, used to form conservative query regions.
    pub fn swept_bounds(&self) -> Rect<D> {
        let mut dims = [Interval::EMPTY; D];
        for i in 0..D {
            dims[i] = self.lo[i]
                .range_over(&self.span)
                .cover(&self.hi[i].range_over(&self.span));
        }
        Rect::new(dims)
    }

    /// Eq. 3: the time interval `T^j` during which this trapezoid segment
    /// overlaps the static box `⟨qtime, space⟩`.
    ///
    /// `T^j = ⋂_i (T_i^u ∩ T_i^l) ∩ span ∩ R.t̄` where `T_i^u` solves
    /// `hi_i(t) ≥ R.lo_i` and `T_i^l` solves `lo_i(t) ≤ R.hi_i` — the four
    /// cases of Fig. 3(b) are the four sign combinations of the border
    /// slopes, all handled uniformly by the linear-form solver.
    pub fn overlap_time_rect(&self, space: &Rect<D>, qtime: &Interval) -> Interval {
        let mut t = self.span.intersect(qtime);
        for i in 0..D {
            if t.is_empty() {
                return Interval::EMPTY;
            }
            let ext = space.extent(i);
            // Upper border of the window must reach above the box's bottom…
            t = t.intersect(&self.hi[i].solve_ge(ext.lo));
            // …and lower border must stay below the box's top.
            t = t.intersect(&self.lo[i].solve_le(ext.hi));
        }
        t
    }

    /// The time interval during which a linear motion segment is *inside*
    /// the moving window — the leaf-level exact test for dynamic queries:
    /// `lo_i(t) ≤ x_i(t) ≤ hi_i(t)` for all `i`, within both validities.
    pub fn overlap_time_segment(&self, seg: &MotionSegment<D>) -> Interval {
        let mut t = self.span.intersect(&seg.t);
        for i in 0..D {
            if t.is_empty() {
                return Interval::EMPTY;
            }
            let p = seg.coord_form(i);
            t = t.intersect(&p.solve_ge_form(&self.lo[i]));
            t = t.intersect(&p.solve_le_form(&self.hi[i]));
        }
        t
    }

    /// Inflate both borders outward by a constant `delta` — the SPDQ
    /// allowance for observer deviation `‖x_p(t) − x(t)‖ ≤ δ`.
    pub fn inflate(&self, delta: Scalar) -> Self {
        let mut out = *self;
        for i in 0..D {
            out.lo[i] = out.lo[i].offset(-delta);
            out.hi[i] = out.hi[i].offset(delta);
        }
        out
    }

    /// Inflate by a *time-varying* allowance `δ(t) = d.a + d.b·t` (SPDQ
    /// with growing uncertainty). The caller guarantees `δ(t) ≥ 0` over
    /// the span.
    pub fn inflate_linear(&self, d: &LinearForm) -> Self {
        let mut out = *self;
        for i in 0..D {
            out.lo[i] = out.lo[i].sub(d);
            out.hi[i] = out.hi[i].add(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(x: (f64, f64), y: (f64, f64)) -> Rect<2> {
        Rect::from_corners([x.0, y.0], [x.1, y.1])
    }

    #[test]
    fn window_interpolation() {
        // Window slides right from [0,2]×[0,2] to [10,12]×[0,2] over t∈[0,10].
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 2.0), (0.0, 2.0)),
            &win((10.0, 12.0), (0.0, 2.0)),
        );
        assert_eq!(w.window_at(0.0), win((0.0, 2.0), (0.0, 2.0)));
        assert_eq!(w.window_at(5.0), win((5.0, 7.0), (0.0, 2.0)));
        assert_eq!(w.window_at(10.0), win((10.0, 12.0), (0.0, 2.0)));
        assert_eq!(w.swept_bounds(), win((0.0, 12.0), (0.0, 2.0)));
    }

    #[test]
    fn overlap_time_with_static_box_case_upward() {
        // Fig. 3(b) Case 1: window moving up towards a box.
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 2.0), (0.0, 2.0)),
            &win((10.0, 12.0), (0.0, 2.0)),
        );
        // Box at x∈[5,6]: window's right edge (hi = 2 + t) reaches 5 at
        // t=3; window's left edge (lo = t) passes 6 at t=6.
        let b = win((5.0, 6.0), (0.0, 2.0));
        let t = w.overlap_time_rect(&b, &Interval::ALL);
        assert_eq!(t, Interval::new(3.0, 6.0));
    }

    #[test]
    fn overlap_time_respects_span_and_qtime() {
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 2.0), (0.0, 2.0)),
            &win((10.0, 12.0), (0.0, 2.0)),
        );
        let b = win((5.0, 6.0), (0.0, 2.0));
        assert_eq!(
            w.overlap_time_rect(&b, &Interval::new(4.0, 5.0)),
            Interval::new(4.0, 5.0)
        );
        assert!(w
            .overlap_time_rect(&b, &Interval::new(20.0, 30.0))
            .is_empty());
        // Box out of the y-range never overlaps.
        let far = win((5.0, 6.0), (10.0, 12.0));
        assert!(w.overlap_time_rect(&far, &Interval::ALL).is_empty());
    }

    #[test]
    fn stationary_window_overlap() {
        let w = MovingWindow::stationary(Interval::new(0.0, 5.0), &win((0.0, 4.0), (0.0, 4.0)));
        let b = win((2.0, 3.0), (2.0, 3.0));
        assert_eq!(w.overlap_time_rect(&b, &Interval::ALL), Interval::new(0.0, 5.0));
        let miss = win((5.0, 6.0), (0.0, 1.0));
        assert!(w.overlap_time_rect(&miss, &Interval::ALL).is_empty());
    }

    #[test]
    fn narrowing_window() {
        // Window shrinks from [0,10] to [4,6] in x over t∈[0,10] (altitude
        // change in the paper's fly-through example).
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 10.0), (0.0, 1.0)),
            &win((4.0, 6.0), (0.0, 1.0)),
        );
        // A box at x∈[0.0,1.0] is covered at t=0, left when lo(t)=0.4t > 1 ⇒ t>2.5.
        let b = win((0.0, 1.0), (0.0, 1.0));
        assert_eq!(
            w.overlap_time_rect(&b, &Interval::ALL),
            Interval::new(0.0, 2.5)
        );
    }

    #[test]
    fn overlap_time_with_moving_segment() {
        // Window fixed at [0,2]×[0,2]; object crosses it along x.
        let w = MovingWindow::stationary(Interval::new(0.0, 10.0), &win((0.0, 2.0), (0.0, 2.0)));
        let seg = MotionSegment::from_endpoints(
            Interval::new(0.0, 10.0),
            [-5.0, 1.0],
            [5.0, 1.0], // v_x = 1
        );
        // Inside while −5+t ∈ [0,2] ⇒ t ∈ [5,7].
        assert_eq!(w.overlap_time_segment(&seg), Interval::new(5.0, 7.0));
    }

    #[test]
    fn chasing_segment_never_caught() {
        // Window and object move right at the same speed, object ahead.
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 2.0), (0.0, 2.0)),
            &win((10.0, 12.0), (0.0, 2.0)),
        );
        let seg =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [5.0, 1.0], [15.0, 1.0]);
        assert!(w.overlap_time_segment(&seg).is_empty());
        // A slower object gets overtaken: x(t) = 5 + 0.5t meets hi = 2+t at
        // t=6 and leaves via lo = t at t=10.
        let slow =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [5.0, 1.0], [10.0, 1.0]);
        assert_eq!(w.overlap_time_segment(&slow), Interval::new(6.0, 10.0));
    }

    #[test]
    fn spdq_inflation() {
        let w = MovingWindow::stationary(Interval::new(0.0, 1.0), &win((2.0, 4.0), (2.0, 4.0)));
        let fat = w.inflate(1.0);
        assert_eq!(fat.window_at(0.5), win((1.0, 5.0), (1.0, 5.0)));
        // Time-varying inflation: δ(t) = t.
        let grow = w.inflate_linear(&LinearForm { a: 0.0, b: 1.0 });
        assert_eq!(grow.window_at(1.0), win((1.0, 5.0), (1.0, 5.0)));
        assert_eq!(grow.window_at(0.0), win((2.0, 4.0), (2.0, 4.0)));
    }
}
