//! Linear motion segments (§3.1, Eq. 1) and space-time boxes.
//!
//! The NSI representation of §3.2 indexes one bounding box per motion
//! update; at the leaf level the *actual* segment endpoints are kept so the
//! exact segment-vs-query test avoids false admissions. [`StBox`] is the
//! generic space-time box with `D` spatial axes and `T` temporal axes
//! (`T = 1` for the native layout, `T = 2` for the double-temporal-axes
//! layout of §4.2 Fig. 5(b)).

use crate::{Interval, LinearForm, Rect, Scalar};

/// A space-time box: `D` spatial extents plus `T` temporal extents.
///
/// `T = 1` is the native-space-indexing (NSI) layout where the single
/// temporal axis carries the motion's validity interval. `T = 2` is the
/// double-temporal-axes layout of §4.2: the motion's start and end times
/// are *independent* axes, so a motion is a point above the 45° line and
/// a snapshot query becomes a quadrant-shaped (half-open) box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StBox<const D: usize, const T: usize> {
    /// Spatial extents.
    pub space: Rect<D>,
    /// Temporal extents.
    pub time: Rect<T>,
}

impl<const D: usize, const T: usize> StBox<D, T> {
    /// The empty space-time box.
    pub const EMPTY: StBox<D, T> = StBox {
        space: Rect::EMPTY,
        time: Rect::EMPTY,
    };

    /// Build from spatial and temporal parts.
    #[inline]
    pub fn new(space: Rect<D>, time: Rect<T>) -> Self {
        StBox { space, time }
    }

    /// True iff any extent (spatial or temporal) is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.space.is_empty() || self.time.is_empty()
    }

    /// Componentwise intersection.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Self {
        StBox {
            space: self.space.intersect(&other.space),
            time: self.time.intersect(&other.time),
        }
    }

    /// Componentwise coverage (minimum bounding box); empty operands are
    /// ignored so this is usable to grow R-tree node boxes.
    #[inline]
    pub fn cover(&self, other: &Self) -> Self {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        StBox {
            space: self.space.cover(&other.space),
            time: self.time.cover(&other.time),
        }
    }

    /// Overlap predicate across all `D + T` axes.
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.space.overlaps(&other.space) && self.time.overlaps(&other.time)
    }

    /// True iff `other ⊆ self` on every axis.
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        if other.is_empty() {
            return true;
        }
        self.space.contains_rect(&other.space) && self.time.contains_rect(&other.time)
    }

    /// Volume over all `D + T` axes (0 for empty boxes).
    #[inline]
    pub fn volume(&self) -> Scalar {
        if self.is_empty() {
            0.0
        } else {
            self.space.volume() * self.time.volume()
        }
    }

    /// Margin (sum of all extent lengths) over all axes.
    #[inline]
    pub fn margin(&self) -> Scalar {
        if self.is_empty() {
            0.0
        } else {
            self.space.margin() + self.time.margin()
        }
    }

    /// Volume increase of `self ⊎ other` relative to `self`.
    #[inline]
    pub fn enlargement(&self, other: &Self) -> Scalar {
        self.cover(other).volume() - self.volume()
    }

    /// Lower corner across all axes, spatial axes first.
    pub fn lo(&self) -> Vec<Scalar> {
        let mut v = Vec::with_capacity(D + T);
        v.extend(self.space.dims.iter().map(|i| i.lo));
        v.extend(self.time.dims.iter().map(|i| i.lo));
        v
    }

    /// Upper corner across all axes, spatial axes first.
    pub fn hi(&self) -> Vec<Scalar> {
        let mut v = Vec::with_capacity(D + T);
        v.extend(self.space.dims.iter().map(|i| i.hi));
        v.extend(self.time.dims.iter().map(|i| i.hi));
        v
    }
}

impl<const D: usize, const T: usize> Default for StBox<D, T> {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// A linear motion segment in `D` spatial dimensions (Eq. 1):
/// `x(t) = x_l + v · (t − t_l)` for `t ∈ [t_l, t_h]`.
///
/// This is the unit the database indexes — one segment per motion update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionSegment<const D: usize> {
    /// Validity interval `[t_l, t_h]` of this motion update.
    pub t: Interval,
    /// Location at `t_l`.
    pub x0: [Scalar; D],
    /// Constant vector velocity.
    pub v: [Scalar; D],
}

impl<const D: usize> MotionSegment<D> {
    /// Build a segment from its initial location, velocity and validity.
    pub fn new(t: Interval, x0: [Scalar; D], v: [Scalar; D]) -> Self {
        debug_assert!(!t.is_empty(), "motion segment needs a validity interval");
        MotionSegment { t, x0, v }
    }

    /// Build from the two endpoints of the motion (positions at `t.lo` and
    /// `t.hi`). A zero-length validity yields a stationary segment.
    pub fn from_endpoints(t: Interval, a: [Scalar; D], b: [Scalar; D]) -> Self {
        let dt = t.length();
        let mut v = [0.0; D];
        if dt > 0.0 {
            for i in 0..D {
                v[i] = (b[i] - a[i]) / dt;
            }
        }
        MotionSegment { t, x0: a, v }
    }

    /// Location at time `t` per Eq. 1 (extrapolates outside validity; use
    /// [`Self::position_clamped`] when the validity bound matters).
    #[inline]
    pub fn position(&self, t: Scalar) -> [Scalar; D] {
        let dt = t - self.t.lo;
        let mut p = [0.0; D];
        for i in 0..D {
            p[i] = self.x0[i] + self.v[i] * dt;
        }
        p
    }

    /// Location at `t` clamped into the validity interval.
    #[inline]
    pub fn position_clamped(&self, t: Scalar) -> [Scalar; D] {
        self.position(self.t.clamp(t))
    }

    /// Location at the end of the validity interval.
    #[inline]
    pub fn end_position(&self) -> [Scalar; D] {
        self.position(self.t.hi)
    }

    /// The coordinate of the motion along dimension `i` as a linear form
    /// of absolute time.
    #[inline]
    pub fn coord_form(&self, i: usize) -> LinearForm {
        LinearForm::through(self.t.lo, self.x0[i], self.v[i])
    }

    /// Spatial bounding rectangle over the validity interval.
    pub fn spatial_bbox(&self) -> Rect<D> {
        let a = self.x0;
        let b = self.end_position();
        let mut dims = [Interval::EMPTY; D];
        for i in 0..D {
            dims[i] = Interval::new(a[i].min(b[i]), a[i].max(b[i]));
        }
        Rect::new(dims)
    }

    /// NSI bounding box (§3.2): spatial extents over validity × validity
    /// interval on the single temporal axis.
    pub fn nsi_box(&self) -> StBox<D, 1> {
        StBox::new(self.spatial_bbox(), Rect::new([self.t]))
    }

    /// Double-temporal-axes key (§4.2 Fig. 5(b)): spatial extents ×
    /// the point `(t_l, t_h)` on the (start, end) temporal plane.
    pub fn dta_box(&self) -> StBox<D, 2> {
        StBox::new(
            self.spatial_bbox(),
            Rect::new([Interval::point(self.t.lo), Interval::point(self.t.hi)]),
        )
    }

    /// Inflate the segment's *extent* by `delta` to account for location
    /// imprecision (§3.1): the box grows, the motion itself is unchanged.
    pub fn imprecise_nsi_box(&self, delta: Scalar) -> StBox<D, 1> {
        StBox::new(self.spatial_bbox().inflate(delta), Rect::new([self.t]))
    }

    /// Exact intersection test of the motion with a static space-time
    /// query (§3.2's leaf-level optimization): the time interval during
    /// which the object is inside `space`, restricted to the segment's
    /// validity and to `qtime`. Empty ⇒ the segment does not satisfy the
    /// query even if its bounding box does.
    pub fn intersect_query(&self, space: &Rect<D>, qtime: &Interval) -> Interval {
        let mut t = self.t.intersect(qtime);
        for i in 0..D {
            if t.is_empty() {
                return Interval::EMPTY;
            }
            t = t.intersect(&self.coord_form(i).solve_within(&space.extent(i)));
        }
        t
    }

    /// Squared distance between the object and a fixed point at time `t`
    /// (clamped to validity) — used by the kNN extension.
    pub fn dist_sq_at(&self, t: Scalar, p: &[Scalar; D]) -> Scalar {
        let x = self.position_clamped(t);
        let mut d2 = 0.0;
        for i in 0..D {
            let d = x[i] - p[i];
            d2 += d * d;
        }
        d2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, t1: f64, a: [f64; 2], b: [f64; 2]) -> MotionSegment<2> {
        MotionSegment::from_endpoints(Interval::new(t0, t1), a, b)
    }

    #[test]
    fn position_follows_eq_1() {
        let s = MotionSegment::new(Interval::new(1.0, 3.0), [0.0, 10.0], [2.0, -1.0]);
        assert_eq!(s.position(1.0), [0.0, 10.0]);
        assert_eq!(s.position(2.0), [2.0, 9.0]);
        assert_eq!(s.end_position(), [4.0, 8.0]);
        assert_eq!(s.position_clamped(100.0), [4.0, 8.0]);
        assert_eq!(s.position_clamped(-100.0), [0.0, 10.0]);
    }

    #[test]
    fn endpoints_roundtrip() {
        let s = seg(0.0, 4.0, [1.0, 1.0], [5.0, -3.0]);
        assert_eq!(s.v, [1.0, -1.0]);
        assert_eq!(s.end_position(), [5.0, -3.0]);
        // Zero-duration segment is stationary.
        let z = seg(2.0, 2.0, [1.0, 1.0], [9.0, 9.0]);
        assert_eq!(z.v, [0.0, 0.0]);
    }

    #[test]
    fn bbox_covers_trajectory() {
        let s = seg(0.0, 2.0, [0.0, 5.0], [4.0, 1.0]);
        let bb = s.spatial_bbox();
        assert_eq!(bb.extent(0), Interval::new(0.0, 4.0));
        assert_eq!(bb.extent(1), Interval::new(1.0, 5.0));
        let nsi = s.nsi_box();
        assert_eq!(nsi.time.extent(0), Interval::new(0.0, 2.0));
    }

    #[test]
    fn dta_box_is_point_on_temporal_plane() {
        let s = seg(1.0, 3.0, [0.0, 0.0], [1.0, 1.0]);
        let d = s.dta_box();
        assert_eq!(d.time.extent(0), Interval::point(1.0));
        assert_eq!(d.time.extent(1), Interval::point(3.0));
    }

    #[test]
    fn exact_intersection_beats_bbox() {
        // Segment runs along the diagonal; query box sits in the corner the
        // bbox covers but the segment never enters.
        let s = seg(0.0, 10.0, [0.0, 0.0], [10.0, 10.0]);
        let corner = Rect::from_corners([8.0, 0.0], [10.0, 2.0]);
        let all_time = Interval::new(0.0, 10.0);
        assert!(s.nsi_box().space.overlaps(&corner)); // bbox false positive
        assert!(s.intersect_query(&corner, &all_time).is_empty()); // exact says no

        // A box on the diagonal is hit, during the right time window.
        let on_path = Rect::from_corners([4.0, 4.0], [6.0, 6.0]);
        let hit = s.intersect_query(&on_path, &all_time);
        assert_eq!(hit, Interval::new(4.0, 6.0));

        // Temporal restriction clips the interval.
        let hit2 = s.intersect_query(&on_path, &Interval::new(5.0, 20.0));
        assert_eq!(hit2, Interval::new(5.0, 6.0));
    }

    #[test]
    fn stationary_segment_intersection() {
        let s = seg(0.0, 5.0, [3.0, 3.0], [3.0, 3.0]);
        let q = Rect::from_corners([2.0, 2.0], [4.0, 4.0]);
        assert_eq!(
            s.intersect_query(&q, &Interval::new(1.0, 2.0)),
            Interval::new(1.0, 2.0)
        );
        let miss = Rect::from_corners([4.5, 4.5], [6.0, 6.0]);
        assert!(s.intersect_query(&miss, &Interval::ALL).is_empty());
    }

    #[test]
    fn stbox_algebra() {
        let a: StBox<2, 1> = StBox::new(
            Rect::from_corners([0.0, 0.0], [4.0, 4.0]),
            Rect::new([Interval::new(0.0, 2.0)]),
        );
        let b: StBox<2, 1> = StBox::new(
            Rect::from_corners([2.0, 2.0], [6.0, 6.0]),
            Rect::new([Interval::new(1.0, 3.0)]),
        );
        assert!(a.overlaps(&b));
        let c = a.cover(&b);
        assert_eq!(c.space, Rect::from_corners([0.0, 0.0], [6.0, 6.0]));
        assert_eq!(c.time.extent(0), Interval::new(0.0, 3.0));
        assert_eq!(a.volume(), 32.0); // 4×4×2
        assert_eq!(a.margin(), 10.0); // 4+4+2
        assert!(c.contains(&a) && c.contains(&b));
        // Disjoint in time ⇒ no overlap even with identical space.
        let d: StBox<2, 1> = StBox::new(a.space, Rect::new([Interval::new(5.0, 6.0)]));
        assert!(!a.overlaps(&d));
        assert_eq!(a.enlargement(&b), b.cover(&a).volume() - 32.0);
    }

    #[test]
    fn stbox_corners() {
        let a: StBox<2, 1> = StBox::new(
            Rect::from_corners([0.0, 1.0], [4.0, 5.0]),
            Rect::new([Interval::new(7.0, 9.0)]),
        );
        assert_eq!(a.lo(), vec![0.0, 1.0, 7.0]);
        assert_eq!(a.hi(), vec![4.0, 5.0, 9.0]);
    }

    #[test]
    fn imprecision_inflates_box_only() {
        let s = seg(0.0, 2.0, [1.0, 1.0], [3.0, 3.0]);
        let precise = s.nsi_box();
        let fuzzy = s.imprecise_nsi_box(0.5);
        assert!(fuzzy.space.contains_rect(&precise.space));
        assert_eq!(fuzzy.time, precise.time);
    }

    #[test]
    fn dist_sq() {
        let s = seg(0.0, 2.0, [0.0, 0.0], [2.0, 0.0]);
        assert_eq!(s.dist_sq_at(1.0, &[1.0, 3.0]), 9.0);
        // Clamped beyond validity.
        assert_eq!(s.dist_sq_at(5.0, &[2.0, 4.0]), 16.0);
    }
}
