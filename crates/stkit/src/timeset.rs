//! Sorted unions of disjoint time intervals.
//!
//! Eq. 3 of the paper computes, for a bounding box `R` and a trajectory of
//! key snapshots, one overlap interval `T^j` per trajectory segment and
//! then combines them. Because the query window can enter, leave and
//! re-enter a box, the exact overlap-time of `R` with the whole trajectory
//! is a *set* of intervals, not one interval. `TimeSet` maintains such sets
//! in normalized (sorted, merged) form.

use crate::Interval;

/// A normalized union of disjoint, sorted, non-empty intervals.
///
/// Invariants (enforced by construction):
/// * no member is empty,
/// * members are sorted by `lo`,
/// * consecutive members do not overlap and do not touch
///   (`prev.hi < next.lo`); touching intervals are merged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSet {
    ivs: Vec<Interval>,
}

impl TimeSet {
    /// The empty set.
    pub fn empty() -> Self {
        TimeSet { ivs: Vec::new() }
    }

    /// A set holding a single interval (empty input ⇒ empty set).
    pub fn from_interval(iv: Interval) -> Self {
        let mut s = TimeSet::empty();
        s.insert(iv);
        s
    }

    /// Build from arbitrary intervals, normalizing.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut s = TimeSet::empty();
        for iv in ivs {
            s.insert(iv);
        }
        s
    }

    /// True iff no time instant is covered.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// The member intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Earliest covered instant, or `None` if empty.
    pub fn start(&self) -> Option<f64> {
        self.ivs.first().map(|iv| iv.lo)
    }

    /// Latest covered instant, or `None` if empty.
    pub fn end(&self) -> Option<f64> {
        self.ivs.last().map(|iv| iv.hi)
    }

    /// Convex hull of the whole set (the paper's coverage `⊎` of all `T^j`).
    pub fn hull(&self) -> Interval {
        match (self.start(), self.end()) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::EMPTY,
        }
    }

    /// Total covered duration.
    pub fn measure(&self) -> f64 {
        self.ivs.iter().map(Interval::length).sum()
    }

    /// True iff instant `t` is covered.
    pub fn contains(&self, t: f64) -> bool {
        // Binary search over sorted starts.
        self.ivs.binary_search_by(|iv| {
            if iv.hi < t {
                std::cmp::Ordering::Less
            } else if iv.lo > t {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }).is_ok()
    }

    /// Insert an interval, merging with any members it overlaps or touches.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the range of existing members that merge with `iv`
        // (overlap or touch). Members are sorted and disjoint.
        let lo_idx = self.ivs.partition_point(|m| m.hi < iv.lo);
        let hi_idx = self.ivs.partition_point(|m| m.lo <= iv.hi);
        if lo_idx == hi_idx {
            self.ivs.insert(lo_idx, iv);
        } else {
            let merged = Interval::new(
                iv.lo.min(self.ivs[lo_idx].lo),
                iv.hi.max(self.ivs[hi_idx - 1].hi),
            );
            self.ivs.splice(lo_idx..hi_idx, std::iter::once(merged));
        }
    }

    /// Union of two sets.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        let mut out = self.clone();
        for iv in &other.ivs {
            out.insert(*iv);
        }
        out
    }

    /// Intersection with a single interval.
    pub fn intersect_interval(&self, iv: &Interval) -> TimeSet {
        let mut out = TimeSet::empty();
        for m in &self.ivs {
            out.insert(m.intersect(iv));
        }
        out
    }

    /// Intersection of two sets (linear merge).
    pub fn intersect(&self, other: &TimeSet) -> TimeSet {
        let mut out = TimeSet::empty();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let x = self.ivs[i].intersect(&other.ivs[j]);
            out.insert(x);
            if self.ivs[i].hi <= other.ivs[j].hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// First covered instant at or after `t`, or `None`.
    pub fn next_instant(&self, t: f64) -> Option<f64> {
        for iv in &self.ivs {
            if iv.hi >= t {
                return Some(iv.lo.max(t));
            }
        }
        None
    }
}

impl std::fmt::Display for TimeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn insert_disjoint_keeps_sorted() {
        let s = TimeSet::from_intervals([iv(5.0, 6.0), iv(1.0, 2.0), iv(8.0, 9.0)]);
        assert_eq!(s.intervals(), &[iv(1.0, 2.0), iv(5.0, 6.0), iv(8.0, 9.0)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_merges_overlapping_and_touching() {
        let mut s = TimeSet::from_intervals([iv(1.0, 2.0), iv(4.0, 5.0)]);
        s.insert(iv(2.0, 4.0)); // touches both ⇒ one interval
        assert_eq!(s.intervals(), &[iv(1.0, 5.0)]);
        s.insert(iv(0.0, 10.0));
        assert_eq!(s.intervals(), &[iv(0.0, 10.0)]);
    }

    #[test]
    fn empty_inserts_ignored() {
        let mut s = TimeSet::empty();
        s.insert(Interval::EMPTY);
        s.insert(iv(3.0, 1.0));
        assert!(s.is_empty());
        assert_eq!(s.hull(), Interval::EMPTY);
    }

    #[test]
    fn hull_and_measure() {
        let s = TimeSet::from_intervals([iv(0.0, 1.0), iv(5.0, 7.0)]);
        assert_eq!(s.hull(), iv(0.0, 7.0));
        assert_eq!(s.measure(), 3.0);
        assert_eq!(s.start(), Some(0.0));
        assert_eq!(s.end(), Some(7.0));
    }

    #[test]
    fn contains_and_next_instant() {
        let s = TimeSet::from_intervals([iv(0.0, 1.0), iv(5.0, 7.0)]);
        assert!(s.contains(0.5));
        assert!(s.contains(5.0));
        assert!(!s.contains(3.0));
        assert_eq!(s.next_instant(-1.0), Some(0.0));
        assert_eq!(s.next_instant(0.5), Some(0.5));
        assert_eq!(s.next_instant(2.0), Some(5.0));
        assert_eq!(s.next_instant(7.1), None);
    }

    #[test]
    fn set_ops() {
        let a = TimeSet::from_intervals([iv(0.0, 2.0), iv(4.0, 6.0)]);
        let b = TimeSet::from_intervals([iv(1.0, 5.0)]);
        assert_eq!(a.union(&b).intervals(), &[iv(0.0, 6.0)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(1.0, 2.0), iv(4.0, 5.0)]);
        assert_eq!(
            a.intersect_interval(&iv(1.5, 4.5)).intervals(),
            &[iv(1.5, 2.0), iv(4.0, 4.5)]
        );
    }

    #[test]
    fn intersect_with_empty() {
        let a = TimeSet::from_intervals([iv(0.0, 2.0)]);
        assert!(a.intersect(&TimeSet::empty()).is_empty());
        assert!(TimeSet::empty().intersect(&a).is_empty());
    }
}
