//! Scalar linear functions of time and exact inequality solving.
//!
//! Every overlap-time computation in the paper (Eq. 3, the "four cases" of
//! Fig. 3, and leaf-level segment intersection) reduces to intersecting
//! solution sets of inequalities of the form `a + b·t ≤ c` or `a + b·t ≥ c`
//! over `t`. Solving them exactly once here keeps the higher-level geometry
//! free of case analysis.

use crate::{Interval, Scalar};

/// A linear function of time: `value(t) = a + b·t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearForm {
    /// Constant coefficient.
    pub a: Scalar,
    /// Slope (rate of change per unit time).
    pub b: Scalar,
}

impl LinearForm {
    /// The constant function `value(t) = c`.
    #[inline]
    pub fn constant(c: Scalar) -> Self {
        LinearForm { a: c, b: 0.0 }
    }

    /// Build from a point on the line: value `v0` at time `t0`, slope `b`.
    #[inline]
    pub fn through(t0: Scalar, v0: Scalar, b: Scalar) -> Self {
        LinearForm { a: v0 - b * t0, b }
    }

    /// Build the line through `(t0, v0)` and `(t1, v1)`.
    ///
    /// If `t0 == t1` the result is the constant `v0` (the degenerate
    /// trajectory segment of two coincident key snapshots).
    #[inline]
    pub fn between(t0: Scalar, v0: Scalar, t1: Scalar, v1: Scalar) -> Self {
        if t1 == t0 {
            LinearForm::constant(v0)
        } else {
            let b = (v1 - v0) / (t1 - t0);
            LinearForm::through(t0, v0, b)
        }
    }

    /// Evaluate at time `t`.
    #[inline]
    pub fn eval(&self, t: Scalar) -> Scalar {
        self.a + self.b * t
    }

    /// Sum of two linear forms.
    #[inline]
    pub fn add(&self, other: &LinearForm) -> LinearForm {
        LinearForm {
            a: self.a + other.a,
            b: self.b + other.b,
        }
    }

    /// Difference `self − other`.
    #[inline]
    pub fn sub(&self, other: &LinearForm) -> LinearForm {
        LinearForm {
            a: self.a - other.a,
            b: self.b - other.b,
        }
    }

    /// Shift the whole line by a constant offset.
    #[inline]
    pub fn offset(&self, delta: Scalar) -> LinearForm {
        LinearForm {
            a: self.a + delta,
            b: self.b,
        }
    }

    /// Solution set of `a + b·t ≤ c` as a (possibly unbounded) interval.
    #[inline]
    pub fn solve_le(&self, c: Scalar) -> Interval {
        if self.b > 0.0 {
            Interval::new(Scalar::NEG_INFINITY, (c - self.a) / self.b)
        } else if self.b < 0.0 {
            Interval::new((c - self.a) / self.b, Scalar::INFINITY)
        } else if self.a <= c {
            Interval::ALL
        } else {
            Interval::EMPTY
        }
    }

    /// Solution set of `a + b·t ≥ c` as a (possibly unbounded) interval.
    #[inline]
    pub fn solve_ge(&self, c: Scalar) -> Interval {
        if self.b > 0.0 {
            Interval::new((c - self.a) / self.b, Scalar::INFINITY)
        } else if self.b < 0.0 {
            Interval::new(Scalar::NEG_INFINITY, (c - self.a) / self.b)
        } else if self.a >= c {
            Interval::ALL
        } else {
            Interval::EMPTY
        }
    }

    /// Solution set of `lo ≤ a + b·t ≤ hi`.
    #[inline]
    pub fn solve_within(&self, range: &Interval) -> Interval {
        if range.is_empty() {
            return Interval::EMPTY;
        }
        self.solve_ge(range.lo).intersect(&self.solve_le(range.hi))
    }

    /// Times at which `self(t) ≤ other(t)`.
    #[inline]
    pub fn solve_le_form(&self, other: &LinearForm) -> Interval {
        self.sub(other).solve_le(0.0)
    }

    /// Times at which `self(t) ≥ other(t)`.
    #[inline]
    pub fn solve_ge_form(&self, other: &LinearForm) -> Interval {
        self.sub(other).solve_ge(0.0)
    }

    /// Range of values taken over the time interval `span`.
    #[inline]
    pub fn range_over(&self, span: &Interval) -> Interval {
        if span.is_empty() {
            return Interval::EMPTY;
        }
        let v0 = self.eval(span.lo);
        let v1 = self.eval(span.hi);
        Interval::new(v0.min(v1), v0.max(v1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let f = LinearForm::through(2.0, 10.0, 3.0);
        assert_eq!(f.eval(2.0), 10.0);
        assert_eq!(f.eval(4.0), 16.0);
        let g = LinearForm::between(0.0, 0.0, 2.0, 4.0);
        assert_eq!(g.b, 2.0);
        assert_eq!(g.eval(1.5), 3.0);
        // Degenerate: coincident times fall back to a constant.
        let h = LinearForm::between(1.0, 7.0, 1.0, 9.0);
        assert_eq!(h, LinearForm::constant(7.0));
    }

    #[test]
    fn solve_le_positive_slope() {
        let f = LinearForm { a: 0.0, b: 2.0 }; // 2t ≤ 6 ⇔ t ≤ 3
        let s = f.solve_le(6.0);
        assert_eq!(s.hi, 3.0);
        assert!(s.lo.is_infinite() && s.lo < 0.0);
    }

    #[test]
    fn solve_le_negative_slope() {
        let f = LinearForm { a: 10.0, b: -2.0 }; // 10−2t ≤ 6 ⇔ t ≥ 2
        let s = f.solve_le(6.0);
        assert_eq!(s.lo, 2.0);
        assert!(s.hi.is_infinite());
    }

    #[test]
    fn solve_constant_cases() {
        let f = LinearForm::constant(5.0);
        assert_eq!(f.solve_le(6.0), Interval::ALL);
        assert!(f.solve_le(4.0).is_empty());
        assert_eq!(f.solve_ge(4.0), Interval::ALL);
        assert!(f.solve_ge(6.0).is_empty());
    }

    #[test]
    fn solve_within_band() {
        // position p(t) = 1 + t must be within [3, 5] ⇔ t ∈ [2, 4]
        let f = LinearForm { a: 1.0, b: 1.0 };
        let s = f.solve_within(&Interval::new(3.0, 5.0));
        assert_eq!(s, Interval::new(2.0, 4.0));
        assert!(f.solve_within(&Interval::EMPTY).is_empty());
    }

    #[test]
    fn form_vs_form() {
        // f(t)=t, g(t)=4−t ⇒ f ≤ g for t ≤ 2
        let f = LinearForm { a: 0.0, b: 1.0 };
        let g = LinearForm { a: 4.0, b: -1.0 };
        assert_eq!(f.solve_le_form(&g).hi, 2.0);
        assert_eq!(f.solve_ge_form(&g).lo, 2.0);
    }

    #[test]
    fn range_over_span() {
        let f = LinearForm { a: 0.0, b: -1.0 };
        assert_eq!(
            f.range_over(&Interval::new(1.0, 3.0)),
            Interval::new(-3.0, -1.0)
        );
        assert!(f.range_over(&Interval::EMPTY).is_empty());
    }

    #[test]
    fn add_sub_offset() {
        let f = LinearForm { a: 1.0, b: 2.0 };
        let g = LinearForm { a: 3.0, b: -1.0 };
        assert_eq!(f.add(&g), LinearForm { a: 4.0, b: 1.0 });
        assert_eq!(f.sub(&g), LinearForm { a: -2.0, b: 3.0 });
        assert_eq!(f.offset(5.0), LinearForm { a: 6.0, b: 2.0 });
    }
}
