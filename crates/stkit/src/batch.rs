//! Struct-of-arrays batched overlap-time kernels (Eq. 3 / Fig. 3, many
//! entries per pass).
//!
//! The query hot loop evaluates one trapezoid segment (a
//! [`MovingWindow`]) against *every* entry of an R-tree node page — up to
//! 145 boxes or 127 motion segments per visit. Done one entry at a time
//! through [`MovingWindow::overlap_time_rect`] the four slope-sign cases
//! of Fig. 3(b) branch per entry per dimension, which defeats
//! vectorization. These kernels restructure the computation:
//!
//! * Entries are staged in **struct-of-arrays** layout (one contiguous
//!   lane array per coordinate), filled straight off a node page.
//! * For the box kernel the window borders are *shared* across a node's
//!   entries, so the slope-sign branch hoists **outside** the lane loop;
//!   the inner loop is a pure `(c − a)/b` division plus a `min`/`max` —
//!   exactly the shape LLVM autovectorizes.
//! * For the segment kernel the difference form varies per entry, so the
//!   case selection stays in the lane but as branch-free *selects* over
//!   f64 comparisons rather than control flow.
//! * The scalar path's early-exit on an empty accumulator is dropped:
//!   emptiness is monotone under intersection (`lo` only rises, `hi`
//!   only falls), so a lane that goes empty stays empty and the extra
//!   arithmetic is harmless.
//!
//! **Bit-identity.** For non-NaN operands every lane performs the same
//! `f64` operations, in the same order, with the same operand order as
//! the scalar path, so non-empty results are bit-identical
//! (`to_bits`-equal) to [`MovingWindow::overlap_time_rect`] /
//! [`MovingWindow::overlap_time_segment`]; empty results may differ in
//! representation (the scalar path can return a non-canonical inverted
//! interval where the batch returns another), which [`Interval`]'s
//! `PartialEq` already treats as equal. Property tests in
//! `tests/batch_prop.rs` pin both guarantees.

use crate::{Interval, LinearForm, MotionSegment, MovingWindow, Rect};

/// Apply `form.solve_ge(c[j])` to every lane's accumulator: the
/// slope-sign case is resolved once, outside the lane loop.
#[inline]
fn apply_ge(form: &LinearForm, c: &[f64], out_lo: &mut [f64], out_hi: &mut [f64]) {
    let (a, b) = (form.a, form.b);
    if b > 0.0 {
        // Solution [ (c−a)/b, +∞ ): only the lower end tightens.
        for j in 0..c.len() {
            out_lo[j] = out_lo[j].max((c[j] - a) / b);
        }
    } else if b < 0.0 {
        // Solution ( −∞, (c−a)/b ]: only the upper end tightens.
        for j in 0..c.len() {
            out_hi[j] = out_hi[j].min((c[j] - a) / b);
        }
    } else {
        // Constant border: ALL (no-op) or EMPTY per lane.
        for j in 0..c.len() {
            let keep = a >= c[j];
            out_lo[j] = if keep { out_lo[j] } else { f64::INFINITY };
            out_hi[j] = if keep { out_hi[j] } else { f64::NEG_INFINITY };
        }
    }
}

/// Apply `form.solve_le(c[j])` to every lane's accumulator.
#[inline]
fn apply_le(form: &LinearForm, c: &[f64], out_lo: &mut [f64], out_hi: &mut [f64]) {
    let (a, b) = (form.a, form.b);
    if b > 0.0 {
        for j in 0..c.len() {
            out_hi[j] = out_hi[j].min((c[j] - a) / b);
        }
    } else if b < 0.0 {
        for j in 0..c.len() {
            out_lo[j] = out_lo[j].max((c[j] - a) / b);
        }
    } else {
        for j in 0..c.len() {
            let keep = a <= c[j];
            out_lo[j] = if keep { out_lo[j] } else { f64::INFINITY };
            out_hi[j] = if keep { out_hi[j] } else { f64::NEG_INFINITY };
        }
    }
}

/// Branch-free lane intersection with the solution of
/// `d_a + d_b·t ≥ 0` — the per-lane form of [`LinearForm::solve_ge`]
/// at `c = 0`, as selects over comparisons. Matches the scalar solver
/// for every input, NaN included. Public so sibling crates (the
/// TPR-tree's time-parameterized boxes) can build their own SoA kernels
/// on the same per-lane primitive.
#[inline(always)]
// NaN `d_a` must select EMPTY exactly like the scalar solver's failed
// `a >= c` branch; `partial_cmp` would obscure that the negation is the
// point.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn lane_ge0(d_a: f64, d_b: f64, out_lo: f64, out_hi: f64) -> (f64, f64) {
    // `0.0 - d_a` (not `-d_a`) keeps the zero-sign bits of the scalar
    // solver's `(c - a)/b` with `c = 0.0`.
    let tdiv = (0.0 - d_a) / d_b;
    let pos = d_b > 0.0;
    let neg = d_b < 0.0;
    let empty = !pos && !neg && !(d_a >= 0.0);
    let s_lo = if pos {
        tdiv
    } else if empty {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    let s_hi = if neg {
        tdiv
    } else if empty {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    };
    (out_lo.max(s_lo), out_hi.min(s_hi))
}

/// Lane intersection with the solution of `d_a + d_b·t ≤ 0` — the
/// per-lane form of [`LinearForm::solve_le`] at `c = 0`.
#[inline(always)]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must select EMPTY; see lane_ge0
pub fn lane_le0(d_a: f64, d_b: f64, out_lo: f64, out_hi: f64) -> (f64, f64) {
    let tdiv = (0.0 - d_a) / d_b;
    let pos = d_b > 0.0;
    let neg = d_b < 0.0;
    let empty = !pos && !neg && !(d_a <= 0.0);
    let s_lo = if neg {
        tdiv
    } else if empty {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    let s_hi = if pos {
        tdiv
    } else if empty {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    };
    (out_lo.max(s_lo), out_hi.min(s_hi))
}

/// SoA staging area for static space-time boxes (internal-node entries):
/// evaluate [`MovingWindow::overlap_time_rect`] for a whole node page in
/// one pass per window segment.
#[derive(Debug)]
pub struct RectBatch<const D: usize> {
    qt_lo: Vec<f64>,
    qt_hi: Vec<f64>,
    ext_lo: [Vec<f64>; D],
    ext_hi: [Vec<f64>; D],
    out_lo: Vec<f64>,
    out_hi: Vec<f64>,
}

impl<const D: usize> Default for RectBatch<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> RectBatch<D> {
    /// Fresh, empty batch (reusable across node visits).
    pub fn new() -> Self {
        RectBatch {
            qt_lo: Vec::new(),
            qt_hi: Vec::new(),
            ext_lo: std::array::from_fn(|_| Vec::new()),
            ext_hi: std::array::from_fn(|_| Vec::new()),
            out_lo: Vec::new(),
            out_hi: Vec::new(),
        }
    }

    /// Remove all staged entries, keeping capacity.
    pub fn clear(&mut self) {
        self.qt_lo.clear();
        self.qt_hi.clear();
        for i in 0..D {
            self.ext_lo[i].clear();
            self.ext_hi[i].clear();
        }
    }

    /// Number of staged entries.
    pub fn len(&self) -> usize {
        self.qt_lo.len()
    }

    /// True iff no entries are staged.
    pub fn is_empty(&self) -> bool {
        self.qt_lo.is_empty()
    }

    /// Stage one box `⟨space, qtime⟩`.
    pub fn push(&mut self, space: &Rect<D>, qtime: &Interval) {
        self.qt_lo.push(qtime.lo);
        self.qt_hi.push(qtime.hi);
        for i in 0..D {
            let e = space.extent(i);
            self.ext_lo[i].push(e.lo);
            self.ext_hi[i].push(e.hi);
        }
    }

    /// Evaluate `w.overlap_time_rect(space_j, qtime_j)` for every staged
    /// entry `j`; read results back with [`Self::result`].
    pub fn solve(&mut self, w: &MovingWindow<D>) {
        let n = self.len();
        self.out_lo.clear();
        self.out_hi.clear();
        // t = span ∩ qtime, lane-wise.
        self.out_lo.extend(self.qt_lo.iter().map(|&q| w.span.lo.max(q)));
        self.out_hi.extend(self.qt_hi.iter().map(|&q| w.span.hi.min(q)));
        for i in 0..D {
            debug_assert_eq!(self.ext_lo[i].len(), n);
            // Upper border of the window must reach above the box's
            // bottom, lower border must stay below the box's top — same
            // two constraints, same order, as the scalar path.
            apply_ge(&w.hi[i], &self.ext_lo[i], &mut self.out_lo, &mut self.out_hi);
            apply_le(&w.lo[i], &self.ext_hi[i], &mut self.out_lo, &mut self.out_hi);
        }
    }

    /// Overlap-time of entry `j` from the last [`Self::solve`] call.
    #[inline]
    pub fn result(&self, j: usize) -> Interval {
        Interval::new(self.out_lo[j], self.out_hi[j])
    }
}

/// SoA staging area for motion segments (leaf records): evaluate
/// [`MovingWindow::overlap_time_segment`] for a whole leaf page in one
/// pass per window segment.
#[derive(Debug)]
pub struct SegmentBatch<const D: usize> {
    st_lo: Vec<f64>,
    st_hi: Vec<f64>,
    /// Per-dimension coordinate forms `x_i(t) = pa + pb·t`.
    pa: [Vec<f64>; D],
    pb: [Vec<f64>; D],
    out_lo: Vec<f64>,
    out_hi: Vec<f64>,
}

impl<const D: usize> Default for SegmentBatch<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> SegmentBatch<D> {
    /// Fresh, empty batch (reusable across node visits).
    pub fn new() -> Self {
        SegmentBatch {
            st_lo: Vec::new(),
            st_hi: Vec::new(),
            pa: std::array::from_fn(|_| Vec::new()),
            pb: std::array::from_fn(|_| Vec::new()),
            out_lo: Vec::new(),
            out_hi: Vec::new(),
        }
    }

    /// Remove all staged segments, keeping capacity.
    pub fn clear(&mut self) {
        self.st_lo.clear();
        self.st_hi.clear();
        for i in 0..D {
            self.pa[i].clear();
            self.pb[i].clear();
        }
    }

    /// Number of staged segments.
    pub fn len(&self) -> usize {
        self.st_lo.len()
    }

    /// True iff no segments are staged.
    pub fn is_empty(&self) -> bool {
        self.st_lo.is_empty()
    }

    /// Stage one motion segment.
    pub fn push(&mut self, seg: &MotionSegment<D>) {
        self.st_lo.push(seg.t.lo);
        self.st_hi.push(seg.t.hi);
        for i in 0..D {
            let p = seg.coord_form(i);
            self.pa[i].push(p.a);
            self.pb[i].push(p.b);
        }
    }

    /// Evaluate `w.overlap_time_segment(seg_j)` for every staged segment
    /// `j`; read results back with [`Self::result`].
    pub fn solve(&mut self, w: &MovingWindow<D>) {
        let n = self.len();
        self.out_lo.clear();
        self.out_hi.clear();
        // t = span ∩ seg.t, lane-wise.
        self.out_lo.extend(self.st_lo.iter().map(|&s| w.span.lo.max(s)));
        self.out_hi.extend(self.st_hi.iter().map(|&s| w.span.hi.min(s)));
        for i in 0..D {
            debug_assert_eq!(self.pa[i].len(), n);
            let (bl, bh) = (w.lo[i], w.hi[i]);
            let (pa, pb) = (&self.pa[i], &self.pb[i]);
            for j in 0..n {
                // p ≥ lo border: (p − lo) solves ≥ 0.
                let (lo1, hi1) = lane_ge0(
                    pa[j] - bl.a,
                    pb[j] - bl.b,
                    self.out_lo[j],
                    self.out_hi[j],
                );
                // p ≤ hi border: (p − hi) solves ≤ 0.
                let (lo2, hi2) = lane_le0(pa[j] - bh.a, pb[j] - bh.b, lo1, hi1);
                self.out_lo[j] = lo2;
                self.out_hi[j] = hi2;
            }
        }
    }

    /// Overlap-time of segment `j` from the last [`Self::solve`] call.
    #[inline]
    pub fn result(&self, j: usize) -> Interval {
        Interval::new(self.out_lo[j], self.out_hi[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(x: (f64, f64), y: (f64, f64)) -> Rect<2> {
        Rect::from_corners([x.0, y.0], [x.1, y.1])
    }

    /// Batched result must equal the scalar result; when the scalar
    /// result is non-empty the bits must match exactly.
    fn assert_matches(batch: Interval, scalar: Interval, ctx: &str) {
        assert_eq!(batch, scalar, "{ctx}");
        if !scalar.is_empty() {
            assert_eq!(batch.lo.to_bits(), scalar.lo.to_bits(), "{ctx}: lo bits");
            assert_eq!(batch.hi.to_bits(), scalar.hi.to_bits(), "{ctx}: hi bits");
        }
    }

    #[test]
    fn rect_batch_matches_scalar_all_slope_cases() {
        // One window per slope-sign combination of (hi, lo) borders in x:
        // growing, shrinking, sliding, stationary.
        let span = Interval::new(0.0, 10.0);
        let windows = [
            MovingWindow::between(span, &win((0.0, 2.0), (0.0, 2.0)), &win((10.0, 12.0), (0.0, 2.0))),
            MovingWindow::between(span, &win((0.0, 10.0), (0.0, 1.0)), &win((4.0, 6.0), (0.0, 1.0))),
            MovingWindow::between(span, &win((0.0, 2.0), (5.0, 7.0)), &win((-3.0, 5.0), (0.0, 2.0))),
            MovingWindow::stationary(span, &win((0.0, 4.0), (0.0, 4.0))),
        ];
        let boxes = [
            (win((5.0, 6.0), (0.0, 2.0)), Interval::ALL),
            (win((0.0, 1.0), (0.0, 1.0)), Interval::new(4.0, 5.0)),
            (win((5.0, 6.0), (10.0, 12.0)), Interval::ALL),
            (win((2.0, 3.0), (2.0, 3.0)), Interval::new(20.0, 30.0)),
            (win((-1.0, 0.0), (1.5, 1.5)), Interval::new(-5.0, 5.0)),
        ];
        let mut batch = RectBatch::<2>::new();
        for (space, qtime) in &boxes {
            batch.push(space, qtime);
        }
        for (wi, w) in windows.iter().enumerate() {
            batch.solve(w);
            for (j, (space, qtime)) in boxes.iter().enumerate() {
                assert_matches(
                    batch.result(j),
                    w.overlap_time_rect(space, qtime),
                    &format!("window {wi}, box {j}"),
                );
            }
        }
    }

    #[test]
    fn segment_batch_matches_scalar() {
        let w = MovingWindow::between(
            Interval::new(0.0, 10.0),
            &win((0.0, 2.0), (0.0, 2.0)),
            &win((10.0, 12.0), (0.0, 2.0)),
        );
        let segs = [
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [-5.0, 1.0], [5.0, 1.0]),
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [5.0, 1.0], [15.0, 1.0]),
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [5.0, 1.0], [10.0, 1.0]),
            MotionSegment::from_endpoints(Interval::new(2.0, 2.0), [1.0, 1.0], [1.0, 1.0]),
            MotionSegment::from_endpoints(Interval::new(3.0, 7.0), [4.0, -8.0], [4.0, 9.0]),
        ];
        let mut batch = SegmentBatch::<2>::new();
        for s in &segs {
            batch.push(s);
        }
        batch.solve(&w);
        for (j, s) in segs.iter().enumerate() {
            assert_matches(batch.result(j), w.overlap_time_segment(s), &format!("segment {j}"));
        }
    }

    #[test]
    fn clear_reuses_storage() {
        let mut batch = RectBatch::<2>::new();
        batch.push(&win((0.0, 1.0), (0.0, 1.0)), &Interval::ALL);
        assert_eq!(batch.len(), 1);
        batch.clear();
        assert!(batch.is_empty());
        let w = MovingWindow::stationary(Interval::new(0.0, 1.0), &win((0.0, 1.0), (0.0, 1.0)));
        batch.solve(&w);
        assert_eq!(batch.len(), 0);
    }
}
