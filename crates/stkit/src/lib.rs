//! # stkit — spatio-temporal geometry kit
//!
//! Foundation types for the reproduction of *"Dynamic Queries over Mobile
//! Objects"* (Lazaridis, Porkaew, Mehrotra — EDBT 2002).
//!
//! The paper's Definitions 1 and 2 introduce an interval algebra
//! (intersection `∩`, coverage `⊎`, overlap `≬`, precedes `⪯`) and
//! `n`-dimensional boxes built from intervals. Section 4.1 (Eq. 3 and
//! Fig. 3) computes the *overlap-time interval* between an axis-aligned
//! bounding box and a linearly-moving query window; §3.2 requires exact
//! intersection tests between linear motion segments and query boxes at the
//! R-tree leaf level. This crate implements all of that geometry:
//!
//! * [`Interval`] — closed interval with empty-on-inversion semantics
//!   (Definition 1).
//! * [`TimeSet`] — a sorted union of disjoint intervals, used when the exact
//!   (possibly disconnected) overlap-time set of a box with a multi-segment
//!   trajectory is needed.
//! * [`Rect`] — const-generic `N`-dimensional box (Definition 2).
//! * [`LinearForm`] — scalar linear function of time `a + b·t`, with exact
//!   inequality solving; the workhorse behind every overlap-time formula.
//! * [`MotionSegment`] — a linear motion `x(t) = x₀ + v·(t − t₀)` over a
//!   validity interval, with bounding-box extraction and exact
//!   segment-vs-box intersection (the leaf-level optimization of §3.2).
//! * [`MovingWindow`] — a query window whose lower/upper borders move
//!   linearly with time (one trapezoid segment of Fig. 3), with
//!   overlap-time computation against static boxes and motion segments.
//!
//! All computation is `f64`; on-page storage downcasts to `f32` elsewhere
//! (see the `rtree` crate) exactly as the paper's fanout figures imply.

// Numeric kernels iterate several fixed-size arrays in lockstep; index
// loops keep the per-axis math symmetric and readable.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod interval;
pub mod linear;
pub mod quadratic;
pub mod rect;
pub mod segment;
pub mod timeset;
pub mod window;

pub use batch::{RectBatch, SegmentBatch};
pub use interval::Interval;
pub use linear::LinearForm;
pub use quadratic::{min_dist_sq_over, solve_quadratic_le, within_distance};
pub use rect::Rect;
pub use segment::{MotionSegment, StBox};
pub use timeset::TimeSet;
pub use window::MovingWindow;

/// Scalar type used for all geometry computation.
pub type Scalar = f64;
