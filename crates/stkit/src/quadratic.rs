//! Quadratic inequalities over time.
//!
//! The squared distance between two linearly-moving points is a quadratic
//! in `t`, so "when are these two objects within δ of each other?" —
//! the predicate behind distance joins (paper future work (ii)) — is the
//! solution set of `a·t² + b·t + c ≤ 0`.

use crate::{Interval, MotionSegment, Scalar, TimeSet};

/// Solution set of `a·t² + b·t + c ≤ 0` over the reals: the empty set,
/// one interval, the whole line, or (for negative leading coefficient)
/// two rays — returned as a [`TimeSet`].
pub fn solve_quadratic_le(a: Scalar, b: Scalar, c: Scalar) -> TimeSet {
    const EPS: Scalar = 1e-300;
    if a.abs() < EPS {
        // Linear: b·t + c ≤ 0.
        if b.abs() < EPS {
            return if c <= 0.0 {
                TimeSet::from_interval(Interval::ALL)
            } else {
                TimeSet::empty()
            };
        }
        let root = -c / b;
        return TimeSet::from_interval(if b > 0.0 {
            Interval::new(Scalar::NEG_INFINITY, root)
        } else {
            Interval::new(root, Scalar::INFINITY)
        });
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        // No real roots: sign is that of `a` everywhere.
        return if a < 0.0 {
            TimeSet::from_interval(Interval::ALL)
        } else {
            TimeSet::empty()
        };
    }
    let sq = disc.sqrt();
    // Numerically stable root ordering.
    let (r1, r2) = {
        let q = -0.5 * (b + b.signum() * sq);
        let (x, y) = if b == 0.0 {
            ((-sq) / (2.0 * a), sq / (2.0 * a))
        } else {
            (q / a, c / q)
        };
        (x.min(y), x.max(y))
    };
    if a > 0.0 {
        // ≤ 0 between the roots.
        TimeSet::from_interval(Interval::new(r1, r2))
    } else {
        // ≤ 0 outside the roots.
        TimeSet::from_intervals([
            Interval::new(Scalar::NEG_INFINITY, r1),
            Interval::new(r2, Scalar::INFINITY),
        ])
    }
}

/// The set of times at which two motion segments are within Euclidean
/// distance `delta`, restricted to both validity intervals.
pub fn within_distance<const D: usize>(
    a: &MotionSegment<D>,
    b: &MotionSegment<D>,
    delta: Scalar,
) -> TimeSet {
    let window = a.t.intersect(&b.t);
    if window.is_empty() {
        return TimeSet::empty();
    }
    // d(t)² = Σ_i ((pa_i − pb_i) + (va_i − vb_i)·t')² with forms in
    // absolute time via coord_form.
    let (mut qa, mut qb, mut qc) = (0.0, 0.0, 0.0);
    for i in 0..D {
        let diff = a.coord_form(i).sub(&b.coord_form(i));
        // (diff.a + diff.b t)²  =  diff.b² t² + 2 diff.a diff.b t + diff.a²
        qa += diff.b * diff.b;
        qb += 2.0 * diff.a * diff.b;
        qc += diff.a * diff.a;
    }
    qc -= delta * delta;
    solve_quadratic_le(qa, qb, qc).intersect_interval(&window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_parabola_between_roots() {
        // t² − 1 ≤ 0 ⇔ t ∈ [−1, 1].
        let s = solve_quadratic_le(1.0, 0.0, -1.0);
        assert_eq!(s.intervals(), &[Interval::new(-1.0, 1.0)]);
    }

    #[test]
    fn downward_parabola_two_rays() {
        // −t² + 1 ≤ 0 ⇔ |t| ≥ 1.
        let s = solve_quadratic_le(-1.0, 0.0, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.intervals()[0].hi, -1.0);
        assert_eq!(s.intervals()[1].lo, 1.0);
    }

    #[test]
    fn no_real_roots() {
        assert!(solve_quadratic_le(1.0, 0.0, 1.0).is_empty()); // t²+1 ≤ 0
        let all = solve_quadratic_le(-1.0, 0.0, -1.0); // −t²−1 ≤ 0
        assert_eq!(all.hull(), Interval::ALL);
    }

    #[test]
    fn degenerate_linear_and_constant() {
        // 2t − 4 ≤ 0 ⇔ t ≤ 2.
        let s = solve_quadratic_le(0.0, 2.0, -4.0);
        assert_eq!(s.hull().hi, 2.0);
        assert!(solve_quadratic_le(0.0, 0.0, 5.0).is_empty());
        assert_eq!(solve_quadratic_le(0.0, 0.0, -5.0).hull(), Interval::ALL);
    }

    #[test]
    fn head_on_collision_window() {
        // Two objects approaching along x at closing speed 2, meeting at
        // t = 5; within distance 2 while |10 − 2t| ≤ 2 ⇔ t ∈ [4, 6].
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]);
        let b =
            MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [10.0, 0.0], [0.0, 0.0]);
        let s = within_distance(&a, &b, 2.0);
        assert_eq!(s.hull(), Interval::new(4.0, 6.0));
    }

    #[test]
    fn parallel_motion_constant_distance() {
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]);
        let b = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 3.0], [10.0, 3.0]);
        assert!(within_distance(&a, &b, 2.9).is_empty());
        assert_eq!(
            within_distance(&a, &b, 3.0).hull(),
            Interval::new(0.0, 10.0)
        );
    }

    #[test]
    fn validity_clipping() {
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 4.5), [0.0, 0.0], [4.5, 0.0]);
        let b =
            MotionSegment::from_endpoints(Interval::new(3.0, 10.0), [10.0 - 3.0, 0.0], [0.0, 0.0]);
        // b(t) = 10 − t for t ∈ [3, 10]; a(t) = t. Distance |10 − 2t| ≤ 2
        // ⇔ t ∈ [4, 6], clipped to shared validity [3, 4.5] ⇒ [4, 4.5].
        let s = within_distance(&a, &b, 2.0);
        assert_eq!(s.hull(), Interval::new(4.0, 4.5));
    }

    #[test]
    fn solution_matches_sampling_randomish() {
        // Deterministic pseudo-random coefficients; verify by sampling.
        let mut x = 1234567u64;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..200 {
            let (a, b, c) = (next() * 3.0, next() * 5.0, next() * 5.0);
            let s = solve_quadratic_le(a, b, c);
            for k in -20..=20 {
                let t = k as f64 * 0.37;
                let v = a * t * t + b * t + c;
                if v < -1e-9 {
                    assert!(s.contains(t), "a={a} b={b} c={c} t={t} v={v}");
                } else if v > 1e-9 {
                    assert!(!s.contains(t), "a={a} b={b} c={c} t={t} v={v}");
                }
            }
        }
    }
}

/// Minimum squared distance between two motion segments over the
/// intersection of their validity intervals clipped to `window`, or
/// `None` if the clipped interval is empty.
///
/// The squared distance is a convex (upward) quadratic in `t`, so the
/// minimum is at the unconstrained vertex if it lies inside the interval,
/// else at the nearer endpoint.
pub fn min_dist_sq_over<const D: usize>(
    a: &MotionSegment<D>,
    b: &MotionSegment<D>,
    window: &Interval,
) -> Option<Scalar> {
    let span = a.t.intersect(&b.t).intersect(window);
    if span.is_empty() {
        return None;
    }
    let (mut qa, mut qb, mut qc) = (0.0, 0.0, 0.0);
    for i in 0..D {
        let diff = a.coord_form(i).sub(&b.coord_form(i));
        qa += diff.b * diff.b;
        qb += 2.0 * diff.a * diff.b;
        qc += diff.a * diff.a;
    }
    let eval = |t: Scalar| qa * t * t + qb * t + qc;
    let mut best = eval(span.lo).min(eval(span.hi));
    if qa > 0.0 {
        let vertex = -qb / (2.0 * qa);
        if span.contains(vertex) {
            best = best.min(eval(vertex));
        }
    }
    Some(best.max(0.0))
}

#[cfg(test)]
mod min_dist_tests {
    use super::*;

    #[test]
    fn closest_approach_at_vertex() {
        // Head-on: closest approach 0 at t = 5.
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]);
        let b = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [10.0, 0.0], [0.0, 0.0]);
        assert_eq!(min_dist_sq_over(&a, &b, &Interval::ALL), Some(0.0));
        // Clipped before the meeting: minimum at the window's end (t=3:
        // positions 3 and 7 ⇒ distance 4).
        let d = min_dist_sq_over(&a, &b, &Interval::new(0.0, 3.0)).unwrap();
        assert!((d - 16.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_constant_distance() {
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 0.0]);
        let b = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [0.0, 4.0], [10.0, 4.0]);
        assert_eq!(min_dist_sq_over(&a, &b, &Interval::ALL), Some(16.0));
    }

    #[test]
    fn disjoint_validity_gives_none() {
        let a = MotionSegment::from_endpoints(Interval::new(0.0, 1.0), [0.0, 0.0], [1.0, 0.0]);
        let b = MotionSegment::from_endpoints(Interval::new(5.0, 6.0), [0.0, 0.0], [1.0, 0.0]);
        assert_eq!(min_dist_sq_over(&a, &b, &Interval::ALL), None);
    }

    #[test]
    fn agrees_with_dense_sampling() {
        let a = MotionSegment::from_endpoints(Interval::new(1.0, 9.0), [0.0, 5.0], [8.0, -3.0]);
        let b = MotionSegment::from_endpoints(Interval::new(2.0, 8.0), [7.0, 0.0], [-1.0, 4.0]);
        let w = Interval::new(0.0, 10.0);
        let analytic = min_dist_sq_over(&a, &b, &w).unwrap();
        let mut sampled = f64::INFINITY;
        for k in 0..=4000 {
            let t = 2.0 + 6.0 * k as f64 / 4000.0;
            let (pa, pb) = (a.position(t), b.position(t));
            let d = (pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2);
            sampled = sampled.min(d);
        }
        assert!((analytic - sampled).abs() < 1e-4, "{analytic} vs {sampled}");
        assert!(analytic <= sampled + 1e-12);
    }
}
