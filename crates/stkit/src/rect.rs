//! Const-generic `N`-dimensional boxes (paper Definition 2).
//!
//! A box is the cartesian product of `N` intervals. Operations mirror the
//! interval algebra componentwise. The R-tree stores space-time boxes
//! (`N = d + 1` for NSI, `N = d + 2` for the double-temporal-axes layout of
//! §4.2), so this type is generic over `N`.

use crate::{Interval, Scalar};

/// An axis-aligned `N`-dimensional box `⟨I₁, …, I_N⟩` (paper Definition 2).
///
/// The box is empty iff any of its extents is an empty interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect<const N: usize> {
    /// Per-dimension extents.
    pub dims: [Interval; N],
}

impl<const N: usize> Rect<N> {
    /// The canonical empty box (every extent empty).
    pub const EMPTY: Rect<N> = Rect {
        dims: [Interval::EMPTY; N],
    };

    /// The box covering all of `ℝ^N`.
    pub const ALL: Rect<N> = Rect {
        dims: [Interval::ALL; N],
    };

    /// Build from per-dimension extents.
    #[inline]
    pub fn new(dims: [Interval; N]) -> Self {
        Rect { dims }
    }

    /// Build from separate lower/upper corner points.
    #[inline]
    pub fn from_corners(lo: [Scalar; N], hi: [Scalar; N]) -> Self {
        let mut dims = [Interval::EMPTY; N];
        for i in 0..N {
            dims[i] = Interval::new(lo[i], hi[i]);
        }
        Rect { dims }
    }

    /// The degenerate box equal to a point (Definition 2's point-as-box).
    #[inline]
    pub fn from_point(p: [Scalar; N]) -> Self {
        Self::from_corners(p, p)
    }

    /// True iff any extent is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// Extent along dimension `i` (`□B.I_i` in the paper).
    #[inline]
    pub fn extent(&self, i: usize) -> Interval {
        self.dims[i]
    }

    /// Componentwise intersection.
    #[inline]
    pub fn intersect(&self, other: &Rect<N>) -> Rect<N> {
        let mut dims = [Interval::EMPTY; N];
        for i in 0..N {
            dims[i] = self.dims[i].intersect(&other.dims[i]);
        }
        Rect { dims }
    }

    /// Componentwise coverage (the minimum bounding box of both operands).
    ///
    /// An empty operand is ignored, so this is the `⊎` used to grow R-tree
    /// node boxes during insertion.
    #[inline]
    pub fn cover(&self, other: &Rect<N>) -> Rect<N> {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let mut dims = [Interval::EMPTY; N];
        for i in 0..N {
            dims[i] = self.dims[i].cover(&other.dims[i]);
        }
        Rect { dims }
    }

    /// Overlap predicate `≬` — true iff the intersection is non-empty.
    #[inline]
    pub fn overlaps(&self, other: &Rect<N>) -> bool {
        for i in 0..N {
            if !self.dims[i].overlaps(&other.dims[i]) {
                return false;
            }
        }
        !self.is_empty() && !other.is_empty()
    }

    /// True iff `other ⊆ self`; every box contains the empty box.
    #[inline]
    pub fn contains_rect(&self, other: &Rect<N>) -> bool {
        if other.is_empty() {
            return true;
        }
        for i in 0..N {
            if !self.dims[i].contains_interval(&other.dims[i]) {
                return false;
            }
        }
        true
    }

    /// True iff the point lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[Scalar; N]) -> bool {
        for i in 0..N {
            if !self.dims[i].contains(p[i]) {
                return false;
            }
        }
        true
    }

    /// Volume (product of extent lengths); 0 for empty boxes.
    #[inline]
    pub fn volume(&self) -> Scalar {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::length).product()
    }

    /// Sum of extent lengths — the *margin* used by R*-style heuristics.
    #[inline]
    pub fn margin(&self) -> Scalar {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::length).sum()
    }

    /// Volume increase of `self ⊎ other` relative to `self` — Guttman's
    /// least-enlargement criterion for ChooseLeaf.
    #[inline]
    pub fn enlargement(&self, other: &Rect<N>) -> Scalar {
        self.cover(other).volume() - self.volume()
    }

    /// Center point of the box (undefined components for empty extents).
    #[inline]
    pub fn center(&self) -> [Scalar; N] {
        let mut c = [0.0; N];
        for i in 0..N {
            c[i] = self.dims[i].mid();
        }
        c
    }

    /// Grow every extent by `delta` on both sides (SPDQ window inflation).
    #[inline]
    pub fn inflate(&self, delta: Scalar) -> Rect<N> {
        let mut dims = [Interval::EMPTY; N];
        for i in 0..N {
            dims[i] = self.dims[i].inflate(delta);
        }
        Rect { dims }
    }

    /// Squared minimum Euclidean distance between two boxes (0 if they
    /// overlap) — the dual-tree pruning bound for distance joins.
    #[inline]
    pub fn min_dist_sq_rect(&self, other: &Rect<N>) -> Scalar {
        let mut d2 = 0.0;
        for i in 0..N {
            let (a, b) = (&self.dims[i], &other.dims[i]);
            let gap = if a.hi < b.lo {
                b.lo - a.hi
            } else if b.hi < a.lo {
                a.lo - b.hi
            } else {
                0.0
            };
            d2 += gap * gap;
        }
        d2
    }

    /// Squared Euclidean distance from a point to the box (0 if inside).
    ///
    /// Used by the incremental nearest-neighbour extension (paper future
    /// work (i), after Roussopoulos et al.'s MINDIST).
    #[inline]
    pub fn min_dist_sq(&self, p: &[Scalar; N]) -> Scalar {
        let mut d2 = 0.0;
        for i in 0..N {
            let ext = &self.dims[i];
            let d = if p[i] < ext.lo {
                ext.lo - p[i]
            } else if p[i] > ext.hi {
                p[i] - ext.hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }
}

impl<const N: usize> Default for Rect<N> {
    fn default() -> Self {
        Rect::EMPTY
    }
}

impl<const N: usize> std::fmt::Display for Rect<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(x: (Scalar, Scalar), y: (Scalar, Scalar)) -> Rect<2> {
        Rect::new([Interval::new(x.0, x.1), Interval::new(y.0, y.1)])
    }

    #[test]
    fn emptiness() {
        assert!(Rect::<3>::EMPTY.is_empty());
        // One inverted extent empties the whole box.
        let r = rect2((0.0, 1.0), (5.0, 4.0));
        assert!(r.is_empty());
        assert_eq!(r.volume(), 0.0);
    }

    #[test]
    fn intersect_and_cover() {
        let a = rect2((0.0, 4.0), (0.0, 4.0));
        let b = rect2((2.0, 6.0), (3.0, 9.0));
        assert_eq!(a.intersect(&b), rect2((2.0, 4.0), (3.0, 4.0)));
        assert_eq!(a.cover(&b), rect2((0.0, 6.0), (0.0, 9.0)));
        assert_eq!(Rect::<2>::EMPTY.cover(&a), a);
    }

    #[test]
    fn overlap_requires_all_dims() {
        let a = rect2((0.0, 4.0), (0.0, 4.0));
        // Overlaps in x but not in y.
        let b = rect2((1.0, 2.0), (5.0, 6.0));
        assert!(!a.overlaps(&b));
        let c = rect2((4.0, 8.0), (4.0, 8.0)); // corner touch
        assert!(a.overlaps(&c));
        assert!(!a.overlaps(&Rect::EMPTY));
    }

    #[test]
    fn containment() {
        let a = rect2((0.0, 10.0), (0.0, 10.0));
        let b = rect2((1.0, 9.0), (2.0, 3.0));
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_rect(&Rect::EMPTY));
        assert!(a.contains_point(&[0.0, 10.0]));
        assert!(!a.contains_point(&[10.1, 5.0]));
    }

    #[test]
    fn measures() {
        let a = rect2((0.0, 2.0), (0.0, 3.0));
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = rect2((0.0, 4.0), (0.0, 3.0));
        assert_eq!(a.enlargement(&b), 6.0); // grows to 4×3=12, from 6
        assert_eq!(a.center(), [1.0, 1.5]);
    }

    #[test]
    fn inflate() {
        let a = rect2((2.0, 4.0), (2.0, 4.0));
        assert_eq!(a.inflate(1.0), rect2((1.0, 5.0), (1.0, 5.0)));
    }

    #[test]
    fn min_dist_rect_to_rect() {
        let a = rect2((0.0, 2.0), (0.0, 2.0));
        let b = rect2((5.0, 6.0), (0.0, 2.0));
        assert_eq!(a.min_dist_sq_rect(&b), 9.0);
        let c = rect2((1.0, 3.0), (1.0, 3.0));
        assert_eq!(a.min_dist_sq_rect(&c), 0.0); // overlapping
        let d = rect2((5.0, 6.0), (6.0, 7.0));
        assert_eq!(a.min_dist_sq_rect(&d), 9.0 + 16.0);
        assert_eq!(a.min_dist_sq_rect(&d), d.min_dist_sq_rect(&a));
    }

    #[test]
    fn min_dist() {
        let a = rect2((0.0, 2.0), (0.0, 2.0));
        assert_eq!(a.min_dist_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist_sq(&[5.0, 2.0]), 9.0);
        assert_eq!(a.min_dist_sq(&[3.0, 3.0]), 2.0);
    }
}
