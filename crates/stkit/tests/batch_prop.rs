//! Property tests pinning the SoA batched overlap kernels to the scalar
//! path: equal as intervals always (any empty equals any empty), and
//! bit-identical (`to_bits`) whenever the scalar result is non-empty.
//!
//! The generators deliberately cover all four trapezoid slope-sign cases
//! of Fig. 3(b) (growing / shrinking / sliding / stationary borders,
//! including exactly-zero slopes), empty and inverted query-time windows,
//! and boundary-touching intervals (shared endpoints), since those are
//! where a restructured kernel could legally-but-differently round.

use proptest::prelude::*;
use stkit::{Interval, MotionSegment, MovingWindow, Rect, RectBatch, SegmentBatch};

fn iv() -> impl Strategy<Value = Interval> {
    (-50.0f64..50.0, 0.0f64..30.0).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

/// Query-time intervals: normal, inverted (empty), unbounded, and
/// boundary-degenerate points.
fn qtime() -> impl Strategy<Value = Interval> {
    prop_oneof![
        iv(),
        (-50.0f64..50.0, -30.0f64..0.0).prop_map(|(lo, len)| Interval::new(lo, lo + len)),
        Just(Interval::ALL),
        Just(Interval::EMPTY),
        (-50.0f64..50.0).prop_map(Interval::point),
    ]
}

fn rect2() -> impl Strategy<Value = Rect<2>> {
    (iv(), iv()).prop_map(|(x, y)| Rect::new([x, y]))
}

/// Windows spanning the four slope-sign cases: each border's endpoint
/// pair is either distinct (moving) or identical (zero slope).
fn window() -> impl Strategy<Value = MovingWindow<2>> {
    (iv(), rect2(), rect2(), any::<bool>(), any::<bool>()).prop_map(
        |(span, a, b, freeze_lo, freeze_hi)| {
            let span = if span.lo == span.hi {
                Interval::new(span.lo, span.lo + 1.0)
            } else {
                span
            };
            let mut b2 = b;
            if freeze_lo {
                for i in 0..2 {
                    b2.dims[i].lo = a.extent(i).lo; // constant lower border
                }
            }
            if freeze_hi {
                for i in 0..2 {
                    b2.dims[i].hi = a.extent(i).hi; // constant upper border
                }
            }
            MovingWindow::between(span, &a, &b2)
        },
    )
}

fn segment() -> impl Strategy<Value = MotionSegment<2>> {
    (
        iv(),
        (-50.0f64..50.0, -50.0f64..50.0),
        (-5.0f64..5.0, -5.0f64..5.0),
        any::<bool>(),
    )
        .prop_map(|(t, p, v, stationary)| {
            let v = if stationary { [0.0, 0.0] } else { [v.0, v.1] };
            MotionSegment::new(t, [p.0, p.1], v)
        })
}

fn check(batched: Interval, scalar: Interval, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(batched, scalar, "{}: {:?} vs {:?}", ctx, batched, scalar);
    if !scalar.is_empty() {
        prop_assert_eq!(batched.lo.to_bits(), scalar.lo.to_bits(), "{} lo bits", ctx);
        prop_assert_eq!(batched.hi.to_bits(), scalar.hi.to_bits(), "{} hi bits", ctx);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rect_batch_bit_identical_to_scalar(
        w in window(),
        boxes in proptest::collection::vec((rect2(), qtime()), 1..24),
    ) {
        let mut batch = RectBatch::<2>::new();
        for (space, t) in &boxes {
            batch.push(space, t);
        }
        batch.solve(&w);
        for (j, (space, t)) in boxes.iter().enumerate() {
            check(batch.result(j), w.overlap_time_rect(space, t), &format!("box {j}"))?;
        }
    }

    #[test]
    fn rect_batch_boundary_touching(w in window(), x in iv(), y in iv()) {
        // Boxes that share endpoints with the window's span: the overlap
        // interval degenerates to a point — both paths must agree exactly.
        let boxes = [
            (Rect::new([x, y]), Interval::point(w.span.lo)),
            (Rect::new([x, y]), Interval::point(w.span.hi)),
            (w.window_at(w.span.lo), Interval::new(w.span.lo, w.span.lo)),
            (w.window_at(w.span.hi), w.span),
        ];
        let mut batch = RectBatch::<2>::new();
        for (space, t) in &boxes {
            batch.push(space, t);
        }
        batch.solve(&w);
        for (j, (space, t)) in boxes.iter().enumerate() {
            check(batch.result(j), w.overlap_time_rect(space, t), &format!("touch {j}"))?;
        }
    }

    #[test]
    fn segment_batch_bit_identical_to_scalar(
        w in window(),
        segs in proptest::collection::vec(segment(), 1..24),
    ) {
        let mut batch = SegmentBatch::<2>::new();
        for s in &segs {
            batch.push(s);
        }
        batch.solve(&w);
        for (j, s) in segs.iter().enumerate() {
            check(batch.result(j), w.overlap_time_segment(s), &format!("seg {j}"))?;
        }
    }

    #[test]
    fn segment_batch_co_moving_edge_cases(w in window(), p in (-50.0f64..50.0, -50.0f64..50.0)) {
        // Segments that move exactly with a window border (difference
        // slope exactly zero) exercise the constant-form select lanes.
        let segs = [
            MotionSegment::new(w.span, [p.0, p.1], [w.lo[0].b, w.lo[1].b]),
            MotionSegment::new(w.span, [p.0, p.1], [w.hi[0].b, w.hi[1].b]),
            MotionSegment::new(w.span, [w.lo[0].eval(w.span.lo), w.lo[1].eval(w.span.lo)], [w.lo[0].b, w.lo[1].b]),
        ];
        let mut batch = SegmentBatch::<2>::new();
        for s in &segs {
            batch.push(s);
        }
        batch.solve(&w);
        for (j, s) in segs.iter().enumerate() {
            check(batch.result(j), w.overlap_time_segment(s), &format!("co-moving {j}"))?;
        }
    }
}
