//! Property-based tests for the geometry kit: the overlap-time solvers
//! are checked against dense time sampling, and the interval/box algebra
//! against its defining predicates.

use proptest::prelude::*;
use stkit::{Interval, LinearForm, MotionSegment, MovingWindow, Rect, TimeSet};

fn iv() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn any_iv() -> impl Strategy<Value = Interval> {
    prop_oneof![
        iv(),
        (-100.0f64..100.0, -50.0f64..0.0).prop_map(|(lo, len)| Interval::new(lo, lo + len)),
    ]
}

fn rect2() -> impl Strategy<Value = Rect<2>> {
    (iv(), iv()).prop_map(|(x, y)| Rect::new([x, y]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersection_is_contained_in_both(a in any_iv(), b in any_iv()) {
        let i = a.intersect(&b);
        prop_assert!(a.contains_interval(&i));
        prop_assert!(b.contains_interval(&i));
    }

    #[test]
    fn coverage_contains_both(a in any_iv(), b in any_iv()) {
        let c = a.cover(&b);
        prop_assert!(c.contains_interval(&a));
        prop_assert!(c.contains_interval(&b));
    }

    #[test]
    fn coverage_is_minimal_on_nonempty(a in iv(), b in iv()) {
        // Any interval containing both must contain the cover.
        let c = a.cover(&b);
        let bigger = Interval::new(a.lo.min(b.lo) - 1.0, a.hi.max(b.hi) + 1.0);
        prop_assert!(bigger.contains_interval(&c));
        prop_assert!(c.lo == a.lo.min(b.lo) && c.hi == a.hi.max(b.hi));
    }

    #[test]
    fn overlap_matches_pointwise(a in iv(), b in iv()) {
        // Sampled witness: if a point is in both, they overlap.
        let witness = 0.5 * (a.lo.max(b.lo) + a.hi.min(b.hi));
        if a.contains(witness) && b.contains(witness) {
            prop_assert!(a.overlaps(&b));
        }
        if a.overlaps(&b) {
            let w = a.intersect(&b).mid();
            prop_assert!(a.contains(w) && b.contains(w));
        }
    }

    #[test]
    fn precedes_is_order_consistent(a in iv(), b in iv()) {
        if a.precedes(&b) && b.precedes(&a) {
            // Only possible when both degenerate at the same point.
            prop_assert!(a.length() == 0.0 && b.length() == 0.0);
        }
    }

    #[test]
    fn timeset_normalization(ivs in proptest::collection::vec(any_iv(), 0..12)) {
        let ts = TimeSet::from_intervals(ivs.clone());
        // Invariants: sorted, disjoint, non-empty members.
        for w in ts.intervals().windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "members must not touch: {ts}");
        }
        for m in ts.intervals() {
            prop_assert!(!m.is_empty());
        }
        // Membership equivalence at sampled points.
        for iv in &ivs {
            if !iv.is_empty() {
                prop_assert!(ts.contains(iv.mid()));
                prop_assert!(ts.contains(iv.lo));
                prop_assert!(ts.contains(iv.hi));
            }
        }
        // Measure is bounded by sum of inputs and by the hull.
        let sum: f64 = ivs.iter().map(Interval::length).sum();
        prop_assert!(ts.measure() <= sum + 1e-9);
        prop_assert!(ts.measure() <= ts.hull().length() + 1e-9);
    }

    #[test]
    fn timeset_union_intersect_pointwise(
        xs in proptest::collection::vec(iv(), 1..8),
        ys in proptest::collection::vec(iv(), 1..8),
        probe in -120.0f64..120.0,
    ) {
        let a = TimeSet::from_intervals(xs);
        let b = TimeSet::from_intervals(ys);
        let u = a.union(&b);
        let i = a.intersect(&b);
        prop_assert_eq!(u.contains(probe), a.contains(probe) || b.contains(probe));
        prop_assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
    }

    #[test]
    fn linear_solver_matches_evaluation(
        a in -50.0f64..50.0,
        b in -10.0f64..10.0,
        c in -50.0f64..50.0,
        t in -100.0f64..100.0,
    ) {
        let f = LinearForm { a, b };
        let le = f.solve_le(c);
        // Exclude boundary-noise: test strictly inside/outside.
        let v = f.eval(t);
        if v < c - 1e-9 {
            prop_assert!(le.contains(t), "t={t} f={v} should satisfy ≤ {c}");
        }
        if v > c + 1e-9 {
            prop_assert!(!le.contains(t));
        }
        let ge = f.solve_ge(c);
        if v > c + 1e-9 {
            prop_assert!(ge.contains(t));
        }
        if v < c - 1e-9 {
            prop_assert!(!ge.contains(t));
        }
    }

    #[test]
    fn rect_algebra_consistency(a in rect2(), b in rect2()) {
        let i = a.intersect(&b);
        let c = a.cover(&b);
        prop_assert!(c.contains_rect(&a) && c.contains_rect(&b));
        prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
        prop_assert_eq!(a.overlaps(&b), !i.is_empty());
        prop_assert!(c.volume() + 1e-9 >= a.volume().max(b.volume()));
        prop_assert!(i.volume() <= a.volume().min(b.volume()) + 1e-9);
    }

    #[test]
    fn min_dist_zero_iff_inside(r in rect2(), px in -150.0f64..150.0, py in -150.0f64..150.0) {
        let p = [px, py];
        if r.contains_point(&p) {
            prop_assert_eq!(r.min_dist_sq(&p), 0.0);
        } else {
            prop_assert!(r.min_dist_sq(&p) > 0.0);
        }
    }

    #[test]
    fn segment_query_interval_matches_sampling(
        t0 in 0.0f64..50.0,
        dur in 0.1f64..10.0,
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        q in rect2(),
    ) {
        let seg = MotionSegment::from_endpoints(
            Interval::new(t0, t0 + dur), [ax, ay], [bx, by]);
        let hit = seg.intersect_query(&q, &Interval::new(t0, t0 + dur));
        // Sample 32 instants across validity; strict membership must agree.
        for k in 0..=32 {
            let t = t0 + dur * k as f64 / 32.0;
            let p = seg.position(t);
            let inside = q.contains_point(&p);
            if hit.contains(t) {
                // Boundary tolerance: point must be within q inflated.
                prop_assert!(q.inflate(1e-6).contains_point(&p),
                    "t={t} claimed inside but at {p:?} vs {q:?}");
            } else if inside {
                // Point strictly interior must be covered by the interval.
                let strictly = q.inflate(-1e-6);
                if !strictly.is_empty() && strictly.contains_point(&p) {
                    prop_assert!(hit.contains(t), "t={t} at {p:?} missed by {hit}");
                }
            }
        }
    }

    #[test]
    fn moving_window_overlap_matches_sampling(
        span_lo in 0.0f64..20.0,
        span_len in 0.5f64..10.0,
        a in rect2(),
        b in rect2(),
        target in rect2(),
    ) {
        let span = Interval::new(span_lo, span_lo + span_len);
        let w = MovingWindow::between(span, &a, &b);
        let hit = w.overlap_time_rect(&target, &Interval::ALL);
        for k in 0..=32 {
            let t = span.lo + span.length() * k as f64 / 32.0;
            let win = w.window_at(t);
            if hit.contains(t) {
                prop_assert!(win.inflate(1e-6).overlaps(&target),
                    "t={t}: window {win:?} vs {target:?}");
            } else {
                let shrunk = win.inflate(-1e-6);
                if !shrunk.is_empty() && shrunk.overlaps(&target.inflate(-1e-6)) {
                    prop_assert!(hit.contains(t), "t={t} missed by {hit}");
                }
            }
        }
    }

    #[test]
    fn moving_window_segment_overlap_matches_sampling(
        span_lo in 0.0f64..20.0,
        span_len in 0.5f64..10.0,
        a in rect2(),
        b in rect2(),
        sx in -50.0f64..50.0, sy in -50.0f64..50.0,
        ex in -50.0f64..50.0, ey in -50.0f64..50.0,
    ) {
        let span = Interval::new(span_lo, span_lo + span_len);
        let w = MovingWindow::between(span, &a, &b);
        let seg = MotionSegment::from_endpoints(span, [sx, sy], [ex, ey]);
        let hit = w.overlap_time_segment(&seg);
        for k in 0..=32 {
            let t = span.lo + span.length() * k as f64 / 32.0;
            let p = seg.position(t);
            let win = w.window_at(t);
            if hit.contains(t) {
                prop_assert!(win.inflate(1e-6).contains_point(&p));
            } else {
                let shrunk = win.inflate(-1e-6);
                if !shrunk.is_empty() && shrunk.contains_point(&p) {
                    prop_assert!(hit.contains(t), "t={t}: {p:?} inside {win:?}");
                }
            }
        }
    }

    #[test]
    fn spdq_inflation_is_superset(
        span_lo in 0.0f64..20.0,
        span_len in 0.5f64..10.0,
        a in rect2(),
        b in rect2(),
        target in rect2(),
        delta in 0.0f64..5.0,
    ) {
        let span = Interval::new(span_lo, span_lo + span_len);
        let w = MovingWindow::between(span, &a, &b);
        let plain = w.overlap_time_rect(&target, &Interval::ALL);
        let fat = w.inflate(delta).overlap_time_rect(&target, &Interval::ALL);
        prop_assert!(fat.contains_interval(&plain),
            "inflated overlap {fat} must contain {plain}");
    }
}
