//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! overlap-time geometry, R-tree construction and search, and the three
//! query engines on a fixed small workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mobiquery::{NaiveEngine, NpdqEngine, PdqEngine, SnapshotQuery, Trajectory};
use rtree::bulk::bulk_load;
use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use std::hint::black_box;
use storage::Pager;
use stkit::{Interval, MotionSegment, MovingWindow, Rect};
use workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    let w = MovingWindow::between(
        Interval::new(0.0, 10.0),
        &Rect::from_corners([0.0, 0.0], [8.0, 8.0]),
        &Rect::from_corners([40.0, 20.0], [48.0, 28.0]),
    );
    let target = Rect::from_corners([20.0, 10.0], [24.0, 14.0]);
    let tspan = Interval::new(2.0, 9.0);
    g.bench_function("overlap_time_rect", |b| {
        b.iter(|| black_box(w.overlap_time_rect(black_box(&target), black_box(&tspan))))
    });
    let seg = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [50.0, 30.0], [0.0, 0.0]);
    g.bench_function("overlap_time_segment", |b| {
        b.iter(|| black_box(w.overlap_time_segment(black_box(&seg))))
    });
    g.bench_function("segment_intersect_query", |b| {
        b.iter(|| black_box(seg.intersect_query(black_box(&target), black_box(&tspan))))
    });
    let traj = Trajectory::linear(
        Rect::from_corners([0.0, 0.0], [8.0, 8.0]),
        [4.0, 2.0],
        Interval::new(0.0, 10.0),
        8,
    );
    g.bench_function("trajectory_overlap_rect_8keys", |b| {
        b.iter(|| black_box(traj.overlap_rect(black_box(&target), black_box(&tspan))))
    });
    g.finish();
}

fn small_dataset() -> Dataset {
    Dataset::generate(DatasetConfig {
        objects: 500,
        duration: 10.0,
        space_side: 100.0,
        seed: 7,
    })
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    g.sample_size(20);
    let ds = small_dataset();
    let recs = ds.nsi_records();
    g.bench_function("bulk_load_5k", |b| {
        b.iter_batched(
            || recs.clone(),
            |r| black_box(bulk_load(Pager::new(), RTreeConfig::default(), r)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("insert_5k_time_ordered", |b| {
        b.iter_batched(
            || recs.clone(),
            |rs| {
                let mut tree: RTree<NsiSegmentRecord<2>, _> =
                    RTree::new(Pager::new(), RTreeConfig::default());
                for r in rs {
                    tree.insert(r, r.seg.t.lo);
                }
                black_box(tree.len())
            },
            BatchSize::LargeInput,
        )
    });
    let tree = ds.build_nsi_tree();
    let q = SnapshotQuery::at_instant(Rect::from_corners([40.0, 40.0], [48.0, 48.0]), 5.0);
    g.bench_function("range_search_8x8", |b| {
        let e = NaiveEngine::new();
        b.iter(|| black_box(e.query_nsi(&tree, black_box(&q), |_| {})))
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    g.sample_size(20);
    let ds = small_dataset();
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    let spec = QueryWorkload::new(QueryWorkloadConfig {
        count: 1,
        data_duration: 10.0,
        ..QueryWorkloadConfig::paper(0.9)
    })
    .generate_one(0);

    g.bench_function("pdq_full_dq_51_frames", |b| {
        b.iter(|| {
            let mut e = PdqEngine::start(&nsi, spec.trajectory.clone());
            let mut n = 0;
            for w in spec.frame_times.windows(2) {
                n += e.drain_window(&nsi, w[0], w[1]).len();
            }
            black_box(n)
        })
    });
    g.bench_function("naive_full_dq_51_frames", |b| {
        let e = NaiveEngine::new();
        b.iter(|| {
            let mut n = 0u64;
            for q in spec.snapshots() {
                n += e.query_nsi(&nsi, &q, |_| {}).results;
            }
            black_box(n)
        })
    });
    g.bench_function("npdq_full_dq_51_frames", |b| {
        b.iter(|| {
            let mut e = NpdqEngine::new();
            let mut n = 0u64;
            for (i, _) in spec.frame_times.iter().enumerate() {
                n += e
                    .execute(&dta, &spec.open_snapshot(i), f64::INFINITY, |_| {})
                    .results;
            }
            black_box(n)
        })
    });
    g.bench_function("knn_k10", |b| {
        b.iter(|| {
            let mut stats = mobiquery::QueryStats::default();
            black_box(mobiquery::knn_at(
                &nsi,
                black_box([50.0, 50.0]),
                5.0,
                10,
                f64::INFINITY,
                &mut stats,
            ))
        })
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(15);
    let ds = small_dataset();
    let nsi = ds.build_nsi_tree();
    g.bench_function("self_distance_join_d1", |b| {
        b.iter(|| {
            let mut n = 0u64;
            mobiquery::self_distance_join(
                &nsi,
                1.0,
                stkit::Interval::new(0.0, 10.0),
                |_| n += 1,
            );
            black_box(n)
        })
    });
    let mut tpr: rtree::RTree<tprtree::TprRecord, Pager> =
        rtree::RTree::new(Pager::new(), RTreeConfig::default());
    for u in ds.updates() {
        tpr.insert(
            tprtree::TprRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.v),
            u.seg.t.lo,
        );
    }
    let spec = QueryWorkload::new(QueryWorkloadConfig {
        count: 1,
        data_duration: 10.0,
        ..QueryWorkloadConfig::paper(0.9)
    })
    .generate_one(0);
    g.bench_function("tpr_full_dq_51_frames", |b| {
        b.iter(|| {
            let mut e = tprtree::TprDynamicQuery::start(&tpr, spec.trajectory.clone());
            let mut n = 0;
            for w in spec.frame_times.windows(2) {
                n += e.drain_window(&tpr, w[0], w[1]).len();
            }
            black_box(n)
        })
    });
    g.bench_function("quadratic_within_distance", |b| {
        let a = stkit::MotionSegment::from_endpoints(
            stkit::Interval::new(0.0, 10.0),
            [0.0, 0.0],
            [10.0, 10.0],
        );
        let s2 = stkit::MotionSegment::from_endpoints(
            stkit::Interval::new(0.0, 10.0),
            [10.0, 0.0],
            [0.0, 10.0],
        );
        b.iter(|| black_box(stkit::within_distance(black_box(&a), black_box(&s2), 1.5)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_rtree,
    bench_engines,
    bench_extensions
);
criterion_main!(benches);
