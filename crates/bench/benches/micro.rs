//! Micro-benchmarks for the hot paths of the reproduction: overlap-time
//! geometry, R-tree construction and search, and the three query engines
//! on a fixed small workload.
//!
//! Self-timed (`harness = false`): the build environment has no registry
//! access for criterion, so this measures with `std::time::Instant`
//! directly — warm-up, then enough iterations to fill a minimum window,
//! reporting the mean per-iteration time. Run with `cargo bench`;
//! `DQ_BENCH_MS` overrides the per-benchmark measuring window.

use mobiquery::{NaiveEngine, NpdqEngine, PdqEngine, SnapshotQuery, Trajectory};
use rtree::bulk::bulk_load;
use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};
use storage::Pager;
use stkit::{Interval, MotionSegment, MovingWindow, Rect};
use workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

/// Minimal self-timing harness: warm-up, then repeat until the window is
/// filled, print mean per-iteration time.
struct Bench {
    group: &'static str,
    window: Duration,
}

impl Bench {
    fn group(group: &'static str) -> Bench {
        println!("\n## {group}");
        let ms = std::env::var("DQ_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250u64);
        Bench {
            group,
            window: Duration::from_millis(ms),
        }
    }

    fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm-up: one timed probe to size the batch.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(20));
        let batch = (self.window.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let per_iter = t1.elapsed().as_secs_f64() / batch as f64;
        let (value, unit) = if per_iter >= 1e-3 {
            (per_iter * 1e3, "ms")
        } else if per_iter >= 1e-6 {
            (per_iter * 1e6, "µs")
        } else {
            (per_iter * 1e9, "ns")
        };
        println!("{}/{name}: {value:.3} {unit}/iter ({batch} iters)", self.group);
    }

    /// Like [`Bench::run`] but with a per-iteration setup excluded from
    /// the reported time (criterion's `iter_batched`).
    fn run_batched<S, T>(&self, name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) {
        let t0 = Instant::now();
        black_box(f(setup()));
        let probe = t0.elapsed().max(Duration::from_nanos(20));
        let batch = (self.window.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..batch {
            let input = setup();
            let t1 = Instant::now();
            black_box(f(input));
            measured += t1.elapsed();
        }
        let per_iter = measured.as_secs_f64() / batch as f64;
        let (value, unit) = if per_iter >= 1e-3 {
            (per_iter * 1e3, "ms")
        } else if per_iter >= 1e-6 {
            (per_iter * 1e6, "µs")
        } else {
            (per_iter * 1e9, "ns")
        };
        println!("{}/{name}: {value:.3} {unit}/iter ({batch} iters)", self.group);
    }
}

fn bench_geometry() {
    let g = Bench::group("geometry");
    let w = MovingWindow::between(
        Interval::new(0.0, 10.0),
        &Rect::from_corners([0.0, 0.0], [8.0, 8.0]),
        &Rect::from_corners([40.0, 20.0], [48.0, 28.0]),
    );
    let target = Rect::from_corners([20.0, 10.0], [24.0, 14.0]);
    let tspan = Interval::new(2.0, 9.0);
    g.run("overlap_time_rect", || {
        w.overlap_time_rect(black_box(&target), black_box(&tspan))
    });
    let seg = MotionSegment::from_endpoints(Interval::new(0.0, 10.0), [50.0, 30.0], [0.0, 0.0]);
    g.run("overlap_time_segment", || {
        w.overlap_time_segment(black_box(&seg))
    });
    g.run("segment_intersect_query", || {
        seg.intersect_query(black_box(&target), black_box(&tspan))
    });
    let traj = Trajectory::linear(
        Rect::from_corners([0.0, 0.0], [8.0, 8.0]),
        [4.0, 2.0],
        Interval::new(0.0, 10.0),
        8,
    );
    g.run("trajectory_overlap_rect_8keys", || {
        traj.overlap_rect(black_box(&target), black_box(&tspan))
    });
}

fn small_dataset() -> Dataset {
    Dataset::generate(DatasetConfig {
        objects: 500,
        duration: 10.0,
        space_side: 100.0,
        seed: 7,
    })
}

fn bench_rtree() {
    let g = Bench::group("rtree");
    let ds = small_dataset();
    let recs = ds.nsi_records();
    g.run_batched(
        "bulk_load_5k",
        || recs.clone(),
        |r| bulk_load(Pager::new(), RTreeConfig::default(), r),
    );
    g.run_batched(
        "insert_5k_time_ordered",
        || recs.clone(),
        |rs| {
            let mut tree: RTree<NsiSegmentRecord<2>, _> =
                RTree::new(Pager::new(), RTreeConfig::default());
            for r in rs {
                tree.insert(r, r.seg.t.lo);
            }
            tree.len()
        },
    );
    let tree = ds.build_nsi_tree();
    let q = SnapshotQuery::at_instant(Rect::from_corners([40.0, 40.0], [48.0, 48.0]), 5.0);
    let e = NaiveEngine::new();
    g.run("range_search_8x8", || e.query_nsi(&tree, black_box(&q), |_| {}));
}

fn bench_engines() {
    let g = Bench::group("engines");
    let ds = small_dataset();
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    let spec = QueryWorkload::new(QueryWorkloadConfig {
        count: 1,
        data_duration: 10.0,
        ..QueryWorkloadConfig::paper(0.9)
    })
    .generate_one(0);

    g.run("pdq_full_dq_51_frames", || {
        let mut e = PdqEngine::start(&nsi, spec.trajectory.clone());
        let mut n = 0;
        for w in spec.frame_times.windows(2) {
            n += e.drain_window(&nsi, w[0], w[1]).len();
        }
        n
    });
    let naive = NaiveEngine::new();
    g.run("naive_full_dq_51_frames", || {
        let mut n = 0u64;
        for q in spec.snapshots() {
            n += naive.query_nsi(&nsi, &q, |_| {}).results;
        }
        n
    });
    g.run("npdq_full_dq_51_frames", || {
        let mut e = NpdqEngine::new();
        let mut n = 0u64;
        for (i, _) in spec.frame_times.iter().enumerate() {
            n += e
                .execute(&dta, &spec.open_snapshot(i), f64::INFINITY, |_| {})
                .results;
        }
        n
    });
    g.run("knn_k10", || {
        let mut stats = mobiquery::QueryStats::default();
        mobiquery::knn_at(
            &nsi,
            black_box([50.0, 50.0]),
            5.0,
            10,
            f64::INFINITY,
            &mut stats,
        )
    });
}

fn bench_extensions() {
    let g = Bench::group("extensions");
    let ds = small_dataset();
    let nsi = ds.build_nsi_tree();
    g.run("self_distance_join_d1", || {
        let mut n = 0u64;
        mobiquery::self_distance_join(&nsi, 1.0, stkit::Interval::new(0.0, 10.0), |_| n += 1);
        n
    });
    let mut tpr: rtree::RTree<tprtree::TprRecord, Pager> =
        rtree::RTree::new(Pager::new(), RTreeConfig::default());
    for u in ds.updates() {
        tpr.insert(
            tprtree::TprRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.v),
            u.seg.t.lo,
        );
    }
    let spec = QueryWorkload::new(QueryWorkloadConfig {
        count: 1,
        data_duration: 10.0,
        ..QueryWorkloadConfig::paper(0.9)
    })
    .generate_one(0);
    g.run("tpr_full_dq_51_frames", || {
        let mut e = tprtree::TprDynamicQuery::start(&tpr, spec.trajectory.clone());
        let mut n = 0;
        for w in spec.frame_times.windows(2) {
            n += e.drain_window(&tpr, w[0], w[1]).len();
        }
        n
    });
    let a = stkit::MotionSegment::from_endpoints(
        stkit::Interval::new(0.0, 10.0),
        [0.0, 0.0],
        [10.0, 10.0],
    );
    let s2 = stkit::MotionSegment::from_endpoints(
        stkit::Interval::new(0.0, 10.0),
        [10.0, 0.0],
        [0.0, 10.0],
    );
    g.run("quadratic_within_distance", || {
        stkit::within_distance(black_box(&a), black_box(&s2), 1.5)
    });
}

fn main() {
    bench_geometry();
    bench_rtree();
    bench_engines();
    bench_extensions();
}
