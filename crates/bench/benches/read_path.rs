//! Read-path microbench: decode-per-visit (the pre-zero-copy path:
//! `read() -> Vec<u8>` + `Node::deserialize`, one page copy and one
//! entry-vector materialization per node visit) against view-per-visit
//! (`read_node() -> NodeRef`, a refcount bump and lazy entry decoding).
//!
//! Both paths walk the *entire* tree over a warm buffer pool, so every
//! visit is a cache hit and the measured difference is pure read-path
//! overhead. Bytes copied across the store API are counted by a wrapper
//! `PageStore` — the view path must copy none; the bench exits non-zero
//! if it ever copies at least as much as the decode path, so CI can run
//! it tiny as a regression tripwire.
//!
//! Knobs: `DQ_READ_PATH_OBJECTS` (dataset size, default 5000),
//! `DQ_READ_PATH_MS` (per-path measuring window, default 300),
//! `DQ_READ_PATH_OUT` (output JSON path, default the repo-root
//! `BENCH_read_path.json`).

use bench::FigureTable;
use rtree::bulk::bulk_load;
use rtree::{Node, NodeEntries, NsiSegmentRecord, RTree, RTreeConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use storage::{BufferPool, IoSnapshot, PageId, PageRef, PageStore, Pager};
use stkit::StBox;
use workload::{Dataset, DatasetConfig};

type R = NsiSegmentRecord<2>;
type K = StBox<2, 1>;

/// Counts every byte that crosses the copying `read()` API; `read_page`
/// is the zero-copy lane and counts nothing.
struct CountingStore<S> {
    inner: S,
    copied: AtomicU64,
}

impl<S> CountingStore<S> {
    fn new(inner: S) -> Self {
        CountingStore {
            inner,
            copied: AtomicU64::new(0),
        }
    }

    fn copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    fn reset_copied(&self) {
        self.copied.store(0, Ordering::Relaxed);
    }
}

impl<S: PageStore> PageStore for CountingStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn try_read_page(&self, id: PageId) -> Result<PageRef, storage::StorageError> {
        self.inner.try_read_page(id)
    }
    fn read_page(&self, id: PageId) -> PageRef {
        self.inner.read_page(id)
    }
    fn read(&self, id: PageId) -> Vec<u8> {
        let buf = self.inner.read(id);
        self.copied.fetch_add(buf.len() as u64, Ordering::Relaxed);
        buf
    }
    fn write(&self, id: PageId, data: &[u8]) {
        self.inner.write(id, data)
    }
    fn alloc(&self) -> PageId {
        self.inner.alloc()
    }
    fn free(&self, id: PageId) {
        self.inner.free(id)
    }
    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

type Store = CountingStore<BufferPool<Pager>>;

/// The pre-refactor read path: copy the page into a `Vec`, materialize
/// every entry into an owned `Node`, then iterate.
fn traverse_decode(tree: &RTree<R, Store>) -> (u64, u64) {
    let (mut visits, mut checksum) = (0u64, 0u64);
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let bytes = tree.store().read(page);
        let node: Node<K, R> = Node::deserialize(&bytes);
        visits += 1;
        match &node.entries {
            NodeEntries::Internal(es) => {
                for (_, c) in es {
                    stack.push(*c);
                }
            }
            NodeEntries::Leaf(rs) => {
                for r in rs {
                    checksum = checksum.wrapping_add(u64::from(r.oid));
                }
            }
        }
    }
    (visits, checksum)
}

/// The zero-copy read path: borrow the resident page, decode entries
/// lazily straight out of the page bytes.
fn traverse_view(tree: &RTree<R, Store>) -> (u64, u64) {
    let (mut visits, mut checksum) = (0u64, 0u64);
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page);
        visits += 1;
        if node.is_leaf() {
            for r in node.leaf_records() {
                checksum = checksum.wrapping_add(u64::from(r.oid));
            }
        } else {
            for (_, c) in node.internal_entries() {
                stack.push(c);
            }
        }
    }
    (visits, checksum)
}

struct Measured {
    traversals: u64,
    elapsed: Duration,
    bytes_per_traversal: u64,
}

fn measure(
    tree: &RTree<R, Store>,
    window: Duration,
    f: impl Fn(&RTree<R, Store>) -> (u64, u64),
) -> Measured {
    // Warm-up probe sizes the batch (and warms the pool on first use).
    let t0 = Instant::now();
    black_box(f(tree));
    let probe = t0.elapsed().max(Duration::from_nanos(100));
    let traversals = (window.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    tree.store().reset_copied();
    let t1 = Instant::now();
    for _ in 0..traversals {
        black_box(f(tree));
    }
    let elapsed = t1.elapsed();
    let bytes_per_traversal = tree.store().copied_bytes() / traversals;
    Measured {
        traversals,
        elapsed,
        bytes_per_traversal,
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let objects = env_u64("DQ_READ_PATH_OBJECTS", 5_000) as u32;
    let window = Duration::from_millis(env_u64("DQ_READ_PATH_MS", 300));

    let ds = Dataset::generate(DatasetConfig {
        objects,
        duration: 10.0,
        space_side: 1000.0,
        seed: 7,
    });
    let recs = ds.nsi_records();
    let n_records = recs.len();
    // Capacity far above the tree size: the whole tree stays resident,
    // so every timed visit is a pool hit.
    let store = CountingStore::new(BufferPool::new(Pager::new(), 1 << 16));
    let tree = bulk_load(store, RTreeConfig::default(), recs);

    // Warm the pool and agree on the answer before timing anything.
    let (nodes, sum_view) = traverse_view(&tree);
    let (nodes_d, sum_decode) = traverse_decode(&tree);
    assert_eq!(nodes, nodes_d, "paths must visit the same nodes");
    assert_eq!(sum_view, sum_decode, "paths must see the same records");

    // Observability cross-check: one traversal's level-counter delta must
    // equal its visit count exactly (every visit is counted, none twice).
    let levels_before = tree.level_counters().snapshot();
    let (nodes_again, _) = traverse_view(&tree);
    let levels_delta = tree.level_counters().snapshot() - levels_before;
    assert_eq!(
        levels_delta.total_reads(),
        nodes_again,
        "level counters must reconcile with traversal visits"
    );

    let hits0 = tree.store().inner.cache_stats();
    let decode = measure(&tree, window, traverse_decode);
    let view = measure(&tree, window, traverse_view);
    let hits1 = tree.store().inner.cache_stats();
    assert_eq!(
        hits1.misses, hits0.misses,
        "timed traversals must run on a warm pool"
    );

    // Tracing overhead probe: same timed window with the global trace
    // flag off. Reported to stderr only — the JSON schema (and the
    // committed baseline it is compared against) stays unchanged.
    obs::set_trace_enabled(false);
    let view_untraced = measure(&tree, window, traverse_view);
    obs::set_trace_enabled(true);

    let rate = |m: &Measured| (nodes * m.traversals) as f64 / m.elapsed.as_secs_f64();
    let per_visit_ns = |m: &Measured| m.elapsed.as_secs_f64() * 1e9 / (nodes * m.traversals) as f64;

    let mut table = FigureTable::new(
        "read_path",
        &format!(
            "Warm-pool full-tree traversal: {objects} objects, {n_records} records, \
             {nodes} nodes (one visit = one cache hit)"
        ),
        &[
            "path",
            "node_visits",
            "traversals",
            "visits_per_sec",
            "ns_per_visit",
            "bytes_copied_per_traversal",
        ],
    );
    for (name, m) in [("decode", &decode), ("view", &view)] {
        table.row(vec![
            name.to_string(),
            nodes.to_string(),
            m.traversals.to_string(),
            format!("{:.0}", rate(m)),
            format!("{:.1}", per_visit_ns(m)),
            m.bytes_per_traversal.to_string(),
        ]);
    }
    table.row(vec![
        "view/decode speedup".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", rate(&view) / rate(&decode)),
        String::new(),
        String::new(),
    ]);
    table.print();

    let traced = rate(&view);
    let untraced = rate(&view_untraced);
    eprintln!(
        "# trace overhead: view path {:.0} visits/s traced vs {:.0} untraced ({:+.1}%)",
        traced,
        untraced,
        (untraced / traced - 1.0) * 100.0
    );

    // Registry dump: the bench publishes what a serving process would.
    let registry = obs::MetricsRegistry::new();
    tree.store().inner.publish_to(&registry, "pool");
    tree.level_counters().snapshot().publish_to(&registry, "rtree");
    registry
        .counter("read_path.visits.decode")
        .add(nodes * decode.traversals);
    registry
        .counter("read_path.visits.view")
        .add(nodes * (view.traversals + view_untraced.traversals));
    for line in registry.render().lines() {
        eprintln!("# {line}");
    }

    let out = std::env::var("DQ_READ_PATH_OUT").unwrap_or_else(|_| {
        format!("{}/../../BENCH_read_path.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, format!("{}\n", table.to_json())).expect("write bench JSON");
    eprintln!("# wrote {out}");

    // Regression tripwire: the zero-copy path must actually be zero-copy
    // (strictly fewer bytes than the decode path, which copies one full
    // page per visit).
    if view.bytes_per_traversal >= decode.bytes_per_traversal {
        eprintln!(
            "FAIL: view path copied {} bytes/traversal, decode path {} — zero-copy regressed",
            view.bytes_per_traversal, decode.bytes_per_traversal
        );
        std::process::exit(1);
    }
}
