//! Read-path microbench: decode-per-visit (the pre-zero-copy path:
//! `read() -> Vec<u8>` + `Node::deserialize`, one page copy and one
//! entry-vector materialization per node visit) against view-per-visit
//! (`read_node() -> NodeRef`, a refcount bump and lazy entry decoding).
//!
//! Both paths walk the *entire* tree over a warm buffer pool, so every
//! visit is a cache hit and the measured difference is pure read-path
//! overhead. Bytes copied across the store API are counted by a wrapper
//! `PageStore` — the view path must copy none; the bench exits non-zero
//! if it ever copies at least as much as the decode path, so CI can run
//! it tiny as a regression tripwire.
//!
//! Two further figures ride along:
//!
//! * **Contended reads** — N reader threads full-tree traversing against
//!   an *active* writer, once with the pre-optimistic architecture (a
//!   `RwLock` read acquisition per traversal) and once latch-free
//!   through optimistic `TreeReader`s (per-visit version validation, no
//!   lock). Figure: node-visits/s summed over readers, plus the
//!   optimistic/locked ratio.
//! * **Batched overlap geometry** — the four-case trapezoid overlap-time
//!   computation evaluated entry-at-a-time (scalar `overlap_time_rect`)
//!   vs node-page-sized SoA batches (`RectBatch::solve`, hoisted
//!   slope-sign cases, autovectorizable lanes). Figure:
//!   entries-evaluated/s, plus the batched/scalar ratio. The batched
//!   results are asserted bit-identical to the scalar ones first.
//!
//! Knobs: `DQ_READ_PATH_OBJECTS` (dataset size, default 5000),
//! `DQ_READ_PATH_MS` (per-path measuring window, default 300),
//! `DQ_READ_PATH_READERS` (contended reader threads, default 4),
//! `DQ_READ_PATH_FLUSH_US` / `DQ_READ_PATH_TICK_US` (writer critical
//! section stall and batch period, defaults 1000/2000),
//! `DQ_READ_PATH_OUT` (output JSON path, default the repo-root
//! `BENCH_read_path.json`).

use bench::FigureTable;
use rtree::bulk::bulk_load;
use rtree::{Node, NodeEntries, NsiSegmentRecord, RTree, RTreeConfig, TreeRead};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use storage::{BufferPool, IoSnapshot, PageId, PageRef, PageStore, Pager};
use stkit::{Interval, RectBatch, StBox};
use workload::{Dataset, DatasetConfig};

type R = NsiSegmentRecord<2>;
type K = StBox<2, 1>;

/// Counts every byte that crosses the copying `read()` API; `read_page`
/// is the zero-copy lane and counts nothing.
struct CountingStore<S> {
    inner: S,
    copied: AtomicU64,
}

impl<S> CountingStore<S> {
    fn new(inner: S) -> Self {
        CountingStore {
            inner,
            copied: AtomicU64::new(0),
        }
    }

    fn copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    fn reset_copied(&self) {
        self.copied.store(0, Ordering::Relaxed);
    }
}

impl<S: PageStore> PageStore for CountingStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn try_read_page(&self, id: PageId) -> Result<PageRef, storage::StorageError> {
        self.inner.try_read_page(id)
    }
    fn read_page(&self, id: PageId) -> PageRef {
        self.inner.read_page(id)
    }
    fn read(&self, id: PageId) -> Vec<u8> {
        let buf = self.inner.read(id);
        self.copied.fetch_add(buf.len() as u64, Ordering::Relaxed);
        buf
    }
    fn write(&self, id: PageId, data: &[u8]) {
        self.inner.write(id, data)
    }
    fn try_alloc(&self) -> Result<PageId, storage::StorageError> {
        self.inner.try_alloc()
    }
    fn free(&self, id: PageId) {
        self.inner.free(id)
    }
    fn io(&self) -> IoSnapshot {
        self.inner.io()
    }
}

type Store = CountingStore<BufferPool<Pager>>;

/// The pre-refactor read path: copy the page into a `Vec`, materialize
/// every entry into an owned `Node`, then iterate.
fn traverse_decode(tree: &RTree<R, Store>) -> (u64, u64) {
    let (mut visits, mut checksum) = (0u64, 0u64);
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let bytes = tree.store().read(page);
        let node: Node<K, R> = Node::deserialize(&bytes);
        visits += 1;
        match &node.entries {
            NodeEntries::Internal(es) => {
                for (_, c) in es {
                    stack.push(*c);
                }
            }
            NodeEntries::Leaf(rs) => {
                for r in rs {
                    checksum = checksum.wrapping_add(u64::from(r.oid));
                }
            }
        }
    }
    (visits, checksum)
}

/// The zero-copy read path: borrow the resident page, decode entries
/// lazily straight out of the page bytes.
fn traverse_view(tree: &RTree<R, Store>) -> (u64, u64) {
    let (mut visits, mut checksum) = (0u64, 0u64);
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page);
        visits += 1;
        if node.is_leaf() {
            for r in node.leaf_records() {
                checksum = checksum.wrapping_add(u64::from(r.oid));
            }
        } else {
            for (_, c) in node.internal_entries() {
                stack.push(c);
            }
        }
    }
    (visits, checksum)
}

struct Measured {
    traversals: u64,
    elapsed: Duration,
    bytes_per_traversal: u64,
}

fn measure(
    tree: &RTree<R, Store>,
    window: Duration,
    f: impl Fn(&RTree<R, Store>) -> (u64, u64),
) -> Measured {
    // Warm-up probe sizes the batch (and warms the pool on first use).
    let t0 = Instant::now();
    black_box(f(tree));
    let probe = t0.elapsed().max(Duration::from_nanos(100));
    let traversals = (window.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    tree.store().reset_copied();
    let t1 = Instant::now();
    for _ in 0..traversals {
        black_box(f(tree));
    }
    let elapsed = t1.elapsed();
    let bytes_per_traversal = tree.store().copied_bytes() / traversals;
    Measured {
        traversals,
        elapsed,
        bytes_per_traversal,
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One frame-sized burst of a resumable tree descent: pop and visit up
/// to `budget` nodes, pushing children back on the caller's `stack` (an
/// empty stack reseeds from the root). This is the serving layer's unit
/// of read work — a session's engine step visits a bounded handful of
/// nodes per frame, and the pre-optimistic architecture held the read
/// lock for exactly one such burst. A visit that fails validation drops
/// the frontier and restarts from the root next frame (its reads still
/// count — that is the retry traffic the optimistic protocol pays for
/// never blocking).
fn contended_frame<T: TreeRead<R> + ?Sized>(t: &T, stack: &mut Vec<PageId>, budget: u32) -> u64 {
    let mut visits = 0u64;
    for _ in 0..budget {
        let Some(page) = stack.pop() else {
            stack.push(t.root_page());
            continue;
        };
        let Ok(node) = t.try_read_node(page) else {
            stack.clear();
            break;
        };
        visits += 1;
        if node.is_leaf() {
            for r in node.leaf_records() {
                black_box(r.oid);
            }
        } else {
            for (_, c) in node.internal_entries() {
                stack.push(c);
            }
        }
    }
    visits
}

/// Node visits one reader performs per read section — the scale of one
/// session frame step.
const FRAME_VISITS: u32 = 16;

/// Pause between a reader's frames, standing in for the serving layer's
/// inter-frame work (result merging, barrier waits): sessions step on a
/// cadence, they do not spin read sections back-to-back. Without the
/// gap the benchmark measures an artifact instead — on a saturated core
/// a spinning reader always re-acquires the lock before a woken writer
/// is scheduled, so the locked configuration never pays for the writer
/// at all (it starves indefinitely).
const FRAME_GAP: Duration = Duration::from_micros(50);

/// Node-visits/s summed over `readers` threads while a writer keeps
/// inserting. `optimistic == false` is the pre-optimistic architecture:
/// every frame-sized burst takes the tree's read lock (and so
/// serializes with the writer). `optimistic == true` never takes a lock
/// on the read side: each thread holds a `TreeReader` and validates per
/// visit. Either way the writer mutates under the write lock, so the
/// only variable is the read-side protocol.
fn contended_rate(recs: Vec<R>, readers: usize, window: Duration, optimistic: bool) -> f64 {
    let pool = BufferPool::new(Pager::new(), 1 << 16);
    let tree = bulk_load(pool, RTreeConfig::default(), recs).map_store(Arc::new);
    let lock = RwLock::new(tree);
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(|| {
                let mut visits = 0u64;
                let mut stack = Vec::new();
                if optimistic {
                    let rd = lock.read().unwrap().reader();
                    while !stop.load(Ordering::Relaxed) {
                        visits += contended_frame(&rd, &mut stack, FRAME_VISITS);
                        std::thread::sleep(FRAME_GAP);
                    }
                } else {
                    while !stop.load(Ordering::Relaxed) {
                        let g = lock.read().unwrap();
                        visits += contended_frame(&*g, &mut stack, FRAME_VISITS);
                        drop(g);
                        std::thread::sleep(FRAME_GAP);
                    }
                }
                total.fetch_add(visits, Ordering::Relaxed);
            });
        }
        scope.spawn(|| {
            // The writer only ever inserts (pages are never freed), so a
            // reader holding a pre-split PageId still reads a valid node
            // image — the version check is what keeps its *view* sound.
            //
            // The update stream runs on a fixed-rate tick so both
            // configurations apply the same batches per second regardless
            // of how long lock acquisition takes; the two runs then
            // differ only in the read-side protocol. Each batch includes
            // a write-back stall *inside* the critical section (the apply
            // path's shape: dirty pages flush under the update latch).
            // Under the lock that stall parks every reader — new read
            // acquisitions are already blocked from the moment the writer
            // starts waiting — while optimistic readers traverse straight
            // through it, paying only per-visit validation and the rare
            // retry against the brief per-insert write sections.
            let flush = Duration::from_micros(env_u64("DQ_READ_PATH_FLUSH_US", 1000));
            let tick = Duration::from_micros(env_u64("DQ_READ_PATH_TICK_US", 2000));
            let mut oid = 10_000_000u32;
            let mut next = Instant::now() + tick;
            while !stop.load(Ordering::Relaxed) {
                let mut g = lock.write().unwrap();
                std::thread::sleep(flush);
                for _ in 0..16 {
                    let x = f64::from(oid % 997);
                    let rec = R::new(oid, 0, Interval::new(0.0, 10.0), [x, x * 0.5], [x, x * 0.5]);
                    g.insert(rec, 0.0);
                    oid += 1;
                }
                drop(g);
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
                next += tick;
            }
        });
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Entries-evaluated/s for the trapezoid overlap-time computation:
/// scalar (`overlap_segment` per entry — the pre-batching hot loop) vs
/// SoA-batched in node-page-sized chunks. Asserts bit-identity first.
fn geometry_rates(recs: &[R], window: Duration) -> (f64, f64) {
    // The four-case trapezoid kernel itself, in the shape the descents
    // drive it (`Trajectory::overlap_rect_batch_into`): a node page is
    // staged once and then solved against *every* trapezoid segment of
    // the trajectory, so the SoA transform is amortized across segments
    // while the scalar path re-branches per (segment, entry). One
    // evaluation = one (entry, segment) overlap time; the TimeSet union
    // that both paths share downstream is excluded so the figure
    // isolates the geometry. The trajectory sweeps most of the data
    // space because that is the entry mix the kernel actually sees:
    // entries staged during a descent are children of nodes that already
    // overlapped the trajectory. A tiny window would instead measure the
    // scalar path's first-dimension early-exit against fixed-work lanes.
    let traj = mobiquery::Trajectory::linear(
        stkit::Rect::from_corners([0.0, 0.0], [800.0, 800.0]),
        [20.0, 15.0],
        Interval::new(0.0, 10.0),
        8,
    );
    // Box entries as the tree's internal levels hold them: each record's
    // spatial bounds, with the subtree-aggregated (full-run) lifetime.
    let boxes: Vec<(stkit::Rect<2>, Interval)> = recs
        .iter()
        .map(|r| {
            let s = &r.seg;
            let mut lo = [0.0f64; 2];
            let mut hi = [0.0f64; 2];
            for i in 0..2 {
                let f = s.coord_form(i);
                let (p0, p1) = (f.a + f.b * s.t.lo, f.a + f.b * s.t.hi);
                lo[i] = p0.min(p1);
                hi[i] = p0.max(p1);
            }
            (stkit::Rect::from_corners(lo, hi), Interval::new(0.0, 10.0))
        })
        .collect();
    let windows = traj.segments();
    // Leaf-capacity-sized chunks: the shape the engines stage per node.
    const CHUNK: usize = 64;
    let mut batch = RectBatch::new();
    for chunk in boxes.chunks(CHUNK) {
        batch.clear();
        for (r, qt) in chunk {
            batch.push(r, qt);
        }
        for w in windows {
            batch.solve(w);
            for (j, (r, qt)) in chunk.iter().enumerate() {
                assert_eq!(
                    batch.result(j),
                    w.overlap_time_rect(r, qt),
                    "batched overlap kernel must be bit-identical to scalar"
                );
            }
        }
    }
    let per_pass = (boxes.len() * windows.len()) as u64;
    let timed = |mut pass: Box<dyn FnMut() -> u64>| {
        let t0 = Instant::now();
        let mut entries = 0u64;
        while t0.elapsed() < window {
            entries += pass();
        }
        entries as f64 / t0.elapsed().as_secs_f64()
    };
    let scalar = timed(Box::new(|| {
        for w in windows {
            for (r, qt) in &boxes {
                black_box(w.overlap_time_rect(r, qt));
            }
        }
        per_pass
    }));
    let batched = timed(Box::new(|| {
        for chunk in boxes.chunks(CHUNK) {
            batch.clear();
            for (r, qt) in chunk {
                batch.push(r, qt);
            }
            for w in windows {
                batch.solve(w);
                black_box(batch.result(chunk.len() - 1));
            }
            black_box(&batch);
        }
        per_pass
    }));
    (scalar, batched)
}

fn main() {
    let objects = env_u64("DQ_READ_PATH_OBJECTS", 5_000) as u32;
    let window = Duration::from_millis(env_u64("DQ_READ_PATH_MS", 300));

    let ds = Dataset::generate(DatasetConfig {
        objects,
        duration: 10.0,
        space_side: 1000.0,
        seed: 7,
    });
    let recs = ds.nsi_records();
    let n_records = recs.len();
    // Capacity far above the tree size: the whole tree stays resident,
    // so every timed visit is a pool hit.
    let store = CountingStore::new(BufferPool::new(Pager::new(), 1 << 16));
    let tree = bulk_load(store, RTreeConfig::default(), recs);

    // Warm the pool and agree on the answer before timing anything.
    let (nodes, sum_view) = traverse_view(&tree);
    let (nodes_d, sum_decode) = traverse_decode(&tree);
    assert_eq!(nodes, nodes_d, "paths must visit the same nodes");
    assert_eq!(sum_view, sum_decode, "paths must see the same records");

    // Observability cross-check: one traversal's level-counter delta must
    // equal its visit count exactly (every visit is counted, none twice).
    let levels_before = tree.level_counters().snapshot();
    let (nodes_again, _) = traverse_view(&tree);
    let levels_delta = tree.level_counters().snapshot() - levels_before;
    assert_eq!(
        levels_delta.total_reads(),
        nodes_again,
        "level counters must reconcile with traversal visits"
    );

    let hits0 = tree.store().inner.cache_stats();
    let decode = measure(&tree, window, traverse_decode);
    let view = measure(&tree, window, traverse_view);
    let hits1 = tree.store().inner.cache_stats();
    assert_eq!(
        hits1.misses, hits0.misses,
        "timed traversals must run on a warm pool"
    );

    // Tracing overhead probe: same timed window with the global trace
    // flag off. Reported to stderr only — the JSON schema (and the
    // committed baseline it is compared against) stays unchanged.
    obs::set_trace_enabled(false);
    let view_untraced = measure(&tree, window, traverse_view);
    obs::set_trace_enabled(true);

    let rate = |m: &Measured| (nodes * m.traversals) as f64 / m.elapsed.as_secs_f64();
    let per_visit_ns = |m: &Measured| m.elapsed.as_secs_f64() * 1e9 / (nodes * m.traversals) as f64;

    let mut table = FigureTable::new(
        "read_path",
        &format!(
            "Warm-pool full-tree traversal: {objects} objects, {n_records} records, \
             {nodes} nodes (one visit = one cache hit)"
        ),
        &[
            "path",
            "node_visits",
            "traversals",
            "visits_per_sec",
            "ns_per_visit",
            "bytes_copied_per_traversal",
        ],
    );
    for (name, m) in [("decode", &decode), ("view", &view)] {
        table.row(vec![
            name.to_string(),
            nodes.to_string(),
            m.traversals.to_string(),
            format!("{:.0}", rate(m)),
            format!("{:.1}", per_visit_ns(m)),
            m.bytes_per_traversal.to_string(),
        ]);
    }
    table.row(vec![
        "view/decode speedup".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", rate(&view) / rate(&decode)),
        String::new(),
        String::new(),
    ]);

    // Contended reads: N reader threads vs an active writer, locked
    // read acquisition vs latch-free optimistic readers. Fresh tree per
    // configuration so writer-driven growth is comparable.
    let readers = env_u64("DQ_READ_PATH_READERS", 4) as usize;
    let locked = contended_rate(ds.nsi_records(), readers, window, false);
    let optimistic = contended_rate(ds.nsi_records(), readers, window, true);
    for (name, v) in [
        (format!("contended locked x{readers}"), locked),
        (format!("contended optimistic x{readers}"), optimistic),
    ] {
        table.row(vec![
            name,
            String::new(),
            String::new(),
            format!("{v:.0}"),
            String::new(),
            String::new(),
        ]);
    }
    table.row(vec![
        "optimistic/locked speedup".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", optimistic / locked),
        String::new(),
        String::new(),
    ]);

    // Batched overlap geometry: entries-evaluated/s, scalar vs SoA
    // (rates land in the visits_per_sec column — the schema's "work
    // items per second" slot).
    let (geom_scalar, geom_batched) = geometry_rates(&ds.nsi_records(), window);
    for (name, v) in [("geometry scalar", geom_scalar), ("geometry batched", geom_batched)] {
        table.row(vec![
            name.to_string(),
            String::new(),
            String::new(),
            format!("{v:.0}"),
            String::new(),
            String::new(),
        ]);
    }
    table.row(vec![
        "batched/scalar speedup".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", geom_batched / geom_scalar),
        String::new(),
        String::new(),
    ]);
    table.print();

    let traced = rate(&view);
    let untraced = rate(&view_untraced);
    eprintln!(
        "# trace overhead: view path {:.0} visits/s traced vs {:.0} untraced ({:+.1}%)",
        traced,
        untraced,
        (untraced / traced - 1.0) * 100.0
    );

    // Registry dump: the bench publishes what a serving process would.
    let registry = obs::MetricsRegistry::new();
    tree.store().inner.publish_to(&registry, "pool");
    tree.level_counters().snapshot().publish_to(&registry, "rtree");
    registry
        .counter("read_path.visits.decode")
        .add(nodes * decode.traversals);
    registry
        .counter("read_path.visits.view")
        .add(nodes * (view.traversals + view_untraced.traversals));
    for line in registry.render().lines() {
        eprintln!("# {line}");
    }

    let out = std::env::var("DQ_READ_PATH_OUT").unwrap_or_else(|_| {
        format!("{}/../../BENCH_read_path.json", env!("CARGO_MANIFEST_DIR"))
    });
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, format!("{}\n", table.to_json())).expect("write bench JSON");
    eprintln!("# wrote {out}");

    // Regression tripwire: the zero-copy path must actually be zero-copy
    // (strictly fewer bytes than the decode path, which copies one full
    // page per visit).
    if view.bytes_per_traversal >= decode.bytes_per_traversal {
        eprintln!(
            "FAIL: view path copied {} bytes/traversal, decode path {} — zero-copy regressed",
            view.bytes_per_traversal, decode.bytes_per_traversal
        );
        std::process::exit(1);
    }
}
