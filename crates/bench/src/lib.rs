//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's §5:
//! it builds the data set, sweeps the figure's x-axis (overlap level or
//! window size), runs the relevant engines, prints the table the figure
//! plots, and writes a machine-readable JSON next to it under
//! `target/figures/`.
//!
//! Scale is controlled by environment variables so `cargo bench` stays
//! fast while the full paper-scale run remains one command away:
//!
//! * `DQ_SCALE=paper|quick` — data-set size (default `quick`).
//! * `DQ_TRAJECTORIES=N` — dynamic queries per point (default 100;
//!   paper: 1000).

use std::io::Write as _;
use workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

/// Experiment scale resolved from the environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Down-scaled data set for quick runs (default).
    Quick,
    /// The paper's full configuration (≈ 502 k segments, 1000
    /// trajectories per point unless overridden).
    Paper,
}

impl Scale {
    /// Read `DQ_SCALE` (default: quick).
    pub fn from_env() -> Scale {
        match std::env::var("DQ_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// The data-set configuration for this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            Scale::Paper => DatasetConfig::paper(),
            Scale::Quick => DatasetConfig {
                objects: 2000,
                duration: 30.0,
                ..DatasetConfig::quick()
            },
        }
    }

    /// Dynamic queries per experiment point (`DQ_TRAJECTORIES` override).
    pub fn trajectories(self) -> usize {
        if let Ok(v) = std::env::var("DQ_TRAJECTORIES") {
            if let Ok(n) = v.parse() {
                return n;
            }
        }
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 100,
        }
    }

    /// Query-workload config for one overlap level at this scale.
    pub fn query_config(self, overlap: f64, window_side: f64) -> QueryWorkloadConfig {
        let ds = self.dataset_config();
        QueryWorkloadConfig {
            window_side,
            count: self.trajectories(),
            data_duration: ds.duration,
            space_side: ds.space_side,
            ..QueryWorkloadConfig::paper(overlap)
        }
    }
}

/// Build (and report) the data set for the resolved scale.
pub fn build_dataset(scale: Scale) -> Dataset {
    let cfg = scale.dataset_config();
    eprintln!(
        "# dataset: {} objects × {} time units (seed {:#x})",
        cfg.objects, cfg.duration, cfg.seed
    );
    let ds = Dataset::generate(cfg);
    eprintln!("# segments: {}", ds.segment_count());
    ds
}

/// Generate the dynamic queries for one experiment point.
pub fn build_queries(
    scale: Scale,
    overlap: f64,
    window_side: f64,
) -> Vec<workload::DynamicQuerySpec> {
    QueryWorkload::new(scale.query_config(overlap, window_side)).generate()
}

/// The paper's overlap levels and window sizes, re-exported for binaries.
pub use workload::queries::{PAPER_OVERLAPS, PAPER_WINDOW_SIDES};

/// A printable results table (one per figure).
#[derive(Debug)]
pub struct FigureTable {
    /// Figure identifier, e.g. `"fig06"`.
    pub figure: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (first cell is the row label).
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    /// Create a table with headers.
    pub fn new(figure: &str, title: &str, columns: &[&str]) -> Self {
        FigureTable {
            figure: figure.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Print as an aligned text table to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.figure, self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            println!("{}", line.join("  "));
        };
        print_row(&self.columns);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            print_row(row);
        }
    }

    /// Write the table as JSON under `target/figures/<figure>.json`.
    pub fn write_json(&self) {
        let dir = std::path::Path::new("target/figures");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.json", self.figure));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", self.to_json());
            eprintln!("# wrote {}", path.display());
        }
    }

    /// Render the table as pretty-printed JSON (strings only, so no
    /// external serializer is needed).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn string_array(items: &[String], indent: &str) -> String {
            let cells: Vec<String> = items.iter().map(|s| escape(s)).collect();
            format!("{indent}[{}]", cells.join(", "))
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"figure\": {},\n", escape(&self.figure)));
        out.push_str(&format!("  \"title\": {},\n", escape(&self.title)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            string_array(&self.columns, "").trim_start()
        ));
        let rows: Vec<String> = self.rows.iter().map(|r| string_array(r, "    ")).collect();
        if rows.is_empty() {
            out.push_str("  \"rows\": []\n");
        } else {
            out.push_str(&format!("  \"rows\": [\n{}\n  ]\n", rows.join(",\n")));
        }
        out.push('}');
        out
    }
}

/// Format a float with two decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format an overlap level like the paper ("99.99%").
pub fn pct(overlap: f64) -> String {
    if (overlap - 0.9999).abs() < 1e-12 {
        "99.99%".to_string()
    } else {
        format!("{:.0}%", overlap * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.0), "0%");
        assert_eq!(pct(0.25), "25%");
        assert_eq!(pct(0.9999), "99.99%");
    }

    #[test]
    fn table_rejects_bad_rows() {
        let mut t = FigureTable::new("figX", "test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()])
        }));
        assert!(r.is_err());
    }

    #[test]
    fn scale_defaults() {
        let q = Scale::Quick;
        assert!(q.dataset_config().objects < DatasetConfig::paper().objects);
        let cfg = q.query_config(0.5, 8.0);
        assert_eq!(cfg.overlap, 0.5);
        assert_eq!(cfg.window_side, 8.0);
        assert_eq!(cfg.data_duration, q.dataset_config().duration);
    }
}
pub mod figures;
