//! The measurement sweeps behind Figs. 6–13, shared by the binaries.
//!
//! Four sweep shapes cover all eight figures:
//!
//! | Figures | Sweep | Engines |
//! |---|---|---|
//! | 6 (I/O), 7 (CPU) | overlap, small window | naive-NSI vs PDQ |
//! | 8 (I/O), 9 (CPU) | overlap × window size | naive-NSI vs PDQ, subsequent queries |
//! | 10 (I/O), 11 (CPU) | overlap, small window | naive-DTA vs NPDQ |
//! | 12 (I/O), 13 (CPU) | overlap × window size | naive-DTA vs NPDQ, subsequent queries |

use crate::{build_dataset, build_queries, f2, pct, FigureTable, Scale, PAPER_OVERLAPS,
            PAPER_WINDOW_SIDES};
use workload::{measure_naive_dta, measure_naive_nsi, measure_npdq, measure_pdq, PointSummary};

/// Which of the paper's two metrics a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Disk accesses per query (leaf / total).
    Io,
    /// Distance computations per query.
    Cpu,
}

impl Metric {
    fn first(self, p: &PointSummary) -> String {
        match self {
            Metric::Io => format!("{}/{}", f2(p.first_leaf), f2(p.first_disk)),
            Metric::Cpu => f2(p.first_cpu),
        }
    }

    fn subsequent(self, p: &PointSummary) -> String {
        match self {
            Metric::Io => format!("{}/{}", f2(p.sub_leaf), f2(p.sub_disk)),
            Metric::Cpu => f2(p.sub_cpu),
        }
    }
}

/// Which dynamic-query algorithm a sweep compares against its naive
/// baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Predictive dynamic queries over the NSI tree (Figs. 6–9).
    Pdq,
    /// Non-predictive dynamic queries over the DTA tree (Figs. 10–13).
    Npdq,
}

struct Sweep {
    naive: PointSummary,
    dq: PointSummary,
}

fn run_point(
    algo: Algo,
    ds: &workload::Dataset,
    nsi: &rtree::RTree<rtree::NsiSegmentRecord<2>, storage::Pager>,
    dta: &rtree::RTree<rtree::DtaSegmentRecord<2>, storage::Pager>,
    scale: Scale,
    overlap: f64,
    window: f64,
) -> Sweep {
    let _ = ds;
    let specs = build_queries(scale, overlap, window);
    match algo {
        Algo::Pdq => Sweep {
            naive: measure_naive_nsi(nsi, &specs),
            dq: measure_pdq(nsi, &specs),
        },
        Algo::Npdq => Sweep {
            naive: measure_naive_dta(dta, &specs),
            dq: measure_npdq(dta, &specs),
        },
    }
}

/// Figs. 6, 7, 10, 11: first + subsequent cost vs overlap, small window.
pub fn overlap_figure(figure: &str, title: &str, algo: Algo, metric: Metric) -> FigureTable {
    let scale = Scale::from_env();
    let ds = build_dataset(scale);
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    let algo_name = match algo {
        Algo::Pdq => "PDQ",
        Algo::Npdq => "NPDQ",
    };
    let mut table = FigureTable::new(
        figure,
        title,
        &[
            "overlap",
            "naive first",
            "naive subs",
            &format!("{algo_name} first"),
            &format!("{algo_name} subs"),
        ],
    );
    for overlap in PAPER_OVERLAPS {
        let s = run_point(algo, &ds, &nsi, &dta, scale, overlap, 8.0);
        table.row(vec![
            pct(overlap),
            metric.first(&s.naive),
            metric.subsequent(&s.naive),
            metric.first(&s.dq),
            metric.subsequent(&s.dq),
        ]);
    }
    table
}

/// Figs. 8, 9, 12, 13: subsequent-query cost vs overlap for the three
/// window sizes.
pub fn size_figure(figure: &str, title: &str, algo: Algo, metric: Metric) -> FigureTable {
    let scale = Scale::from_env();
    let ds = build_dataset(scale);
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    let algo_name = match algo {
        Algo::Pdq => "PDQ",
        Algo::Npdq => "NPDQ",
    };
    let mut cols: Vec<String> = vec!["overlap".into()];
    for w in PAPER_WINDOW_SIDES {
        cols.push(format!("naive {w:.0}x{w:.0}"));
        cols.push(format!("{algo_name} {w:.0}x{w:.0}"));
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = FigureTable::new(figure, title, &col_refs);
    for overlap in PAPER_OVERLAPS {
        let mut cells = vec![pct(overlap)];
        for w in PAPER_WINDOW_SIDES {
            let s = run_point(algo, &ds, &nsi, &dta, scale, overlap, w);
            cells.push(metric.subsequent(&s.naive));
            cells.push(metric.subsequent(&s.dq));
        }
        table.row(cells);
    }
    table
}

/// Run, print and persist one figure — the whole body of each binary.
pub fn emit(table: FigureTable) {
    table.print();
    table.write_json();
}
