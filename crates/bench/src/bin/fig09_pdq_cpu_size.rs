//! Reproduces **Fig. 9** — impact of query size on the CPU performance of
//! subsequent queries (PDQ).
use bench::figures::{emit, size_figure, Algo, Metric};

fn main() {
    emit(size_figure(
        "fig09",
        "Impact of query size on CPU of subsequent queries (PDQ)",
        Algo::Pdq,
        Metric::Cpu,
    ));
}
