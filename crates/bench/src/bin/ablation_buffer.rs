//! Ablation: can a server-side LRU buffer substitute for PDQ?
//!
//! §4 argues no: "buffering takes place at the client … If each session
//! used a buffer on the server, then the server's ability to handle
//! multiple sessions would be diminished." This bench grants the naive
//! approach a per-session LRU buffer pool of increasing size and measures
//! the *true* disk accesses behind the cache, against PDQ with no buffer
//! at all.

use bench::{f2, FigureTable, Scale};
use mobiquery::NaiveEngine;
use storage::{BufferPool, PageStore, Pager};
use workload::{measure_pdq, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let specs = QueryWorkload::new(scale.query_config(0.9, 8.0)).generate();

    let mut table = FigureTable::new(
        "ablation_buffer",
        "Naive + per-session LRU buffer vs unbuffered PDQ (overlap 90%)",
        &[
            "configuration",
            "buffer pages",
            "disk reads/query",
            "hit ratio",
        ],
    );

    // PDQ, no buffer.
    let plain_tree = ds.build_nsi_tree();
    let pdq = measure_pdq(&plain_tree, &specs);
    table.row(vec![
        "PDQ (no buffer)".into(),
        "0".into(),
        f2(pdq.sub_disk),
        "-".into(),
    ]);

    // Naive behind LRU buffers of growing size.
    for cap in [8usize, 32, 128, 512] {
        let tree = ds.build_nsi_tree_on(BufferPool::new(Pager::new(), cap));
        tree.store().clear(); // cold cache after build
        let engine = NaiveEngine::new();
        let mut frames = 0u64;
        let before = tree.store().io();
        for spec in &specs {
            tree.store().clear(); // each session starts cold
            for q in spec.snapshots() {
                engine.query_nsi(&tree, &q, |_| {});
                frames += 1;
            }
        }
        let reads = (tree.store().io() - before).reads;
        let cs = tree.store().cache_stats();
        table.row(vec![
            "naive + LRU".into(),
            cap.to_string(),
            f2(reads as f64 / frames as f64),
            format!("{:.1}%", cs.hit_ratio() * 100.0),
        ]);
    }
    table.print();
    table.write_json();
}
