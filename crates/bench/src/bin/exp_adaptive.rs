//! Experiment: automated PDQ↔NPDQ hand-off (future work (iv)).
//!
//! Observers follow piecewise-linear paths that change heading every
//! `leg` seconds (the paper's "the user changes her motion parameters …
//! every few seconds"). Three strategies answer the same frame stream:
//!
//! * NPDQ-only — every frame through the non-predictive engine;
//! * oracle PDQ — one PDQ over the *true* trajectory (a lower bound:
//!   requires knowing the path in advance);
//! * adaptive — the [`mobiquery::AdaptiveSession`] hand-off policy.

use bench::{f2, FigureTable, Scale};
use mobiquery::{AdaptiveConfig, AdaptiveSession, NpdqEngine, PdqEngine, Trajectory};
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();

    let mut table = FigureTable::new(
        "exp_adaptive",
        "PDQ↔NPDQ hand-off on piecewise trajectories (90% overlap legs)",
        &[
            "strategy",
            "disk/frame",
            "cpu/frame",
            "mode switches/dq",
            "objects/dq",
        ],
    );

    // Piecewise trajectories: reuse the bouncing generator — its key
    // snapshots are exactly heading changes.
    let mut cfg = scale.query_config(0.9, 8.0);
    cfg.count = cfg.count.min(50);
    cfg.subsequent_frames = 100; // longer runs so hand-offs can settle
    let specs = QueryWorkload::new(cfg).generate();

    // --- NPDQ only ---
    let (mut disk, mut cpu, mut objs, mut frames) = (0u64, 0u64, 0u64, 0u64);
    for spec in &specs {
        let mut e = NpdqEngine::new();
        for (i, _) in spec.frame_times.iter().enumerate() {
            let s = e.execute(&dta, &spec.open_snapshot(i), f64::INFINITY, |_| {});
            disk += s.disk_accesses;
            cpu += s.distance_computations;
            objs += s.results;
            frames += 1;
        }
    }
    table.row(vec![
        "NPDQ only".into(),
        f2(disk as f64 / frames as f64),
        f2(cpu as f64 / frames as f64),
        "0".into(),
        f2(objs as f64 / specs.len() as f64),
    ]);

    // --- Oracle PDQ (knows the whole trajectory) ---
    let (mut disk, mut cpu, mut objs, mut frames) = (0u64, 0u64, 0u64, 0u64);
    for spec in &specs {
        let mut e = PdqEngine::start(&nsi, spec.trajectory.clone());
        for w in spec.frame_times.windows(2) {
            objs += e.drain_window(&nsi, w[0], w[1]).len() as u64;
            let s = e.take_stats();
            disk += s.disk_accesses;
            cpu += s.distance_computations;
            frames += 1;
        }
    }
    table.row(vec![
        "oracle PDQ".into(),
        f2(disk as f64 / frames as f64),
        f2(cpu as f64 / frames as f64),
        "0".into(),
        f2(objs as f64 / specs.len() as f64),
    ]);

    // --- Adaptive hand-off ---
    let (mut disk, mut cpu, mut objs, mut frames, mut switches) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for spec in &specs {
        let mut s = AdaptiveSession::new(AdaptiveConfig::default());
        for &t in &spec.frame_times {
            let w: Trajectory<2> = spec.trajectory.clone();
            let f = s.frame(&nsi, &dta, t, &w.window_at(t));
            disk += f.stats.disk_accesses;
            cpu += f.stats.distance_computations;
            objs += f.new_objects.len() as u64;
            frames += 1;
        }
        switches += s.mode_switches() as u64;
    }
    table.row(vec![
        "adaptive".into(),
        f2(disk as f64 / frames as f64),
        f2(cpu as f64 / frames as f64),
        f2(switches as f64 / specs.len() as f64),
        f2(objs as f64 / specs.len() as f64),
    ]);

    table.print();
    table.write_json();
}
