//! Reproduces **Fig. 12** — impact of query size on the I/O performance
//! of subsequent queries (NPDQ).
use bench::figures::{emit, size_figure, Algo, Metric};

fn main() {
    emit(size_figure(
        "fig12",
        "Impact of query size on I/O of subsequent queries (NPDQ)",
        Algo::Npdq,
        Metric::Io,
    ));
}
