//! The network front door under load and under chaos.
//!
//! Stands the [`server::NetServer`] up on a loopback socket and drives
//! it with real protocol clients — the serving core, frame clocks,
//! bounded outboxes, credit flow control, and the wire codec all in the
//! measured path. Two runs:
//!
//! * **clean** — every client well-behaved; reports per-session
//!   frames/s (client wall clock to the last delta) and p99 frame
//!   latency (server-side `latency_ns` carried in each `Delta`, so
//!   pump pacing and socket buffering don't pollute it).
//! * **chaos** — the *same* session layout, but the two clients
//!   pinned to region 0 misbehave: one stalls (stops granting
//!   credit — the slow-reader path) and one vanishes mid-frame
//!   (socket dropped without a goodbye). Both must be evicted; the
//!   healthy sessions must keep >= 0.9× their aggregate clean-run
//!   frames/s and deliver bit-identical results. Identical layouts
//!   mean the ratio isolates eviction fallout from plain added load.
//!
//! `tools/check.sh --net-smoke` re-checks the emitted JSON: aggregate
//! healthy fps ratio >= 0.9, evictions == 2, p99 under the ceiling.
//!
//! A whole run takes tens of milliseconds in release mode, so a single
//! shot's frames/s is dominated by scheduler noise; each mode runs
//! `DQ_NET_REPEATS` times — interleaved, alternating which mode goes
//! first — and a session's pace is its best repeat (noise is
//! one-sided: a descheduled thread only ever looks slower). The gate
//! sums the healthy sessions' paces and samples adaptively (up to 3×
//! the configured repeats) while it sits under the floor; per-session
//! ratios stay in the table as information. The correctness asserts
//! (bit-identity, evictions) hold on *every* repeat.
//!
//! Knobs: `DQ_NET_SESSIONS` (healthy sessions, default 3, one per
//! region beyond region 0), `DQ_NET_FRAMES` (default 30),
//! `DQ_NET_REPEATS` (default 3).

use std::time::Instant;

use bench::{f2, FigureTable};
use mobiquery::{
    PartitionedDqServer, RegionGrid, SessionKind, SessionPlan, SessionSpec, Trajectory,
};
use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use server::{ClientBehavior, ClientOutcome, NetClient, NetServer, ServerConfig};
use std::time::Duration;
use stkit::{Interval, Rect};
use storage::Pager;

type R = NsiSegmentRecord<2>;

/// Width of each region's slab on the x axis.
const SLAB: f64 = 25.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Dense preload line per slab, alive the whole run.
fn preload(regions: usize, per_region: u32) -> Vec<R> {
    let mut recs = Vec::new();
    for r in 0..regions as u32 {
        for i in 0..per_region {
            let x = f64::from(r) * SLAB + (0.5 + f64::from(i) * (SLAB - 1.0) / f64::from(per_region));
            let oid = r * 10_000 + i;
            recs.push(R::new(oid, 0, Interval::new(0.0, 1_000.0), [x, 0.5], [x, 0.5]));
        }
    }
    recs
}

/// Per-frame batches landing one fresh object in every region.
fn inserts(regions: usize, frames: usize) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = k as f64;
            (0..regions as u32)
                .map(|r| {
                    let oid = 50_000 + (k as u32) * regions as u32 + r;
                    let x = f64::from(r) * SLAB + 1.0 + f64::from(oid % 20);
                    (R::new(oid, 0, Interval::new(t, 1_000.0), [x, 0.5], [x, 0.5]), t)
                })
                .collect()
        })
        .collect()
}

/// One PDQ session sweeping inside region `r`'s slab only.
fn slab_plan(r: usize, frames: usize) -> SessionPlan<2> {
    let x0 = r as f64 * SLAB + 1.0;
    let span = frames as f64;
    let speed = (SLAB - 4.0) / span;
    SessionPlan::new(SessionSpec {
        kind: SessionKind::Pdq,
        trajectory: Trajectory::linear(
            Rect::from_corners([x0, 0.0], [x0 + 2.0, 1.0]),
            [speed, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames).map(|k| k as f64).collect(),
    })
}

fn build_core(regions: usize) -> PartitionedDqServer<2, Pager> {
    let grid = RegionGrid::uniform(0, Interval::new(0.0, regions as f64 * SLAB), regions);
    PartitionedDqServer::build(grid, &preload(regions, 200), |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

struct SessionFigures {
    fps: f64,
    p99_us: f64,
    results: Vec<(u32, u32)>,
    outcome: String,
}

fn drive(
    addr: std::net::SocketAddr,
    plan: SessionPlan<2>,
    behavior: ClientBehavior,
) -> SessionFigures {
    let started = Instant::now();
    let mut c = NetClient::connect(addr).expect("connect");
    c.hello(&plan, 8).expect("hello io").expect("admitted");

    // Well-behaved measurement path: fps is deltas over the wall time
    // to the LAST delta — `Done` only arrives once the whole batch's
    // serving run returns, which in the chaos run includes the
    // misbehaving sessions' eviction deadlines.
    if behavior == ClientBehavior::WellBehaved {
        let mut deltas: Vec<server::ClientDelta> = Vec::new();
        let mut last = started;
        let outcome = loop {
            match c.next_msg() {
                Ok(server::Msg::Delta {
                    frame,
                    latency_ns,
                    results,
                }) => {
                    deltas.push((frame, latency_ns, results));
                    last = Instant::now();
                    let _ = c.grant(1);
                }
                Ok(server::Msg::Done { .. }) => break "done".to_string(),
                Ok(server::Msg::Evicted { reason }) => break format!("evicted:{reason:?}"),
                Ok(_) | Err(_) => break "lost".to_string(),
            }
        };
        let secs = (last - started).as_secs_f64();
        return SessionFigures {
            fps: deltas.len() as f64 / secs.max(1e-9),
            p99_us: p99_us(&deltas),
            results: deltas.iter().flat_map(|(_, _, r)| r.iter().copied()).collect(),
            outcome,
        };
    }

    let run = c.run(behavior);
    let secs = started.elapsed().as_secs_f64();
    SessionFigures {
        fps: run.deltas.len() as f64 / secs.max(1e-9),
        p99_us: p99_us(&run.deltas),
        results: run.results(),
        outcome: match run.outcome {
            ClientOutcome::Done { .. } => "done".into(),
            ClientOutcome::Evicted(r) => format!("evicted:{r:?}"),
            ClientOutcome::ConnectionLost => "lost".into(),
        },
    }
}

/// p99 of the server-side per-frame latencies carried in the deltas, µs.
fn p99_us(deltas: &[server::ClientDelta]) -> f64 {
    let mut lat: Vec<u64> = deltas.iter().map(|(_, ns, _)| *ns).collect();
    lat.sort_unstable();
    if lat.is_empty() {
        return 0.0;
    }
    let idx = (lat.len() as f64 * 0.99).ceil() as usize - 1;
    lat[idx.min(lat.len() - 1)] as f64 / 1e3
}

/// Serve `plans` over loopback, driving `behaviors[i]` against plan i.
/// All sessions land in one gather batch.
fn run_over_net(
    regions: usize,
    frames: usize,
    plans: &[SessionPlan<2>],
    behaviors: &[ClientBehavior],
) -> (Vec<SessionFigures>, server::ServerSummary) {
    let config = ServerConfig {
        workers: plans.len().max(2),
        max_sessions: plans.len(),
        max_per_ip: plans.len(),
        min_gather: plans.len(),
        gather_window: Duration::from_secs(10),
        write_deadline: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(
        build_core(regions),
        vec![inserts(regions, frames)],
        "127.0.0.1:0",
        config,
    )
    .expect("start net server");
    let addr = handle.addr();
    // Connect + admit sequentially (pins session order to plan order),
    // then drive every client concurrently.
    let threads: Vec<_> = plans
        .iter()
        .zip(behaviors)
        .map(|(plan, behavior)| {
            let (plan, behavior) = (plan.clone(), *behavior);
            std::thread::spawn(move || drive(addr, plan, behavior))
        })
        .collect();
    let figures = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    (figures, handle.shutdown())
}

/// Fold repeat runs into one figure per session: best (max) frames/s,
/// best (min) p99 — scheduler noise only ever makes both look worse.
fn best_of(repeats: &[Vec<SessionFigures>]) -> Vec<(f64, f64)> {
    (0..repeats[0].len())
        .map(|i| {
            let fps = repeats.iter().map(|r| r[i].fps).fold(0.0, f64::max);
            let p99 = repeats
                .iter()
                .map(|r| r[i].p99_us)
                .fold(f64::INFINITY, f64::min);
            (fps, p99)
        })
        .collect()
}

fn main() {
    let healthy = env_usize("DQ_NET_SESSIONS", 3).max(1);
    let frames = env_usize("DQ_NET_FRAMES", 30);
    let repeats = env_usize("DQ_NET_REPEATS", 3).max(1);
    let regions = healthy + 1; // region 0 is the chaos slab

    // Session layout, identical in both runs: `healthy` sessions, one
    // per region 1..=healthy, plus two sessions confined to region 0.
    // The runs differ ONLY in the region-0 clients' behavior, so the
    // fps ratio isolates eviction fallout from plain added load.
    let mut plans: Vec<SessionPlan<2>> =
        (1..=healthy).map(|r| slab_plan(r, frames)).collect();
    plans.push(slab_plan(0, frames)); // staller-to-be
    plans.push(slab_plan(0, frames)); // vanisher-to-be

    // Oracle: the serial in-process run the wire stream must reproduce.
    let oracle = build_core(regions).serve_serial_plans(&plans, &inserts(regions, frames));

    // Clean and chaos repeats run interleaved: on a busy (or
    // single-core) machine the host's pace drifts over seconds, and
    // running all of one mode before the other would fold that drift
    // into the ratio. Every repeat of both modes is fully checked.
    let behaviors = vec![ClientBehavior::WellBehaved; plans.len()];
    let mut chaos_behaviors = vec![ClientBehavior::WellBehaved; healthy];
    chaos_behaviors.push(ClientBehavior::StallAfter(1));
    chaos_behaviors.push(ClientBehavior::VanishAfter(2));
    let run_clean = |rep: usize| {
        let (clean, summary) = run_over_net(regions, frames, &plans, &behaviors);
        assert_eq!(summary.evicted, 0, "clean repeat {rep} must evict nobody");
        for (i, s) in clean.iter().enumerate() {
            assert_eq!(s.outcome, "done", "clean repeat {rep} session {i}");
            assert_eq!(
                s.results, oracle.base.sessions[i].results,
                "clean repeat {rep} session {i}: wire results vs serial oracle"
            );
        }
        clean
    };
    let run_chaos = |rep: usize| {
        let (chaos, summary) = run_over_net(regions, frames, &plans, &chaos_behaviors);
        assert_eq!(
            summary.evicted, 2,
            "chaos repeat {rep}: both misbehaving clients must be evicted"
        );
        for (i, s) in chaos.iter().take(healthy).enumerate() {
            assert_eq!(s.outcome, "done", "chaos repeat {rep} healthy session {i}");
            assert_eq!(
                s.results, oracle.base.sessions[i].results,
                "chaos repeat {rep} healthy session {i}: wire results vs serial oracle"
            );
        }
        assert!(
            chaos[healthy].outcome.contains("evicted") || chaos[healthy].outcome == "lost",
            "chaos repeat {rep}: the staller must not finish cleanly: {}",
            chaos[healthy].outcome
        );
        chaos
    };
    // Best-of estimation is adaptive: after the configured repeats,
    // keep adding clean+chaos pairs (up to 3x) while the aggregate
    // ratio sits under the floor. On a noisy host a miss is a sampling
    // artifact that more samples repair — both maxima only go up, and
    // their ratio converges to the true pace ratio — while a genuine
    // chaos-induced slowdown still fails at the cap.
    let agg = |best: &[(f64, f64)]| best[..healthy].iter().map(|b| b.0).sum::<f64>();
    let mut clean_runs = Vec::new();
    let mut chaos_runs = Vec::new();
    let (clean_best, chaos_best, agg_ratio) = loop {
        let rep = clean_runs.len();
        // Alternate which mode goes first: a throttled or cooling host
        // penalizes whatever runs later, and a fixed order would fold
        // that bias into the ratio.
        if rep % 2 == 0 {
            clean_runs.push(run_clean(rep));
            chaos_runs.push(run_chaos(rep));
        } else {
            chaos_runs.push(run_chaos(rep));
            clean_runs.push(run_clean(rep));
        }
        if rep + 1 < repeats {
            continue;
        }
        let clean_best = best_of(&clean_runs);
        let chaos_best = best_of(&chaos_runs);
        let ratio = agg(&chaos_best) / agg(&clean_best);
        if ratio >= 0.9 || rep + 1 >= repeats * 3 {
            break (clean_best, chaos_best, ratio);
        }
        eprintln!("# aggregate ratio {ratio:.2} after {} repeats; sampling more", rep + 1);
    };
    let repeats = clean_runs.len();
    let clean = clean_runs.last().unwrap();
    let chaos = chaos_runs.last().unwrap();

    let mut table = FigureTable::new(
        "exp_service_net",
        "network front door: loopback sessions, clean vs chaos (stall + vanish)",
        &[
            "mode",
            "session",
            "region",
            "frames/s",
            "p99 us",
            "fps ratio",
            "outcome",
        ],
    );
    let region_of = |i: usize| if i < healthy { i + 1 } else { 0 };
    for (i, &(fps, p99)) in clean_best.iter().enumerate() {
        table.row(vec![
            "clean".into(),
            i.to_string(),
            region_of(i).to_string(),
            f2(fps),
            f2(p99),
            f2(1.0),
            clean[i].outcome.clone(),
        ]);
    }
    for (i, &(fps, p99)) in chaos_best.iter().enumerate() {
        let ratio = if i < healthy {
            fps / clean_best[i].0
        } else {
            0.0
        };
        table.row(vec![
            "chaos".into(),
            i.to_string(),
            region_of(i).to_string(),
            f2(fps),
            f2(p99),
            f2(ratio),
            chaos[i].outcome.clone(),
        ]);
    }
    table.print();
    table.write_json();

    // The gate is the AGGREGATE healthy pace: per-session ratios on a
    // loaded (or single-core) host carry ±20% scheduler noise that a
    // min-over-sessions would turn into flaky failures; summing the
    // healthy sessions' best paces averages the noise out while still
    // catching any chaos-induced slowdown of the healthy population.
    eprintln!(
        "# chaos: staller {}, vanisher {}, aggregate healthy fps ratio {:.2} (best of {repeats})",
        chaos[healthy].outcome,
        chaos[healthy + 1].outcome,
        agg_ratio
    );
    assert!(
        agg_ratio >= 0.9,
        "the healthy sessions fell to {agg_ratio:.2}x of their aggregate clean-run pace"
    );
}
