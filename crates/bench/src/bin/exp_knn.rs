//! Experiment: moving-query-point kNN (the paper's future work (i)).
//!
//! Compares per-instant fresh best-first kNN searches against the
//! bound-reusing [`mobiquery::MovingKnn`], over observer trajectories of
//! different speeds — the same overlap axis as the range-query figures.

use bench::{f2, pct, FigureTable, Scale, PAPER_OVERLAPS};
use mobiquery::{knn_at, MovingKnn, QueryStats};
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let tree = ds.build_nsi_tree();
    let k = 10;
    // Objects move at ≈1 unit/tu; 2.0 is a safe speed bound for the
    // MovingKnn bound-transfer.
    let max_speed = 2.0;

    let mut table = FigureTable::new(
        "exp_knn",
        "Moving kNN (k=10): fresh searches vs bound reuse",
        &[
            "overlap",
            "fresh cpu/query",
            "reuse cpu/query",
            "fresh disk/query",
            "reuse disk/query",
        ],
    );

    for overlap in PAPER_OVERLAPS {
        let mut cfg = scale.query_config(overlap, 8.0);
        cfg.count = cfg.count.min(50);
        let specs = QueryWorkload::new(cfg).generate();
        let mut fresh = QueryStats::default();
        let mut reuse = QueryStats::default();
        let mut frames = 0u64;
        for spec in &specs {
            let mut mov = MovingKnn::new(k, max_speed);
            for &t in &spec.frame_times {
                let w = spec.trajectory.window_at(t);
                let p = w.center();
                let _ = knn_at(&tree, p, t, k, f64::INFINITY, &mut fresh);
                let _ = mov.query(&tree, t, p, &mut reuse);
                frames += 1;
            }
        }
        table.row(vec![
            pct(overlap),
            f2(fresh.distance_computations as f64 / frames as f64),
            f2(reuse.distance_computations as f64 / frames as f64),
            f2(fresh.disk_accesses as f64 / frames as f64),
            f2(reuse.disk_accesses as f64 / frames as f64),
        ]);
    }
    table.print();
    table.write_json();
}
