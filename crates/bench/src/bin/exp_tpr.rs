//! Experiment: dynamic queries over the TPR-tree (future work (iii)).
//!
//! The TPR-tree indexes one *current motion* per object (the latest
//! update, assumed valid until the next), so it answers now-and-future
//! dynamic queries with one entry per object instead of one per
//! historical segment. This sweep runs the same dynamic-query
//! trajectories against:
//!
//! * the NSI segment index + PDQ (the paper's main algorithm), and
//! * the TPR-tree + the TPR dynamic-query engine,
//!
//! comparing per-frame I/O and CPU. Result sets differ by design (NSI
//! sees full history; TPR sees the currently-known motions), so the
//! table also reports objects delivered.

use bench::{f2, pct, FigureTable, Scale, PAPER_OVERLAPS};
use mobiquery::PdqEngine;
use rtree::{RTree, RTreeConfig};
use storage::Pager;
use tprtree::{TprDynamicQuery, TprRecord};
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let nsi = ds.build_nsi_tree();

    // TPR-tree state at each object's *latest* update before the query
    // span; for simplicity index every update as a motion valid until the
    // object's next update (known from the trace) — the "historical
    // TPR" variant that supports queries anywhere in the data window.
    let mut tpr: RTree<TprRecord, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
    for u in ds.updates() {
        tpr.insert(
            TprRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.v),
            u.seg.t.lo,
        );
    }

    let mut table = FigureTable::new(
        "exp_tpr",
        "Dynamic queries: NSI+PDQ vs TPR-tree engine (8×8 window)",
        &[
            "overlap",
            "PDQ disk/frame",
            "TPR disk/frame",
            "PDQ cpu/frame",
            "TPR cpu/frame",
            "PDQ objs/dq",
            "TPR objs/dq",
        ],
    );

    for overlap in PAPER_OVERLAPS {
        let mut cfg = scale.query_config(overlap, 8.0);
        cfg.count = cfg.count.min(100);
        let specs = QueryWorkload::new(cfg).generate();
        let (mut pd, mut td, mut pc, mut tc, mut po, mut to, mut frames) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for spec in &specs {
            let mut pdq = PdqEngine::start(&nsi, spec.trajectory.clone());
            let mut tdq = TprDynamicQuery::start(&tpr, spec.trajectory.clone());
            for w in spec.frame_times.windows(2) {
                po += pdq.drain_window(&nsi, w[0], w[1]).len() as u64;
                to += tdq.drain_window(&tpr, w[0], w[1]).len() as u64;
                let ps = pdq.take_stats();
                let ts = tdq.take_stats();
                pd += ps.disk_accesses;
                td += ts.disk_accesses;
                pc += ps.distance_computations;
                tc += ts.distance_computations;
                frames += 1;
            }
        }
        let n = specs.len() as f64;
        table.row(vec![
            pct(overlap),
            f2(pd as f64 / frames as f64),
            f2(td as f64 / frames as f64),
            f2(pc as f64 / frames as f64),
            f2(tc as f64 / frames as f64),
            f2(po as f64 / n),
            f2(to as f64 / n),
        ]);
    }
    table.print();
    table.write_json();
}
