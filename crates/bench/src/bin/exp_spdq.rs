//! Experiment: SPDQ cost vs deviation bound δ (§4).
//!
//! SPDQ runs PDQ over the δ-inflated trajectory, so each snapshot is
//! "larger" than the plain PDQ one. This sweep quantifies the price of
//! deviation tolerance: subsequent-query I/O and objects fetched, as δ
//! grows from 0 (plain PDQ) to a full window width.

use bench::{f2, FigureTable, Scale};
use mobiquery::spdq::SpdqSession;
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let tree = ds.build_nsi_tree();
    let specs = QueryWorkload::new(scale.query_config(0.9, 8.0)).generate();

    let mut table = FigureTable::new(
        "exp_spdq",
        "SPDQ: cost of deviation tolerance (overlap 90%, 8×8 window)",
        &[
            "delta",
            "disk/query",
            "cpu/query",
            "objects/dq",
            "overhead vs PDQ",
        ],
    );

    let mut base_disk = None;
    for delta in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let (mut disk, mut cpu, mut results, mut frames) = (0u64, 0u64, 0u64, 0u64);
        for spec in &specs {
            let mut s = SpdqSession::start(&tree, spec.trajectory.clone(), delta);
            let t0 = spec.frame_times[0];
            results += s.engine_mut().drain_window(&tree, t0, t0).len() as u64;
            let _ = s.engine_mut().take_stats();
            for w in spec.frame_times.windows(2) {
                results += s.engine_mut().drain_window(&tree, w[0], w[1]).len() as u64;
                let st = s.engine_mut().take_stats();
                disk += st.disk_accesses;
                cpu += st.distance_computations;
                frames += 1;
            }
        }
        let d = disk as f64 / frames as f64;
        let base = *base_disk.get_or_insert(d);
        table.row(vec![
            f2(delta),
            f2(d),
            f2(cpu as f64 / frames as f64),
            f2(results as f64 / specs.len() as f64),
            format!("{:+.1}%", (d / base - 1.0) * 100.0),
        ]);
    }
    table.print();
    table.write_json();
}
