//! Ablation: the two discardability layouts of §4.2 Fig. 5.
//!
//! (a) open-ended temporal range queries over the **NSI** index (single
//!     temporal axis), vs
//! (b) the **double-temporal-axes** index the paper's implementation
//!     chose.
//!
//! Both trees are spatially STR-clustered and hold identical segments;
//! the same open-ended snapshot stream runs through `NpdqEngine` (the
//! engine is layout-generic). The DTA layout separates "still alive" on
//! its own axis, so its key space discriminates old segments better.

use bench::{f2, pct, FigureTable, Scale, PAPER_OVERLAPS};
use mobiquery::NpdqEngine;
use rtree::bulk::bulk_load;
use rtree::{NsiSegmentRecord, RTreeConfig};
use storage::Pager;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let dta = ds.build_dta_tree();
    let nsi_spatial = {
        let cfg = RTreeConfig {
            bulk_leading_axes: Some(2),
            ..RTreeConfig::default()
        };
        let recs: Vec<NsiSegmentRecord<2>> = ds.nsi_records();
        bulk_load(Pager::new(), cfg, recs)
    };

    let mut table = FigureTable::new(
        "ablation_npdq_axes",
        "NPDQ layouts: open-ended over NSI (Fig. 5a) vs double temporal axes (Fig. 5b)",
        &[
            "overlap",
            "NSI disk/query",
            "DTA disk/query",
            "NSI cpu/query",
            "DTA cpu/query",
        ],
    );
    for overlap in PAPER_OVERLAPS {
        let specs = bench::build_queries(scale, overlap, 8.0);
        let (mut nd, mut dd, mut nc, mut dc, mut frames) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for spec in &specs {
            let mut e_nsi = NpdqEngine::new();
            let mut e_dta = NpdqEngine::new();
            for (i, _) in spec.frame_times.iter().enumerate() {
                let q = spec.open_snapshot(i);
                let sn = e_nsi.execute(&nsi_spatial, &q, f64::INFINITY, |_| {});
                let sd = e_dta.execute(&dta, &q, f64::INFINITY, |_| {});
                if i > 0 {
                    nd += sn.disk_accesses;
                    dd += sd.disk_accesses;
                    nc += sn.distance_computations;
                    dc += sd.distance_computations;
                    frames += 1;
                }
            }
        }
        table.row(vec![
            pct(overlap),
            f2(nd as f64 / frames as f64),
            f2(dd as f64 / frames as f64),
            f2(nc as f64 / frames as f64),
            f2(dc as f64 / frames as f64),
        ]);
    }
    table.print();
    table.write_json();
}
