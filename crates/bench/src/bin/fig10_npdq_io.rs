//! Reproduces **Fig. 10** — I/O performance of NPDQ over the
//! double-temporal-axes index: naive vs NPDQ, first vs subsequent.
use bench::figures::{emit, overlap_figure, Algo, Metric};

fn main() {
    emit(overlap_figure(
        "fig10",
        "I/O performance of NPDQ (disk accesses/query, leaf/total)",
        Algo::Npdq,
        Metric::Io,
    ));
}
