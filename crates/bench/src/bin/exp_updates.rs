//! Experiment: update management under concurrent insertions (§4.1/§4.2).
//!
//! A PDQ runs while new motion segments stream into the index. The bench
//! verifies the correctness contract (every object that becomes visible
//! is delivered exactly once) and measures the overhead: duplicates
//! eliminated by the §4.1 dedup, extra disk accesses versus a static run,
//! and the NPDQ timestamp mechanism's cost on the DTA side.

use bench::{f2, FigureTable, Scale};
use mobiquery::{NpdqEngine, PdqEngine};
use rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use storage::Pager;
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let cfgd = scale.dataset_config();
    let specs = QueryWorkload::new(scale.query_config(0.9, 8.0)).generate();
    let n_specs = specs.len().min(20);
    let specs = &specs[..n_specs];

    // Split the updates: the first 60 % pre-build the index, the rest
    // stream in while the queries run.
    let all = ds.updates();
    let cut_t = cfgd.duration * 0.6;
    let (pre, live): (Vec<&motion::MotionUpdate<2>>, Vec<_>) = all.iter().partition(|u| u.seg.t.lo < cut_t);

    let mut table = FigureTable::new(
        "exp_updates",
        "Concurrent insertions during dynamic queries (overlap 90%)",
        &["engine", "mode", "disk/query", "dups skipped/dq", "delivered/dq"],
    );

    // --- PDQ: static full index (reference) ---
    let mut static_tree: RTree<NsiSegmentRecord<2>, _> =
        RTree::new(Pager::new(), RTreeConfig::default());
    for u in all {
        static_tree.insert(
            NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
            u.seg.t.lo,
        );
    }
    let (mut disk, mut frames, mut delivered) = (0u64, 0u64, 0u64);
    for spec in specs {
        let mut e = PdqEngine::start(&static_tree, spec.trajectory.clone());
        for w in spec.frame_times.windows(2) {
            delivered += e.drain_window(&static_tree, w[0], w[1]).len() as u64;
            let s = e.take_stats();
            disk += s.disk_accesses;
            frames += 1;
        }
    }
    table.row(vec![
        "PDQ".into(),
        "static index".into(),
        f2(disk as f64 / frames as f64),
        "0.00".into(),
        f2(delivered as f64 / n_specs as f64),
    ]);

    // --- PDQ: live insertions during the query ---
    // Queries whose span lies beyond the pre-built portion see inserts.
    let (mut disk, mut frames, mut delivered, mut dups) = (0u64, 0u64, 0u64, 0u64);
    for spec in specs {
        let mut tree: RTree<NsiSegmentRecord<2>, _> =
            RTree::new(Pager::new(), RTreeConfig::default());
        for u in &pre {
            tree.insert(
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
        }
        let mut e = PdqEngine::start(&tree, spec.trajectory.clone());
        let mut live_iter = live.iter().peekable();
        for w in spec.frame_times.windows(2) {
            // Apply every update whose start time has passed.
            while let Some(u) = live_iter.peek() {
                if u.seg.t.lo > w[1] {
                    break;
                }
                let rec =
                    NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position());
                let report = tree.insert(rec, u.seg.t.lo);
                e.notify(&tree, &report);
                live_iter.next();
            }
            delivered += e.drain_window(&tree, w[0], w[1]).len() as u64;
            let s = e.take_stats();
            disk += s.disk_accesses;
            dups += s.duplicates_skipped;
            frames += 1;
        }
    }
    table.row(vec![
        "PDQ".into(),
        "live insertions".into(),
        f2(disk as f64 / frames as f64),
        f2(dups as f64 / n_specs as f64),
        f2(delivered as f64 / n_specs as f64),
    ]);

    // --- NPDQ with live insertions (timestamp mechanism) ---
    let (mut disk, mut frames, mut delivered) = (0u64, 0u64, 0u64);
    for spec in specs {
        let mut tree: RTree<DtaSegmentRecord<2>, _> =
            RTree::new(Pager::new(), RTreeConfig::default());
        let mut clock = 0.0f64;
        for u in &pre {
            tree.insert(
                DtaSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
            clock = clock.max(u.seg.t.lo);
        }
        let mut e = NpdqEngine::new();
        let mut live_iter = live.iter().peekable();
        for (i, _t) in spec.frame_times.iter().enumerate() {
            let q = spec.open_snapshot(i);
            while let Some(u) = live_iter.peek() {
                if u.seg.t.lo > q.time.lo {
                    break;
                }
                tree.insert(
                    DtaSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                    u.seg.t.lo,
                );
                clock = clock.max(u.seg.t.lo);
                live_iter.next();
            }
            let s = e.execute(&tree, &q, clock, |_| {});
            if i > 0 {
                disk += s.disk_accesses;
                frames += 1;
            }
            delivered += s.results;
        }
    }
    table.row(vec![
        "NPDQ".into(),
        "live insertions".into(),
        f2(disk as f64 / frames as f64),
        "-".into(),
        f2(delivered as f64 / n_specs as f64),
    ]);

    table.print();
    table.write_json();
}
