//! Reproduces **Fig. 8** — impact of query size on the I/O performance of
//! subsequent queries (PDQ): 8×8 / 14×14 / 20×20 windows.
use bench::figures::{emit, size_figure, Algo, Metric};

fn main() {
    emit(size_figure(
        "fig08",
        "Impact of query size on I/O of subsequent queries (PDQ)",
        Algo::Pdq,
        Metric::Io,
    ));
}
