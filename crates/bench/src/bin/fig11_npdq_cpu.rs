//! Reproduces **Fig. 11** — CPU performance of NPDQ.
use bench::figures::{emit, overlap_figure, Algo, Metric};

fn main() {
    emit(overlap_figure(
        "fig11",
        "CPU performance of NPDQ (distance computations/query)",
        Algo::Npdq,
        Metric::Cpu,
    ));
}
