//! Ablation: the §3.2 leaf-level exact segment test ON vs OFF.
//!
//! "Since the motion is represented as a simple line segment, it is
//! simple to test its intersection with Q directly … This saves a great
//! deal of I/O as we no longer have to retrieve motion segments that
//! don't intersect with the query, even though their BBs do."
//!
//! In this reproduction segments live inside leaf pages, so node I/O is
//! identical either way; what the exact test eliminates is *false
//! admissions* — objects shipped to the client (and rendered) that were
//! never actually in the window. The bench quantifies the false-admission
//! rate the bounding-box test would incur, per overlap level.

use bench::{f2, pct, FigureTable, Scale, PAPER_OVERLAPS};
use mobiquery::NaiveEngine;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let tree = ds.build_nsi_tree();

    let mut table = FigureTable::new(
        "ablation_leaf_exact",
        "Leaf-level exact segment test: false admissions eliminated",
        &[
            "overlap",
            "bbox results/query",
            "exact results/query",
            "false admission rate",
        ],
    );

    for overlap in PAPER_OVERLAPS {
        let specs = bench::build_queries(scale, overlap, 8.0);
        let exact = NaiveEngine::new();
        let sloppy = NaiveEngine {
            skip_exact_test: true,
        };
        let (mut bbox_results, mut exact_results, mut n) = (0u64, 0u64, 0u64);
        for spec in &specs {
            for q in spec.snapshots() {
                bbox_results += sloppy.query_nsi(&tree, &q, |_| {}).results;
                exact_results += exact.query_nsi(&tree, &q, |_| {}).results;
                n += 1;
            }
        }
        let fa = if bbox_results == 0 {
            0.0
        } else {
            1.0 - exact_results as f64 / bbox_results as f64
        };
        table.row(vec![
            pct(overlap),
            f2(bbox_results as f64 / n as f64),
            f2(exact_results as f64 / n as f64),
            format!("{:.1}%", fa * 100.0),
        ]);
    }
    table.print();
    table.write_json();
}
