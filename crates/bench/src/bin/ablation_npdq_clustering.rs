//! Ablation: index clustering × query shape for NPDQ discardability.
//!
//! A reproduction finding documented in EXPERIMENTS.md: with the paper's
//! workload (≈1-time-unit segment lifetimes), *instant* delta queries can
//! never benefit from Lemma 1 — every node holding currently-alive
//! segments also holds freshly-started ones, so `(Q∩R).t_start ⊆ P`
//! fails; and time-clustered leaves are spatially huge, so the spatial
//! containment fails too. The §4.2 open-ended query shape fixes the
//! temporal axis, and spatial-only clustering fixes the spatial one.
//! This bench measures all combinations.

use bench::{f2, FigureTable, Scale};
use mobiquery::{NaiveEngine, NpdqEngine, SnapshotQuery};
use rtree::bulk::bulk_load;
use rtree::{DtaSegmentRecord, RTree, RTreeConfig};
use storage::Pager;
use workload::{DynamicQuerySpec, QueryWorkload};

fn run(
    tree: &RTree<DtaSegmentRecord<2>, Pager>,
    specs: &[DynamicQuerySpec],
    open_ended: bool,
) -> (f64, f64) {
    let naive = NaiveEngine::new();
    let (mut npdq_disk, mut naive_disk, mut frames) = (0u64, 0u64, 0u64);
    for spec in specs {
        let mut eng = NpdqEngine::new();
        for (i, t) in spec.frame_times.iter().enumerate() {
            let q = if open_ended {
                spec.open_snapshot(i)
            } else {
                SnapshotQuery::at_instant(spec.trajectory.window_at(*t), *t)
            };
            let s = eng.execute(tree, &q, f64::INFINITY, |_| {});
            let ns = naive.query_dta(tree, &q, |_| {});
            if i > 0 {
                npdq_disk += s.disk_accesses;
                naive_disk += ns.disk_accesses;
                frames += 1;
            }
        }
    }
    (
        naive_disk as f64 / frames as f64,
        npdq_disk as f64 / frames as f64,
    )
}

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let specs = QueryWorkload::new(scale.query_config(0.9, 8.0)).generate();

    let spatial = ds.build_dta_tree(); // STR, spatial-only tiling
    let balanced = bulk_load(Pager::new(), RTreeConfig::default(), ds.dta_records());
    let inserted = ds.build_dta_tree_inserted(); // time-ordered insertion

    let mut table = FigureTable::new(
        "ablation_npdq_clustering",
        "NPDQ effectiveness vs index clustering and query shape (overlap 90%)",
        &[
            "clustering",
            "query shape",
            "naive disk/query",
            "NPDQ disk/query",
            "saving",
        ],
    );
    for (cname, tree) in [
        ("spatial STR", &spatial),
        ("balanced STR", &balanced),
        ("time-ordered insert", &inserted),
    ] {
        for (qname, open) in [("instant", false), ("open-ended", true)] {
            let (naive, npdq) = run(tree, &specs, open);
            let saving = if naive > 0.0 {
                format!("{:.1}%", (1.0 - npdq / naive) * 100.0)
            } else {
                "-".into()
            };
            table.row(vec![
                cname.into(),
                qname.into(),
                f2(naive),
                f2(npdq),
                saving,
            ]);
        }
    }
    table.print();
    table.write_json();
}
