//! Reproduces **Fig. 13** — impact of query range on the CPU performance
//! of subsequent queries (NPDQ).
use bench::figures::{emit, size_figure, Algo, Metric};

fn main() {
    emit(size_figure(
        "fig13",
        "Impact of query range on CPU of subsequent queries (NPDQ)",
        Algo::Npdq,
        Metric::Cpu,
    ));
}
