//! Straggler isolation under per-region frame clocks.
//!
//! The point of replacing the global frame barrier with per-region
//! [`mobiquery::FrameClock`]s is that a slow session back-pressures only
//! the regions its query actually touches. This bench measures exactly
//! that: four uniform regions, one PDQ session confined to each slab,
//! per-frame inserts landing in every region — run once clean, then once
//! with session 0 given an artificial per-frame consumption delay
//! ([`mobiquery::SessionPlan::with_frame_delay`]).
//!
//! Under the old barrier every session would finish at the straggler's
//! pace. Under the clocks, only region 0's writer waits for the slow
//! permit; sessions 1–3 must keep their frames/s within a whisker of the
//! clean run. `tools/check.sh --clock-smoke` enforces the bound
//! (non-stalled frames/s ratio >= 0.9) from the emitted JSON.
//!
//! Knobs: `DQ_STRAGGLER_FRAMES` (default 30), `DQ_STRAGGLER_DELAY_MS`
//! (default 3).

use bench::{f2, FigureTable};
use mobiquery::{PartitionedDqServer, RegionGrid, SessionKind, SessionPlan, SessionSpec, Trajectory};
use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use std::time::Duration;
use stkit::{Interval, Rect};
use storage::Pager;

type R = NsiSegmentRecord<2>;

const REGIONS: usize = 4;
/// Width of each region's slab on the x axis.
const SLAB: f64 = 25.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Preload: a dense line of objects per slab, alive the whole run.
fn preload(per_region: u32) -> Vec<R> {
    let mut recs = Vec::new();
    for r in 0..REGIONS as u32 {
        for i in 0..per_region {
            let x = r as f64 * SLAB + (0.5 + f64::from(i) * (SLAB - 1.0) / f64::from(per_region));
            let oid = r * 10_000 + i;
            recs.push(R::new(oid, 0, Interval::new(0.0, 1_000.0), [x, 0.5], [x, 0.5]));
        }
    }
    recs
}

/// Per-frame batches dropping one fresh object into every region, so
/// all four writers stay active and flow control is actually exercised.
fn inserts(frames: usize) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = k as f64;
            (0..REGIONS as u32)
                .map(|r| {
                    let oid = 50_000 + (k as u32) * REGIONS as u32 + r;
                    let x = r as f64 * SLAB + 1.0 + (oid % 20) as f64;
                    (R::new(oid, 0, Interval::new(t, 1_000.0), [x, 0.5], [x, 0.5]), t)
                })
                .collect()
        })
        .collect()
}

/// One PDQ session sweeping inside region `r`'s slab only (its lane set
/// is exactly one region, so it shares no clock with the others).
fn session(r: usize, frames: usize) -> SessionSpec<2> {
    let x0 = r as f64 * SLAB + 1.0;
    let span = frames as f64;
    // Sweep slowly enough to stay inside the slab.
    let speed = (SLAB - 4.0) / span;
    SessionSpec {
        kind: SessionKind::Pdq,
        trajectory: Trajectory::linear(
            Rect::from_corners([x0, 0.0], [x0 + 2.0, 1.0]),
            [speed, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames).map(|k| k as f64).collect(),
    }
}

struct RunFigures {
    /// Per-session frames per second (wall clock of that session alone).
    fps: Vec<f64>,
    /// Per-session p99 frame latency, microseconds.
    p99_us: Vec<f64>,
}

fn run(plans: &[SessionPlan<2>], frames: usize) -> RunFigures {
    let grid = RegionGrid::uniform(0, Interval::new(0.0, REGIONS as f64 * SLAB), REGIONS);
    let server = PartitionedDqServer::build(grid, &preload(200), |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    });
    let report = server.serve_plans(plans, &inserts(frames));
    assert!(report.base.writer_outcome.is_ok());
    let mut fps = Vec::new();
    let mut p99 = Vec::new();
    for (i, s) in report.sessions.iter().enumerate() {
        assert!(s.outcome.is_ok(), "session {i}: {:?}", s.outcome);
        assert_eq!(s.frames.len(), frames, "session {i} frame count");
        fps.push(s.frames.len() as f64 / (s.wall_ns.max(1) as f64 / 1e9));
        let mut lat: Vec<u64> = s.frames.iter().map(|f| f.latency_ns).collect();
        lat.sort_unstable();
        let idx = (lat.len() as f64 * 0.99).ceil() as usize - 1;
        p99.push(lat[idx.min(lat.len() - 1)] as f64 / 1e3);
    }
    RunFigures { fps, p99_us: p99 }
}

fn main() {
    let frames = env_usize("DQ_STRAGGLER_FRAMES", 30);
    let delay_ms = env_usize("DQ_STRAGGLER_DELAY_MS", 3);

    let specs: Vec<SessionSpec<2>> = (0..REGIONS).map(|r| session(r, frames)).collect();
    let clean: Vec<SessionPlan<2>> = specs.iter().cloned().map(SessionPlan::new).collect();
    let mut stalled = clean.clone();
    stalled[0] = stalled[0]
        .clone()
        .with_frame_delay(Duration::from_millis(delay_ms as u64));

    let baseline = run(&clean, frames);
    let straggler = run(&stalled, frames);

    let mut table = FigureTable::new(
        "exp_service_straggler",
        "per-region clocks: one slow session must not stall the other regions",
        &[
            "region",
            "span",
            "baseline fps",
            "straggler fps",
            "ratio",
            "baseline p99 us",
            "straggler p99 us",
            "straggler?",
        ],
    );
    for r in 0..REGIONS {
        let ratio = straggler.fps[r] / baseline.fps[r];
        table.row(vec![
            format!("{r}"),
            format!("[{:.0}, {:.0})", r as f64 * SLAB, (r + 1) as f64 * SLAB),
            f2(baseline.fps[r]),
            f2(straggler.fps[r]),
            f2(ratio),
            f2(baseline.p99_us[r]),
            f2(straggler.p99_us[r]),
            if r == 0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    table.write_json();

    // The straggler itself must actually have been slowed (or the run
    // proves nothing): its frame pace is bounded by the injected delay.
    let floor = frames as f64 / ((frames * delay_ms) as f64 / 1e3);
    assert!(
        straggler.fps[0] <= floor * 1.5,
        "straggler fps {:.1} not bounded by its delay (floor {:.1})",
        straggler.fps[0],
        floor
    );
}
