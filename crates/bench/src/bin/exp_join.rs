//! Experiment: spatio-temporal distance self-join (future work (ii)).
//!
//! "Which pairs of objects pass within δ of each other?" over increasing
//! δ, comparing the dual-tree join against quadratic brute force on the
//! workload data (both produce identical pairs; the table shows the
//! pruning factor).

use bench::{f2, FigureTable, Scale};
use mobiquery::self_distance_join;
use stkit::{within_distance, Interval};
use workload::{Dataset, DatasetConfig};

fn main() {
    let scale = Scale::from_env();
    // The join is quadratic-ish in density; use a slice of the data set.
    let base = scale.dataset_config();
    let ds = Dataset::generate(DatasetConfig {
        objects: base.objects.min(1000),
        duration: base.duration.min(10.0),
        ..base
    });
    eprintln!("# join dataset: {} segments", ds.segment_count());
    let tree = ds.build_nsi_tree();
    let window = Interval::new(0.0, base.duration.min(10.0));

    let mut table = FigureTable::new(
        "exp_join",
        "Distance self-join: dual-tree vs brute force",
        &[
            "delta",
            "pairs",
            "join cpu (cmp)",
            "brute cpu (cmp)",
            "pruning factor",
            "join disk",
        ],
    );

    let updates = ds.updates();
    for delta in [0.25, 0.5, 1.0, 2.0] {
        let mut pairs = std::collections::BTreeSet::new();
        let stats = self_distance_join(&tree, delta, window, |p| {
            pairs.insert((
                p.a.oid.min(p.b.oid),
                p.a.oid.max(p.b.oid),
                p.a.seq,
                p.b.seq,
            ));
        });
        // Brute force count of pair comparisons (n²/2 segment pairs).
        let mut brute_pairs = std::collections::BTreeSet::new();
        let mut brute_cmp = 0u64;
        for (i, a) in updates.iter().enumerate() {
            for b in &updates[i + 1..] {
                if a.oid == b.oid {
                    continue;
                }
                brute_cmp += 1;
                if !within_distance(&a.seg, &b.seg, delta)
                    .intersect_interval(&window)
                    .is_empty()
                {
                    brute_pairs.insert((
                        a.oid.min(b.oid),
                        a.oid.max(b.oid),
                        if a.oid < b.oid { a.seq } else { b.seq },
                        if a.oid < b.oid { b.seq } else { a.seq },
                    ));
                }
            }
        }
        assert_eq!(pairs, brute_pairs, "join must match brute force");
        table.row(vec![
            f2(delta),
            pairs.len().to_string(),
            stats.distance_computations.to_string(),
            brute_cmp.to_string(),
            f2(brute_cmp as f64 / stats.distance_computations.max(1) as f64),
            stats.disk_accesses.to_string(),
        ]);
    }
    table.print();
    table.write_json();
}
